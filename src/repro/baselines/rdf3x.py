"""RDF-3X- and Virtuoso-style baselines (Sections 7.1.2, 7.3).

The paper evaluates the *reification* approach "in three well known RDF
engines: Jena, Virtuoso and RDF-3X" — so these baselines, like the Jena one,
store five plain triples per temporal fact.  They differ in access-path
style:

* **RDF-3X** keeps exhaustive *sorted permutation indexes* and resolves each
  reified property with binary-search seeks.  Its timestamps are dictionary
  ids of **strings**; every temporal constraint converts the string back to
  an integer per candidate at run time — the weakness the paper identifies
  ("RDF-3X converts strings back to integers at running time", Section 7.3).
* **Virtuoso** is column-store flavoured: the reified properties live in
  parallel columns addressed by statement id, so resolving a candidate set
  is a bulk column fetch without per-binding materialization, and its
  timestamps are native integers.  That places it between RDF-3X/Jena and
  the RDBMS baseline, matching its position in Figure 9.
"""

from __future__ import annotations

import bisect
from typing import Iterator

from ..model.graph import TemporalGraph
from ..model.time import Period
from ..sparqlt.ast import QuadPattern
from .base import Row, TemporalBaseline


def _encode_time(chronon: int) -> str:
    """Timestamps as zero-padded strings — RDF-3X's literal encoding."""
    return f"{chronon:010d}"


def _decode_time(text: str) -> int:
    """The runtime string->integer conversion the paper calls out."""
    return int(text.lstrip("0") or "0")


class RDF3XBaseline(TemporalBaseline):
    """Reified triples in sorted permutation indexes, string timestamps."""

    name = "RDF-3X"

    #: Column order of the reified statement table.
    _COLUMNS = ("subject", "predicate", "object", "start", "end")

    def __init__(self) -> None:
        super().__init__()
        self.statement_count = 0
        #: POS-style permutation: sorted (column, value, stmt) triples.
        self._pos: list[tuple[int, object, int]] = []
        #: PSO-style permutation: sorted (column, stmt) -> value rows.
        self._pso_keys: list[tuple[int, int]] = []
        self._pso_values: list[object] = []

    def _build(self, graph: TemporalGraph) -> None:
        reified: list[tuple[int, object, int]] = []
        pso: list[tuple[tuple[int, int], object]] = []
        for stmt, triple in enumerate(graph):
            values = (
                triple.subject,
                triple.predicate,
                triple.object,
                self._store_time(triple.period.start),
                self._store_time(triple.period.end),
            )
            for column, value in enumerate(values):
                reified.append((column, value, stmt))
                pso.append(((column, stmt), value))
        self.statement_count = len(graph)
        self._pos = sorted(reified)
        pso.sort(key=lambda row: row[0])
        self._pso_keys = [key for key, _ in pso]
        self._pso_values = [value for _, value in pso]

    def _store_time(self, chronon: int):
        return _encode_time(chronon)

    def _load_time(self, stored) -> int:
        return _decode_time(stored)

    # -------------------------------------------------------------- lookups

    def _posting(self, column: int, value) -> list[int]:
        """Statement ids with ``column == value`` (sorted-index range)."""
        lo = bisect.bisect_left(self._pos, (column, value, -1))
        hi = bisect.bisect_left(self._pos, (column, value, 1 << 62))
        return [stmt for _, _, stmt in self._pos[lo:hi]]

    def _fetch(self, column: int, stmt: int):
        """One property of one statement — a B+-tree seek in RDF-3X."""
        index = bisect.bisect_left(self._pso_keys, (column, stmt))
        return self._pso_values[index]

    # ------------------------------------------------------------- matching

    def match_pattern(
        self, pattern: QuadPattern, window: Period
    ) -> Iterator[Row]:
        ids = self.term_ids(pattern)
        if any(v == -1 for v in ids):
            return iter(())
        candidates = self._candidates(ids)
        records = []
        sid, pid, oid = ids
        for stmt in candidates:
            subject = self._fetch(0, stmt)
            if sid is not None and subject != sid:
                continue
            predicate = self._fetch(1, stmt)
            if pid is not None and predicate != pid:
                continue
            object_ = self._fetch(2, stmt)
            if oid is not None and object_ != oid:
                continue
            # Residual temporal filter with runtime literal conversion.
            start = self._load_time(self._fetch(3, stmt))
            end = self._load_time(self._fetch(4, stmt))
            if start < window.end and window.start < end:
                records.append((subject, predicate, object_,
                                Period(start, end)))
        return self.rows_from_records(pattern, records, window)

    def _candidates(self, ids) -> Iterator[int]:
        postings = [
            self._posting(column, value)
            for column, value in zip((0, 1, 2), ids)
            if value is not None
        ]
        if not postings:
            return iter(range(self.statement_count))
        return iter(min(postings, key=len))

    # ----------------------------------------------------------------- size

    def sizeof(self) -> int:
        """Exhaustive compressed permutations over the reified triples.

        RDF-3X's delta compression brings a triple down to a few bytes per
        permutation; five reified triples per fact across six permutations
        at ~2.5 bytes lands the total in the same band as compressed MVBT,
        matching Figure 8(b)'s "almost the same" observation.
        """
        permutations = 6 * self.statement_count * 5 * 2.5
        dictionary = self.dictionary.sizeof() if self.dictionary else 0
        return int(permutations) + dictionary


class VirtuosoBaseline(TemporalBaseline):
    """Reified triples in parallel columns, integer timestamps."""

    name = "Virtuoso"

    def __init__(self) -> None:
        super().__init__()
        self.statement_count = 0
        #: The five reified properties as parallel columns.
        self.columns: dict[str, list] = {}
        #: (column, value) posting lists for the bound positions.
        self._postings: dict[tuple[str, int], list[int]] = {}

    def _build(self, graph: TemporalGraph) -> None:
        from collections import defaultdict

        subjects, predicates, objects, starts, ends = [], [], [], [], []
        postings = defaultdict(list)
        for stmt, triple in enumerate(graph):
            subjects.append(triple.subject)
            predicates.append(triple.predicate)
            objects.append(triple.object)
            starts.append(triple.period.start)
            ends.append(triple.period.end)
            postings[("s", triple.subject)].append(stmt)
            postings[("p", triple.predicate)].append(stmt)
            postings[("o", triple.object)].append(stmt)
        self.statement_count = len(graph)
        self.columns = {
            "s": subjects,
            "p": predicates,
            "o": objects,
            "ts": starts,
            "te": ends,
        }
        self._postings = dict(postings)

    def match_pattern(
        self, pattern: QuadPattern, window: Period
    ) -> Iterator[Row]:
        ids = self.term_ids(pattern)
        if any(v == -1 for v in ids):
            return iter(())
        sid, pid, oid = ids
        postings = [
            self._postings.get((name, value), [])
            for name, value in (("s", sid), ("p", pid), ("o", oid))
            if value is not None
        ]
        if postings:
            candidates = min(postings, key=len)
        else:
            candidates = list(range(self.statement_count))
        # Column-store evaluation of the reified five-pattern query: one
        # vectorized pass per property — materialize the column slice for
        # the current candidate vector, filter, repeat.  No per-binding
        # dictionaries (cheaper than the BGP pipelines), but each reified
        # property still costs a full pass, and the temporal dimension is
        # still a residual filter.
        for name, constant in (("s", sid), ("p", pid), ("o", oid)):
            column = self.columns[name]
            slice_ = [column[stmt] for stmt in candidates]
            if constant is not None:
                candidates = [
                    stmt
                    for stmt, value in zip(candidates, slice_)
                    if value == constant
                ]
        col_ts = self.columns["ts"]
        col_te = self.columns["te"]
        starts = [col_ts[stmt] for stmt in candidates]
        ends = [col_te[stmt] for stmt in candidates]
        col_s = self.columns["s"]
        col_p = self.columns["p"]
        col_o = self.columns["o"]
        records = []
        w_start, w_end = window.start, window.end
        for stmt, start, end in zip(candidates, starts, ends):
            if start < w_end and w_start < end:
                records.append(
                    (col_s[stmt], col_p[stmt], col_o[stmt],
                     Period(start, end))
                )
        return self.rows_from_records(pattern, records, window)

    def sizeof(self) -> int:
        """Five compressed columns plus postings — the same band as RDF-3X
        and compressed MVBT in Figure 8(b)."""
        columns = self.statement_count * 5 * 6
        postings = self.statement_count * 3 * 4
        dictionary = self.dictionary.sizeof() if self.dictionary else 0
        return columns + postings + dictionary
