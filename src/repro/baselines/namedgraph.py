"""Named-graph baseline: the "Jena NG" / tau-SPARQL approach (Sec 7.1.2).

Following Tappolet & Bernstein, every distinct validity interval becomes a
*named graph* holding the triples valid exactly over that interval, with the
interval stored as graph metadata.  A temporal query iterates the graphs
whose interval intersects the query window and matches the pattern inside
each graph.

The measured weaknesses this reproduces (Figures 8(b) and 9): on a dataset
like the Wikipedia history with a huge number of distinct timestamps, most
named graphs hold fewer than five triples, so per-graph storage overhead
dominates the index size, and query evaluation touches an enormous number of
tiny graphs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

from ..model.graph import TemporalGraph
from ..model.time import Period
from ..sparqlt.ast import QuadPattern
from .base import Row, TemporalBaseline

#: Fixed per-graph overhead in bytes.  Jena's named-graph implementation
#: materializes a full GraphMem per graph — its own S/P/O index maps, the
#: graph node, the name URI, and the interval metadata triples — which costs
#: on the order of a kilobyte of heap even when the graph holds one triple.
#: This constant is what makes Jena NG blow up on datasets with many
#: distinct timestamps (Figure 8(b)).
GRAPH_OVERHEAD = 960


class NamedGraphBaseline(TemporalBaseline):
    """One named graph per distinct validity interval."""

    name = "Jena NG"

    def __init__(self) -> None:
        super().__init__()
        #: interval -> triples valid exactly over that interval.
        self.graphs: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
        #: graph intervals sorted by start, for the window sweep.
        self._sorted_intervals: list[tuple[int, int]] = []

    def _build(self, graph: TemporalGraph) -> None:
        graphs: dict[tuple, list] = defaultdict(list)
        for triple in graph:
            key = (triple.period.start, triple.period.end)
            graphs[key].append(
                (triple.subject, triple.predicate, triple.object)
            )
        self.graphs = dict(graphs)
        self._sorted_intervals = sorted(self.graphs)

    # ------------------------------------------------------------- matching

    def match_pattern(
        self, pattern: QuadPattern, window: Period
    ) -> Iterator[Row]:
        ids = self.term_ids(pattern)
        if any(v == -1 for v in ids):
            return iter(())
        sid, pid, oid = ids
        records = []
        for start, end in self._sorted_intervals:
            if start >= window.end:
                break
            if end <= window.start:
                continue
            period = Period(start, end)
            for s, p, o in self.graphs[(start, end)]:
                if sid is not None and s != sid:
                    continue
                if pid is not None and p != pid:
                    continue
                if oid is not None and o != oid:
                    continue
                records.append((s, p, o, period))
        return self.rows_from_records(pattern, records, window)

    # ------------------------------------------------------------ reporting

    def graph_count(self) -> int:
        return len(self.graphs)

    def small_graph_fraction(self, limit: int = 5) -> float:
        """Fraction of graphs holding at most ``limit`` triples — the paper
        observes most Wikipedia named graphs have <= 5."""
        if not self.graphs:
            return 0.0
        small = sum(1 for g in self.graphs.values() if len(g) <= limit)
        return small / len(self.graphs)

    def sizeof(self) -> int:
        """Per-graph overhead dominates when graphs are tiny (Fig 8(b))."""
        triples = sum(len(g) for g in self.graphs.values()) * 3 * 8
        overhead = len(self.graphs) * GRAPH_OVERHEAD
        dictionary = self.dictionary.sizeof() if self.dictionary else 0
        return triples + overhead + dictionary


class Ng4jBaseline(NamedGraphBaseline):
    """The NG4J named-graph implementation (paper Section 7.1.2).

    The paper also tested NG4J but moved its numbers to the technical
    report because it was "much slower than Jena and other approaches".
    The reproduced cause: NG4J's quad API offers no graph-metadata index,
    so a temporal query iterates *every* named graph and inspects its
    interval, instead of sweeping only the graphs intersecting the window
    the way the Jena NG adaptation above does.
    """

    name = "NG4J"

    def match_pattern(self, pattern, window):
        from ..model.time import Period

        ids = self.term_ids(pattern)
        if any(v == -1 for v in ids):
            return iter(())
        sid, pid, oid = ids
        records = []
        # No interval index: every graph is visited and checked.
        for (start, end), triples in self.graphs.items():
            if end <= window.start or start >= window.end:
                continue
            period = Period(start, end)
            for s, p, o in triples:
                if sid is not None and s != sid:
                    continue
                if pid is not None and p != pid:
                    continue
                if oid is not None and o != oid:
                    continue
                records.append((s, p, o, period))
        return self.rows_from_records(pattern, records, window)

    def sizeof(self) -> int:
        """NG4J keeps per-graph quad indexes on top of the graphs."""
        return int(super().sizeof() * 1.3)
