"""Comparison systems reimplementing the strategies the paper measured."""

from .base import TemporalBaseline
from .namedgraph import NamedGraphBaseline, Ng4jBaseline
from .rdbms import RDBMSBaseline
from .reification import ReificationBaseline
from .rdf3x import RDF3XBaseline, VirtuosoBaseline

#: All baselines in the order Figure 9's legends list them.
ALL_BASELINES = (
    RDF3XBaseline,
    NamedGraphBaseline,
    ReificationBaseline,
    VirtuosoBaseline,
    RDBMSBaseline,
)

__all__ = [
    "ALL_BASELINES",
    "NamedGraphBaseline",
    "Ng4jBaseline",
    "RDBMSBaseline",
    "RDF3XBaseline",
    "ReificationBaseline",
    "TemporalBaseline",
    "VirtuosoBaseline",
]
