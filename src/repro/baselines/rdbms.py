"""RDBMS baseline: the "MySQL memory engine" approach (Sections 4, 7.1.2).

Temporal RDF triples live in one relational table with five columns
``(subject, predicate, object, start, end)``.  Four in-memory B+ tree
indices cover the key orders SPO, SOP, PSO, OPS, and two more index the
start/end timestamps — exactly the schema the paper builds in MySQL.

The measured weakness this reproduces: the key indices know nothing about
time and the time indices know nothing about keys, so *every* temporal
pattern needs an index scan on one dimension followed by residual filtering
(or an intersection of two scans), whereas the MVBT answers the
two-dimensional region in a single operation (Section 7.3's analysis).
"""

from __future__ import annotations

from typing import Iterator

from ..model.graph import TemporalGraph
from ..model.time import Period
from ..sparqlt.ast import QuadPattern
from ..storage.bptree import BPlusTree
from .base import Row, TemporalBaseline


class RDBMSBaseline(TemporalBaseline):
    """In-memory relational table + six B+ tree indices."""

    name = "MySQL"

    def __init__(self, branching: int = 64) -> None:
        super().__init__()
        self._branching = branching
        self.table: list[tuple[int, int, int, int, int]] = []
        self.indexes: dict[str, BPlusTree] = {}
        self.start_index = BPlusTree(branching)
        self.end_index = BPlusTree(branching)

    def _build(self, graph: TemporalGraph) -> None:
        self.indexes = {
            order: BPlusTree(self._branching)
            for order in ("spo", "sop", "pso", "ops")
        }
        for triple in graph:
            row_id = len(self.table)
            record = (
                triple.subject,
                triple.predicate,
                triple.object,
                triple.period.start,
                triple.period.end,
            )
            self.table.append(record)
            s, p, o = record[0], record[1], record[2]
            self.indexes["spo"].insert((s, p, o), row_id)
            self.indexes["sop"].insert((s, o, p), row_id)
            self.indexes["pso"].insert((p, s, o), row_id)
            self.indexes["ops"].insert((o, p, s), row_id)
            self.start_index.insert(record[3], row_id)
            self.end_index.insert(record[4], row_id)

    # ------------------------------------------------------------- matching

    def match_pattern(
        self, pattern: QuadPattern, window: Period
    ) -> Iterator[Row]:
        ids = self.term_ids(pattern)
        if any(v == -1 for v in ids):
            return iter(())
        row_ids = self._candidate_rows(ids, window)
        records = []
        for row_id in row_ids:
            s, p, o, start, end = self.table[row_id]
            if not self._matches(ids, s, p, o):
                continue
            period = Period(start, end)
            if period.overlaps(window):
                records.append((s, p, o, period))
        return self.rows_from_records(pattern, records, window)

    def _candidate_rows(self, ids, window: Period):
        """Row ids from the key index whose prefix covers the constants.

        The time dimension always needs residual filtering — this is the
        structural cost the paper measures against the MVBT.
        """
        sid, pid, oid = ids
        if sid is not None and pid is not None and oid is not None:
            scan = self._prefix_scan("spo", (sid, pid, oid))
        elif sid is not None and pid is not None:
            scan = self._prefix_scan("spo", (sid, pid))
        elif sid is not None and oid is not None:
            scan = self._prefix_scan("sop", (sid, oid))
        elif sid is not None:
            scan = self._prefix_scan("spo", (sid,))
        elif pid is not None and oid is not None:
            # PSO cannot serve a PO prefix; OPS can, with (o, p).
            scan = self._prefix_scan("ops", (oid, pid))
        elif pid is not None:
            scan = self._prefix_scan("pso", (pid,))
        elif oid is not None:
            scan = self._prefix_scan("ops", (oid,))
        else:
            # No key constants: use the time index (start < window end).
            return (v for _, v in self.start_index.range(-1, window.end))
        return (v for _, v in scan)

    def _prefix_scan(self, order: str, prefix: tuple):
        return self.indexes[order].range(prefix, prefix + (2**62,))

    @staticmethod
    def _matches(ids, s: int, p: int, o: int) -> bool:
        sid, pid, oid = ids
        return (
            (sid is None or sid == s)
            and (pid is None or pid == p)
            and (oid is None or oid == o)
        )

    # ----------------------------------------------------------------- size

    def sizeof(self) -> int:
        """Storage-layout bytes.

        Table rows are five 8-byte columns; each key index entry holds a
        24-byte composite key plus an 8-byte row pointer; time index entries
        are 8 + 8.  A per-node overhead matching the MVBT accounting keeps
        Figure 8(b) comparable.  The dictionary is included, as in the
        paper's reported sizes.
        """
        n = len(self.table)
        table = n * 5 * 8
        key_indexes = 4 * n * (24 + 8)
        time_indexes = 2 * n * (8 + 8)
        node_overhead = (4 + 2) * (n // 32 + 1) * 64
        # The memory engine stores VARCHAR values inline as well; we charge
        # the string heap once (the dictionary covers decoding).
        strings = self.dictionary.sizeof() if self.dictionary else 0
        return table + key_indexes + time_indexes + node_overhead + strings
