"""RDF reification baseline: the "Jena Reification" approach (Sec 4, 7.1.2).

Standard RDF cannot annotate a triple, so each temporal fact becomes a
*statement entity* with five properties::

    _:stmt rdf:subject   <s>
    _:stmt rdf:predicate <p>
    _:stmt rdf:object    <o>
    _:stmt :startTime    "ts"
    _:stmt :endTime      "te"

stored in an ordinary (non-temporal) triple store with hash indexes on SPO
positions, the structure of Jena's in-memory model.  A SPARQLT pattern
rewrites to a five-pattern BGP; matching walks the statement entities via
index-nested-loop lookups.

The measured weaknesses this reproduces: 5x triple blowup (Figure 8(b)) and
per-statement pointer chasing plus the extra joins of the rewritten BGP
(Figure 9's two-orders-of-magnitude gap on selections and joins).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

from ..model.graph import TemporalGraph
from ..model.time import Period
from ..sparqlt.ast import QuadPattern
from .base import Row, TemporalBaseline

#: Property ids of the reification schema (negative: never collide with
#: dictionary ids).
RDF_SUBJECT = -10
RDF_PREDICATE = -11
RDF_OBJECT = -12
START_TIME = -13
END_TIME = -14


class ReificationBaseline(TemporalBaseline):
    """A reified triple store with positional hash indexes."""

    name = "Jena Ref"

    def __init__(self) -> None:
        super().__init__()
        #: number of reified statements (five triples each).
        self.statement_count = 0
        #: the reified triple table: (prop, statement) -> value, i.e. the
        #: PS0-style index a triple store would use for ``(stmt, p, ?o)``.
        self.triples: dict[tuple[int, int], int] = {}
        #: positional hash indexes over the reified triples: (prop, value)
        #: posting lists, the store's POS-style access path.
        self.by_property_value: dict[tuple[int, int], list[int]] = {}

    def _build(self, graph: TemporalGraph) -> None:
        self.by_property_value = defaultdict(list)
        self.triples = {}
        for triple in graph:
            statement_id = self.statement_count
            self.statement_count += 1
            properties = (
                (RDF_SUBJECT, triple.subject),
                (RDF_PREDICATE, triple.predicate),
                (RDF_OBJECT, triple.object),
                (START_TIME, triple.period.start),
                (END_TIME, triple.period.end),
            )
            for prop, value in properties:
                self.triples[(prop, statement_id)] = value
            # Index the three entity-valued positions (time literals are
            # fetched per statement, as with Jena's find(stmt, p, ?)).
            for prop, value in properties[:3]:
                self.by_property_value[(prop, value)].append(statement_id)

    # ------------------------------------------------------------- matching

    def match_pattern(
        self, pattern: QuadPattern, window: Period
    ) -> Iterator[Row]:
        ids = self.term_ids(pattern)
        if any(v == -1 for v in ids):
            return iter(())
        candidates = self._bgp_candidates(ids)
        sid, pid, oid = ids
        triples = self.triples
        # Generic BGP evaluation of the rewritten five-pattern query, the
        # way a SPARQL engine's iterator pipeline runs it: each triple
        # pattern is a stage that looks up one property per incoming
        # binding and materializes an extended binding.  The per-stage
        # binding materialization is the cost the paper charges the
        # reification rewrite with (five patterns per temporal fact).
        bindings = [{"stmt": statement_id} for statement_id in candidates]
        stages = (
            ("s", RDF_SUBJECT, sid),
            ("p", RDF_PREDICATE, pid),
            ("o", RDF_OBJECT, oid),
            ("ts", START_TIME, None),
            ("te", END_TIME, None),
        )
        for name, prop, constant in stages:
            extended = []
            for binding in bindings:
                value = triples[(prop, binding["stmt"])]
                if constant is not None and value != constant:
                    continue
                new_binding = dict(binding)
                new_binding[name] = value
                extended.append(new_binding)
            bindings = extended
        records = []
        for binding in bindings:
            start, end = binding["ts"], binding["te"]
            if start < window.end and window.start < end:
                records.append(
                    (binding["s"], binding["p"], binding["o"],
                     Period(start, end))
                )
        return self.rows_from_records(pattern, records, window)

    def _bgp_candidates(self, ids) -> Iterator[int]:
        """Statements matching the most selective bound position, as an
        index-nested-loop BGP evaluation would start."""
        sid, pid, oid = ids
        lists = []
        for prop, value in (
            (RDF_SUBJECT, sid),
            (RDF_OBJECT, oid),
            (RDF_PREDICATE, pid),
        ):
            if value is not None:
                lists.append(self.by_property_value.get((prop, value), []))
        if not lists:
            return iter(range(self.statement_count))
        return iter(min(lists, key=len))

    # ----------------------------------------------------------------- size

    def sizeof(self) -> int:
        """Five triples per fact at three 8-byte node refs each, plus the
        statement node itself, positional index postings, and the
        dictionary — the 3-4x blowup of Figure 8(b)."""
        n = self.statement_count
        triples = n * 5 * 3 * 8
        statement_nodes = n * 16
        postings = n * 3 * 8 + len(self.by_property_value) * 48
        dictionary = self.dictionary.sizeof() if self.dictionary else 0
        return triples + statement_nodes + postings + dictionary
