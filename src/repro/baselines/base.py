"""Shared machinery for the comparison systems (paper Section 7.1.2).

Each baseline is an honest reimplementation of the *strategy* the paper
measured — not of the named product.  They all answer the same SPARQLT
queries over the same :class:`~repro.model.graph.TemporalGraph`, differing
exactly where the paper's analysis locates the performance differences:

* how temporal RDF triples are stored and indexed,
* whether a pattern + temporal constraint needs one index operation (RDF-TX)
  or an index scan followed by residual filtering and extra joins,
* how much storage the scheme needs (Figure 8(b)).

The front half of query evaluation (parsing, filter semantics, hash joins,
projection) is shared so measured differences come from the storage layer,
mirroring how all systems in the paper run equivalent rewritten queries.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator

from ..engine.engine import QueryResult
from ..engine.operators import (
    Row,
    apply_filters,
    hash_join_rows,
    nested_loop_product,
    project,
)
from ..engine.patterns import _window_from_filters
from ..model.graph import TemporalGraph
from ..model.time import Period
from ..sparqlt.ast import Query, QuadPattern, TimeConst, Var
from ..sparqlt.parser import parse


class TemporalBaseline(ABC):
    """A comparison system evaluating SPARQLT queries over its own storage."""

    #: Display name used by benchmark tables.
    name = "baseline"

    def __init__(self) -> None:
        self.dictionary = None
        self._horizon = 1

    @classmethod
    def from_graph(cls, graph: TemporalGraph, **kwargs) -> "TemporalBaseline":
        system = cls(**kwargs)
        system.load(graph)
        return system

    def load(self, graph: TemporalGraph) -> None:
        self.dictionary = graph.dictionary
        horizon = 1
        for triple in graph:
            horizon = max(horizon, triple.period.start + 1)
            if not triple.period.is_live:
                horizon = max(horizon, triple.period.end + 1)
        self._horizon = horizon
        self._build(graph)

    @abstractmethod
    def _build(self, graph: TemporalGraph) -> None:
        """Build the system's storage from the graph."""

    @abstractmethod
    def match_pattern(
        self, pattern: QuadPattern, window: Period
    ) -> Iterator[Row]:
        """Single-pattern matching against this system's storage.

        Yields rows binding the pattern's variables (term ids as ints, the
        temporal variable as a PeriodSet restricted to ``window``).
        """

    @abstractmethod
    def sizeof(self) -> int:
        """Storage-layout size in bytes (Figure 8(b))."""

    # ------------------------------------------------------------ evaluation

    def query(self, text: str | Query) -> QueryResult:
        """Parse and evaluate a SPARQLT query."""
        query = parse(text) if isinstance(text, str) else text
        conjuncts = query.filter_conjuncts()
        rows: list[Row] | None = None
        bound: set[str] = set()
        # Join order: constants-first heuristic, like the paper's baselines
        # running through their own (non-temporal) optimizers.
        patterns = sorted(
            query.patterns,
            key=lambda p: -len(p.constant_positions()),
        )
        for pattern in patterns:
            window = self._pattern_window(pattern, conjuncts)
            scanned = list(self.match_pattern(pattern, window))
            if rows is None:
                rows = scanned
            else:
                shared = bound & pattern.variables()
                if shared:
                    rows = list(hash_join_rows(rows, scanned, shared))
                else:
                    rows = list(nested_loop_product(rows, scanned))
            bound |= pattern.variables()
            if not rows:
                break
        rows = rows or []
        rows = list(
            apply_filters(rows, conjuncts, self.dictionary, self._horizon)
        )
        return QueryResult(
            variables=list(query.select),
            rows=project(rows, query.select, self.dictionary),
        )

    def _pattern_window(self, pattern: QuadPattern, conjuncts) -> Period:
        if isinstance(pattern.time, TimeConst):
            return Period.point(pattern.time.chronon)
        return _window_from_filters(pattern.time.name, conjuncts)

    # --------------------------------------------------------------- helpers

    @staticmethod
    def bind(pattern: QuadPattern, sid: int, pid: int, oid: int) -> Row | None:
        """Bind a concrete (s, p, o) to the pattern's variables, checking
        repeated variables; ``None`` when inconsistent."""
        row: Row = {}
        for term, value in (
            (pattern.subject, sid),
            (pattern.predicate, pid),
            (pattern.object, oid),
        ):
            if isinstance(term, Var):
                if term.name in row and row[term.name] != value:
                    return None
                row[term.name] = value
        return row

    def rows_from_records(
        self,
        pattern: QuadPattern,
        records: Iterable[tuple[int, int, int, Period]],
        window: Period,
    ) -> Iterator[Row]:
        """Group matching interval records into result rows: one row per
        (s, p, o) binding with the coalesced validity restricted to the
        window (the shared result shape of single-pattern matching)."""
        from collections import defaultdict

        from ..model.time import PeriodSet

        groups: dict[tuple, list[Period]] = defaultdict(list)
        for sid, pid, oid, period in records:
            groups[(sid, pid, oid)].append(period)
        for (sid, pid, oid), parts in groups.items():
            validity = PeriodSet(parts).restrict(window)
            if validity.is_empty:
                continue
            row = self.bind(pattern, sid, pid, oid)
            if row is None:
                continue
            if isinstance(pattern.time, Var):
                row[pattern.time.name] = validity
            yield row

    def term_ids(self, pattern: QuadPattern) -> tuple:
        """(sid, pid, oid) with None for variables; -1 for unknown terms."""
        out = []
        for term in (pattern.subject, pattern.predicate, pattern.object):
            if isinstance(term, Var):
                out.append(None)
            else:
                found = self.dictionary.lookup(term.value)
                out.append(-1 if found is None else found)
        return tuple(out)
