"""Shared cache primitives for the read path.

One thread-safe LRU with optional metrics hooks, used by

* the engine's compiled-plan cache (:mod:`repro.engine.engine`) — plans
  depend only on the dictionary (append-only, ids never change) and on
  the optimizer statistics, so they survive writes and are dropped only
  when the statistics are rebuilt, and
* the serving layer's revision-tagged result cache
  (:mod:`repro.service.cache`) — results depend on the data, so every
  entry is tagged with the store revision it was computed at and the
  whole cache is invalidated when a writer applies.

The class deliberately stays dumb: no TTLs, no sizing heuristics, just
capacity-bounded recency eviction.  Policy (what to key on, when to
invalidate) lives with the callers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

from .obs.metrics import Counter

__all__ = ["LRUCache"]


class LRUCache:
    """A capacity-bounded, thread-safe least-recently-used mapping.

    A hit promotes the entry to most-recently-used; inserting past
    ``capacity`` evicts the least-recently-used entry.  The optional
    ``hits`` / ``misses`` / ``evictions`` counters (from
    :mod:`repro.obs.metrics`) are bumped on the matching events — they
    no-op under ``REPRO_OBS=0`` like every other metric.
    """

    __slots__ = ("capacity", "_data", "_lock", "_hits", "_misses",
                 "_evictions")

    def __init__(
        self,
        capacity: int,
        hits: Counter | None = None,
        misses: Counter | None = None,
        evictions: Counter | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = hits
        self._misses = misses
        self._evictions = evictions

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value (promoted to most-recently-used), or
        ``default``."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                if self._misses is not None:
                    self._misses.inc()
                return default
            self._data.move_to_end(key)
        if self._hits is not None:
            self._hits.inc()
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/replace ``key``, evicting the LRU entry when full."""
        evicted = 0
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                evicted += 1
        if evicted and self._evictions is not None:
            self._evictions.inc(evicted)

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._data)
            self._data.clear()
        return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data
