"""Abstract syntax of SPARQLT queries (Section 3).

A query is a SELECT clause over a group of quad patterns ``{s p o t}``
plus FILTER expressions, UNION alternatives, and OPTIONAL sub-groups.
Terms are either variables (:class:`Var`) or constants; the temporal
position additionally accepts date literals.  ``(P UNION P')`` and
``(P OPT P')`` are the paper's declared future work (Section 3.1),
implemented here with the standard SPARQL algebra.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True)
class Var:
    """A query variable, e.g. ``?university``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class TermConst:
    """A constant URI or literal in a pattern position."""

    value: str

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class TimeConst:
    """A constant chronon in the temporal position."""

    chronon: int


PatternTerm = Union[Var, TermConst]
PatternTime = Union[Var, TimeConst]


@dataclass(frozen=True)
class QuadPattern:
    """A SPARQLT graph pattern ``{s p o t}``."""

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm
    time: PatternTime

    def variables(self) -> set[str]:
        """Names of all variables used in the pattern."""
        out = set()
        for term in (self.subject, self.predicate, self.object, self.time):
            if isinstance(term, Var):
                out.add(term.name)
        return out

    def constant_positions(self) -> str:
        """The pattern type, e.g. ``"SPT"`` when s, p and t are constant.

        SPARQLT supports all 16 combinations over S/P/O/T (Section 3.1).
        """
        letters = []
        for letter, term in zip("SPO", (self.subject, self.predicate, self.object)):
            if isinstance(term, TermConst):
                letters.append(letter)
        if isinstance(self.time, TimeConst):
            letters.append("T")
        return "".join(letters)

    def __str__(self) -> str:
        time = (
            str(self.time)
            if isinstance(self.time, Var)
            else f"@{self.time.chronon}"
        )
        return f"{{{self.subject} {self.predicate} {self.object} {time}}}"


# --------------------------------------------------------------- expressions


@dataclass(frozen=True)
class Literal:
    """A literal operand in a filter: string, number, date or duration.

    ``kind`` is one of ``"string"``, ``"number"``, ``"date"`` and
    ``"duration"`` (durations are normalized to days).
    """

    value: object
    kind: str


@dataclass(frozen=True)
class FuncCall:
    """A built-in call: YEAR/MONTH/DAY/TSTART/TEND/LENGTH/TOTAL_LENGTH."""

    name: str
    arg: "Expr"


@dataclass(frozen=True)
class Compare:
    """A comparison ``left op right`` with op in =, !=, <, <=, >, >=."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class And:
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Or:
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Not:
    operand: "Expr"


Expr = Union[Var, Literal, FuncCall, Compare, And, Or, Not]


def conjuncts(expr: Expr) -> list[Expr]:
    """Flatten the top-level conjunction of a filter expression."""
    if isinstance(expr, And):
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def expr_variables(expr: Expr) -> set[str]:
    """Names of all variables appearing in an expression."""
    if isinstance(expr, Var):
        return {expr.name}
    if isinstance(expr, FuncCall):
        return expr_variables(expr.arg)
    if isinstance(expr, Compare):
        return expr_variables(expr.left) | expr_variables(expr.right)
    if isinstance(expr, (And, Or)):
        return expr_variables(expr.left) | expr_variables(expr.right)
    if isinstance(expr, Not):
        return expr_variables(expr.operand)
    return set()


@dataclass
class GroupGraphPattern:
    """A group of SPARQLT elements: base quad patterns, FILTERs, UNION
    alternatives, and OPTIONAL sub-groups.

    The paper's published SPARQLT covers conjunctions and filters;
    ``(P UNION P')`` and ``(P OPT P')`` are its declared future work
    (Section 3.1) and are implemented here as group-level operators with
    the standard SPARQL algebra: ``Join(base, Union(a, b, ...))`` and a
    left outer join for OPTIONAL.
    """

    patterns: list[QuadPattern] = field(default_factory=list)
    filters: list["Expr"] = field(default_factory=list)
    #: each union is a list of alternative groups (A UNION B UNION ...).
    unions: list[list["GroupGraphPattern"]] = field(default_factory=list)
    optionals: list["GroupGraphPattern"] = field(default_factory=list)

    @property
    def is_simple(self) -> bool:
        """True when the group is plain conjunctive SPARQLT."""
        return not self.unions and not self.optionals

    def variables(self) -> set[str]:
        out: set[str] = set()
        for pattern in self.patterns:
            out |= pattern.variables()
        for union in self.unions:
            for branch in union:
                out |= branch.variables()
        for optional in self.optionals:
            out |= optional.variables()
        return out

    def filter_conjuncts(self) -> list["Expr"]:
        out: list["Expr"] = []
        for expr in self.filters:
            out.extend(conjuncts(expr))
        return out


@dataclass
class Query:
    """A parsed SPARQLT query."""

    select: list[str]
    patterns: list[QuadPattern]
    filters: list[Expr] = field(default_factory=list)
    #: the full group structure; for plain conjunctive queries it holds the
    #: same patterns/filters as the two legacy fields above.
    group: "GroupGraphPattern | None" = None

    def __post_init__(self) -> None:
        if self.group is None:
            self.group = GroupGraphPattern(
                patterns=self.patterns, filters=self.filters
            )

    @property
    def is_simple(self) -> bool:
        return self.group.is_simple

    def variables(self) -> set[str]:
        return self.group.variables()

    def filter_conjuncts(self) -> list[Expr]:
        """All top-level conjuncts across every FILTER clause."""
        out: list[Expr] = []
        for expr in self.filters:
            out.extend(conjuncts(expr))
        return out
