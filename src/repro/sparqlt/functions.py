"""Evaluation semantics of SPARQLT filters and temporal built-ins (Sec 3).

SPARQLT is point-based: a temporal variable ``?t`` denotes a *set of
chronons*, carried as a coalesced :class:`~repro.model.time.PeriodSet`.
Filter conjuncts interact with temporal variables in two ways:

* **Restrictions** — conjuncts of the form ``?t op date`` and
  ``YEAR/MONTH/DAY(?t) op n`` *restrict* the point set: the surviving binding
  contains exactly the chronons satisfying the condition (Example 2: the
  budget valid in 2013 binds ``?t`` to the 2013 portion of its validity).
* **Predicates** — everything else (``LENGTH``, ``TOTAL_LENGTH``, ``TSTART``,
  ``TEND`` comparisons, disjunctions, negations, non-temporal comparisons)
  evaluates to a boolean on the *restricted* binding.

Following the point-based reading, a bare comparison ``?t op c`` used inside
a disjunction or negation is existential: it holds when some chronon of the
binding satisfies it.  ``LENGTH`` is the length of the longest maximal period
of the binding and ``TOTAL_LENGTH`` the summed length, exactly as defined in
Section 3.1.
"""

from __future__ import annotations

import datetime as _dt
from typing import Mapping

from ..model.time import (
    MIN_TIME,
    NOW,
    Period,
    PeriodSet,
    chronon_to_date,
    date_to_chronon,
    month_range,
    year_of,
    year_range,
)
from .ast import Compare, Expr, FuncCall, Literal, Not, Or, And, Var
from .errors import EvaluationError

#: Value bound to a variable in a row: an RDF term or a chronon set.
Binding = Mapping[str, object]

_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_CALENDAR_FUNCS = {"YEAR", "MONTH", "DAY"}


# --------------------------------------------------------------- restriction


def restriction_target(expr: Expr) -> str | None:
    """The temporal variable restricted by ``expr``, if it is a restriction.

    Restrictions are conjunct-level comparisons ``?t op <date>`` or
    ``YEAR/MONTH/DAY(?t) op <number>``.
    """
    if not isinstance(expr, Compare):
        return None
    for left, right in ((expr.left, expr.right), (expr.right, expr.left)):
        var = _restrictable_side(left)
        if var is None or not isinstance(right, Literal):
            continue
        # A bare variable restricts only against a date literal; calendar
        # functions restrict against plain numbers (YEAR(?t) = 2013).
        if isinstance(left, Var) and right.kind == "date":
            return var
        if isinstance(left, FuncCall) and right.kind == "number":
            return var
    return None


def _restrictable_side(expr: Expr) -> str | None:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, FuncCall) and expr.name in _CALENDAR_FUNCS:
        if isinstance(expr.arg, Var):
            return expr.arg.name
    return None


def restrict(expr: Compare, periods: PeriodSet, horizon: int) -> PeriodSet:
    """Apply a restriction conjunct to a chronon set.

    ``horizon`` is one past the largest concrete chronon in the data; live
    periods are treated as extending to it for calendar enumeration and the
    surviving live tail is restored afterwards.
    """
    windows = _restriction_windows(expr, periods, horizon)
    if windows is None:
        raise EvaluationError(f"not a restriction: {expr}")
    out = PeriodSet()
    for window in windows:
        out = out.union(periods.restrict(window))
    return out


def _restriction_windows(
    expr: Compare, periods: PeriodSet, horizon: int
) -> list[Period] | None:
    """The chronon windows admitted by a restriction conjunct."""
    left, right, op = expr.left, expr.right, expr.op
    if _restrictable_side(left) is None:
        # Normalize ``literal op ?t`` to ``?t flipped-op literal``.
        left, right = right, left
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}[op]
    if not isinstance(right, Literal):
        return None
    if isinstance(left, Var):
        return _chronon_windows(op, int(right.value))
    if not isinstance(left, FuncCall):
        return None  # Not a restrictable side; fall back to row filtering.
    value = int(right.value)
    if left.name == "YEAR":
        return _year_windows(op, value)
    if left.name == "MONTH":
        return _month_windows(op, value, periods, horizon)
    if left.name == "DAY":
        return _day_windows(op, value, periods, horizon)
    return None


def _chronon_windows(op: str, chronon: int) -> list[Period]:
    if op == "=":
        return [Period.point(chronon)]
    if op == "!=":
        out = []
        if chronon > MIN_TIME:
            out.append(Period(MIN_TIME, chronon))
        out.append(Period(chronon + 1, NOW))
        return out
    if op == "<":
        return [Period(MIN_TIME, chronon)] if chronon > MIN_TIME else []
    if op == "<=":
        return [Period(MIN_TIME, chronon + 1)]
    if op == ">":
        return [Period(chronon + 1, NOW)]
    return [Period(chronon, NOW)]  # >=


def _year_windows(op: str, year: int) -> list[Period]:
    span = year_range(year)
    if op == "=":
        return [span]
    if op == "!=":
        out = []
        if span.start > MIN_TIME:
            out.append(Period(MIN_TIME, span.start))
        out.append(Period(span.end, NOW))
        return out
    if op == "<":
        return [Period(MIN_TIME, span.start)] if span.start > MIN_TIME else []
    if op == "<=":
        return [Period(MIN_TIME, span.end)]
    if op == ">":
        return [Period(span.end, NOW)]
    return [Period(span.start, NOW)]  # >=


def _iter_concrete(periods: PeriodSet, horizon: int):
    """The concrete (clipped-to-horizon) periods of a binding."""
    for period in periods:
        end = min(period.end, horizon)
        if period.start < end:
            yield period.start, end


def _month_windows(
    op: str, month: int, periods: PeriodSet, horizon: int
) -> list[Period]:
    """Calendar months inside the binding satisfying ``month op value``."""
    out = []
    for start, end in _iter_concrete(periods, horizon):
        date = chronon_to_date(start).replace(day=1)
        last = chronon_to_date(end - 1)
        while date <= last:
            if _OPS[op](date.month, month):
                out.append(month_range(date.year, date.month))
            if date.month == 12:
                date = date.replace(year=date.year + 1, month=1)
            else:
                date = date.replace(month=date.month + 1)
    return out


def _day_windows(
    op: str, day: int, periods: PeriodSet, horizon: int
) -> list[Period]:
    """Calendar days inside the binding satisfying ``day-of-month op value``."""
    out = []
    for start, end in _iter_concrete(periods, horizon):
        for chronon in range(start, end):
            if _OPS[op](chronon_to_date(chronon).day, day):
                out.append(Period.point(chronon))
    return out


def pushdown_window(expr: Expr) -> Period | None:
    """The time window implied by a restriction, for index-scan pushdown.

    Only contiguous restrictions (chronon comparisons and YEAR) produce a
    window; MONTH/DAY restrictions are applied after the scan.  Returns
    ``None`` when the conjunct does not narrow the scan.
    """
    if not isinstance(expr, Compare):
        return None
    if restriction_target(expr) is None:
        return None
    left = expr.left if _restrictable_side(expr.left) else expr.right
    if isinstance(left, FuncCall) and left.name in ("MONTH", "DAY"):
        return None
    windows = _restriction_windows(expr, PeriodSet(), MIN_TIME)
    if not windows or len(windows) > 1:
        return None
    return windows[0]


# ------------------------------------------------------------------- values


def eval_value(expr: Expr, row: Binding, horizon: int):
    """Evaluate an operand to a comparable value."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Var):
        try:
            return row[expr.name]
        except KeyError:
            raise EvaluationError(f"unbound variable ?{expr.name}") from None
    if isinstance(expr, FuncCall):
        return _eval_function(expr, row, horizon)
    raise EvaluationError(f"not a value expression: {expr}")


def _eval_function(call: FuncCall, row: Binding, horizon: int):
    value = eval_value(call.arg, row, horizon)
    periods = _as_periods(value)
    if periods.is_empty:
        raise EvaluationError(f"{call.name} of an empty chronon set")
    if call.name == "TSTART":
        return periods.first()
    if call.name == "TEND":
        # TEND is *exclusive* (the first chronon after the set), NOW for a
        # live set.  The paper defines TEND as the last element but then uses
        # ``TEND(?t1) = TSTART(?t2)`` for succession (Example 5), which with
        # Table 2's data only matches when TEND means the half-open end
        # (Yudof ends 09/29, Napolitano starts 09/30).  We follow the usage,
        # not the one-line definition, and document the deviation.
        last_period = periods.periods[-1]
        return NOW if last_period.is_live else last_period.end
    if call.name == "LENGTH":
        return _clip(periods, horizon).max_length()
    if call.name == "TOTAL_LENGTH":
        return _clip(periods, horizon).total_length()
    if call.name in _CALENDAR_FUNCS:
        # Calendar functions of a single chronon; over a set they are only
        # meaningful inside restrictions, but a singleton set evaluates.
        if periods.total_length() == 1 or (
            len(periods) == 1 and periods.periods[0].length() == 1
        ):
            date = chronon_to_date(periods.first())
            return {"YEAR": date.year, "MONTH": date.month, "DAY": date.day}[
                call.name
            ]
        raise EvaluationError(
            f"{call.name} over a non-singleton chronon set is only valid "
            "as a restriction"
        )
    raise EvaluationError(f"unknown function {call.name}")


def _clip(periods: PeriodSet, horizon: int) -> PeriodSet:
    """Clip live periods to the data horizon so durations are finite."""
    if not any(p.is_live for p in periods):
        return periods
    clipped = [
        Period(p.start, min(p.end, horizon))
        for p in periods
        if p.start < min(p.end, horizon)
    ]
    return PeriodSet(clipped)


def _as_periods(value) -> PeriodSet:
    if isinstance(value, PeriodSet):
        return value
    if isinstance(value, Period):
        return PeriodSet.single(value)
    if isinstance(value, int):
        return PeriodSet.single(Period.point(value))
    raise EvaluationError(f"expected a temporal value, got {value!r}")


# ------------------------------------------------------------------ boolean


def evaluate(expr: Expr, row: Binding, horizon: int) -> bool:
    """Evaluate a filter expression to a boolean over one binding."""
    if isinstance(expr, And):
        return evaluate(expr.left, row, horizon) and evaluate(
            expr.right, row, horizon
        )
    if isinstance(expr, Or):
        return evaluate(expr.left, row, horizon) or evaluate(
            expr.right, row, horizon
        )
    if isinstance(expr, Not):
        return not evaluate(expr.operand, row, horizon)
    if isinstance(expr, Compare):
        return _evaluate_compare(expr, row, horizon)
    if isinstance(expr, Var):
        return bool(row.get(expr.name))
    raise EvaluationError(f"not a boolean expression: {expr}")


def _evaluate_compare(expr: Compare, row: Binding, horizon: int) -> bool:
    # Restrictions used in a boolean context (inside ||, !) hold when some
    # chronon of the binding satisfies them (existential, point-based).
    target = restriction_target(expr)
    if target is not None and isinstance(row.get(target), PeriodSet):
        return not restrict(expr, row[target], horizon).is_empty
    left = eval_value(expr.left, row, horizon)
    right = eval_value(expr.right, row, horizon)
    return _compare_values(expr.op, left, right)


def _compare_values(op: str, left, right) -> bool:
    if isinstance(left, PeriodSet) or isinstance(right, PeriodSet):
        return _compare_temporal(op, _as_periods(left), _as_periods(right))
    left, right = _coerce_pair(left, right)
    try:
        return _OPS[op](left, right)
    except TypeError:
        raise EvaluationError(
            f"cannot compare {left!r} and {right!r}"
        ) from None


def _compare_temporal(op: str, left: PeriodSet, right: PeriodSet) -> bool:
    """Existential point-based comparison of two chronon sets."""
    if left.is_empty or right.is_empty:
        return False
    if op == "=":
        return not left.intersect(right).is_empty
    if op == "!=":
        return left != right
    if op == "<":
        return left.first() < right.last()
    if op == "<=":
        return left.first() <= right.last()
    if op == ">":
        return left.last() > right.first()
    return left.last() >= right.first()  # >=


def _coerce_pair(left, right):
    """Coerce string terms to numbers when compared against numbers."""
    if isinstance(left, str) and isinstance(right, (int, float)):
        return _as_number(left), right
    if isinstance(right, str) and isinstance(left, (int, float)):
        return left, _as_number(right)
    return left, right


def _as_number(text: str):
    try:
        return float(text) if "." in text else int(text)
    except ValueError:
        raise EvaluationError(f"term {text!r} is not numeric") from None
