"""SPARQLT: the temporal extension of SPARQL (paper Section 3)."""

from .ast import (
    And,
    Compare,
    Expr,
    FuncCall,
    Literal,
    Not,
    Or,
    QuadPattern,
    Query,
    TermConst,
    TimeConst,
    Var,
    conjuncts,
    expr_variables,
)
from .errors import EvaluationError, LexError, ParseError, SparqltError
from .functions import (
    evaluate,
    eval_value,
    pushdown_window,
    restrict,
    restriction_target,
)
from .lexer import Token, tokenize
from .parser import parse, parse_expression

__all__ = [
    "And",
    "Compare",
    "EvaluationError",
    "Expr",
    "FuncCall",
    "LexError",
    "Literal",
    "Not",
    "Or",
    "ParseError",
    "QuadPattern",
    "Query",
    "SparqltError",
    "TermConst",
    "TimeConst",
    "Token",
    "Var",
    "conjuncts",
    "eval_value",
    "evaluate",
    "expr_variables",
    "parse",
    "parse_expression",
    "pushdown_window",
    "restrict",
    "restriction_target",
    "tokenize",
]
