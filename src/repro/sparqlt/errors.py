"""Errors raised by the SPARQLT front end."""

from __future__ import annotations


class SparqltError(Exception):
    """Base class for SPARQLT language errors."""


class LexError(SparqltError):
    """Malformed token in the query text."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SparqltError):
    """The token stream does not form a valid SPARQLT query."""


class EvaluationError(SparqltError):
    """A filter expression could not be evaluated over a binding."""
