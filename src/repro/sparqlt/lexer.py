"""Tokenizer for SPARQLT query text.

Token kinds: keywords (SELECT/WHERE/FILTER and the temporal built-ins),
variables (``?name``), IRIs/identifiers, quoted strings, numbers, date
literals in ISO (``2013-01-01``) or US (``01/01/2013``) form, duration units
(DAY/MONTH/YEAR following a number), punctuation, comparison and boolean
operators.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .errors import LexError

KEYWORDS = {"SELECT", "WHERE", "FILTER", "UNION", "OPTIONAL"}

FUNCTIONS = {
    "YEAR",
    "MONTH",
    "DAY",
    "TSTART",
    "TEND",
    "LENGTH",
    "TOTAL_LENGTH",
}

UNITS = {"DAY", "MONTH", "YEAR"}

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<DATE_US>\d{2}/\d{2}/\d{4})
  | (?P<DATE_ISO>\d{4}-\d{2}-\d{2})
  | (?P<NUMBER>\d+(\.\d+)?)
  | (?P<VAR>\?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<STRING>"(?:[^"\\]|\\.)*")
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_\-.:/#]*)
  | (?P<OP><=|>=|!=|=|<|>|&&|\|\||!)
  | (?P<PUNCT>[{}().,])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def tokenize(text: str) -> list[Token]:
    """Split query text into tokens; raises :class:`LexError` on garbage."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise LexError(f"unexpected character {text[pos]!r}", pos)
        kind = match.lastgroup
        value = match.group()
        pos = match.end()
        if kind == "WS":
            continue
        if kind == "IDENT":
            upper = value.upper()
            if upper in KEYWORDS:
                kind, value = "KEYWORD", upper
            elif upper in FUNCTIONS:
                # Function names double as duration units (DAY/MONTH/YEAR);
                # the parser disambiguates by context.
                kind, value = "FUNC", upper
        tokens.append(Token(kind, value, match.start()))
    tokens.append(Token("EOF", "", len(text)))
    return tokens
