"""Recursive-descent parser for SPARQLT (Section 3.1).

Grammar (simplified EBNF)::

    query      := SELECT var+ WHERE? '{' clause+ '}'
    clause     := pattern '.'? | FILTER '(' expr ')' '.'?
    pattern    := term term term timeterm
    term       := VAR | IDENT | STRING | NUMBER
    timeterm   := VAR | date
    expr       := orexpr
    orexpr     := andexpr ('||' andexpr)*
    andexpr    := unary ('&&' unary)*
    unary      := '!' unary | primary (CMP primary)?
    primary    := FUNC '(' expr ')' | VAR | literal | '(' expr ')'
    literal    := STRING | NUMBER unit? | date
    unit       := DAY | MONTH | YEAR

Date literals may be ISO (``2013-01-01``) or US (``01/01/2013``).  Durations
are normalized to days (MONTH = 30, YEAR = 365, as documented for the
``LENGTH`` comparisons of Example 3).
"""

from __future__ import annotations

from ..model.time import date_to_chronon
from .ast import (
    And,
    GroupGraphPattern,
    Compare,
    Expr,
    FuncCall,
    Literal,
    Not,
    Or,
    QuadPattern,
    Query,
    TermConst,
    TimeConst,
    Var,
)
from .errors import ParseError
from .lexer import Token, UNITS, tokenize

_UNIT_DAYS = {"DAY": 1, "MONTH": 30, "YEAR": 365}

_COMPARE_OPS = {"=", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------- plumbing

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        self._pos += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._current
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise ParseError(
                f"expected {want}, found {token.text!r} at offset "
                f"{token.position}"
            )
        return self._advance()

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self._current
        if token.kind == kind and (text is None or token.text == text):
            return self._advance()
        return None

    # -------------------------------------------------------------- grammar

    def parse_query(self) -> Query:
        self._expect("KEYWORD", "SELECT")
        select = []
        while self._current.kind == "VAR":
            select.append(self._advance().text[1:])
        if not select:
            raise ParseError("SELECT needs at least one variable")
        self._accept("KEYWORD", "WHERE")
        self._expect("PUNCT", "{")
        group = self._parse_group()
        if not (group.patterns or group.unions):
            raise ParseError("a query needs at least one graph pattern")
        self._expect("EOF")
        return Query(
            select=select,
            patterns=group.patterns,
            filters=group.filters,
            group=group,
        )

    def _parse_group(self) -> GroupGraphPattern:
        """Parse group elements until the closing '}' (already consumed)."""
        group = GroupGraphPattern()
        while not self._accept("PUNCT", "}"):
            if self._current.kind == "EOF":
                raise ParseError("unterminated group: missing '}'")
            if self._accept("KEYWORD", "FILTER"):
                self._expect("PUNCT", "(")
                group.filters.append(self.parse_expr())
                self._expect("PUNCT", ")")
            elif self._accept("KEYWORD", "OPTIONAL"):
                self._expect("PUNCT", "{")
                group.optionals.append(self._parse_group())
            elif self._accept("PUNCT", "{"):
                # { A } UNION { B } [UNION { C } ...]; a lone braced group
                # is a nested group, which joins like a one-branch union.
                branches = [self._parse_group()]
                while self._accept("KEYWORD", "UNION"):
                    self._expect("PUNCT", "{")
                    branches.append(self._parse_group())
                group.unions.append(branches)
            else:
                group.patterns.append(self._parse_pattern())
            self._accept("PUNCT", ".")
        return group

    def _parse_pattern(self) -> QuadPattern:
        subject = self._parse_term()
        predicate = self._parse_term()
        object_ = self._parse_term()
        time = self._parse_time_term()
        return QuadPattern(subject, predicate, object_, time)

    def _parse_term(self):
        token = self._current
        if token.kind == "VAR":
            self._advance()
            return Var(token.text[1:])
        if token.kind == "IDENT" or token.kind == "FUNC":
            self._advance()
            return TermConst(token.text)
        if token.kind == "STRING":
            self._advance()
            return TermConst(_unquote(token.text))
        if token.kind == "NUMBER":
            self._advance()
            return TermConst(token.text)
        raise ParseError(
            f"expected a term, found {token.text!r} at offset {token.position}"
        )

    def _parse_time_term(self):
        token = self._current
        if token.kind == "VAR":
            self._advance()
            return Var(token.text[1:])
        if token.kind in ("DATE_ISO", "DATE_US"):
            self._advance()
            return TimeConst(date_to_chronon(token.text))
        raise ParseError(
            "the temporal position needs a variable or a date, found "
            f"{token.text!r} at offset {token.position}"
        )

    # ---------------------------------------------------------- expressions

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._accept("OP", "||"):
            left = Or(left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_unary()
        while self._accept("OP", "&&"):
            left = And(left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expr:
        if self._accept("OP", "!"):
            return Not(self._parse_unary())
        left = self._parse_primary()
        token = self._current
        if token.kind == "OP" and token.text in _COMPARE_OPS:
            self._advance()
            right = self._parse_primary()
            return Compare(token.text, left, right)
        return left

    def _parse_primary(self) -> Expr:
        token = self._current
        if token.kind == "FUNC":
            self._advance()
            self._expect("PUNCT", "(")
            arg = self.parse_expr()
            self._expect("PUNCT", ")")
            return FuncCall(token.text, arg)
        if token.kind == "VAR":
            self._advance()
            return Var(token.text[1:])
        if token.kind == "STRING":
            self._advance()
            return Literal(_unquote(token.text), "string")
        if token.kind in ("DATE_ISO", "DATE_US"):
            self._advance()
            return Literal(date_to_chronon(token.text), "date")
        if token.kind == "NUMBER":
            self._advance()
            value = float(token.text) if "." in token.text else int(token.text)
            unit = self._accept_unit()
            if unit is not None:
                return Literal(int(value) * _UNIT_DAYS[unit], "duration")
            return Literal(value, "number")
        if token.kind == "IDENT":
            self._advance()
            return Literal(token.text, "string")
        if self._accept("PUNCT", "("):
            inner = self.parse_expr()
            self._expect("PUNCT", ")")
            return inner
        raise ParseError(
            f"expected an expression, found {token.text!r} at offset "
            f"{token.position}"
        )

    def _accept_unit(self) -> str | None:
        token = self._current
        if token.kind == "FUNC" and token.text in UNITS:
            # Disambiguate unit vs function: a unit is not followed by '('.
            next_token = self._tokens[self._pos + 1]
            if not (next_token.kind == "PUNCT" and next_token.text == "("):
                self._advance()
                return token.text
        return None


def _unquote(text: str) -> str:
    return text[1:-1].replace('\\"', '"').replace("\\\\", "\\")


def parse(text: str) -> Query:
    """Parse SPARQLT query text into a :class:`~repro.sparqlt.ast.Query`."""
    return _Parser(tokenize(text)).parse_query()


def parse_expression(text: str) -> Expr:
    """Parse a standalone filter expression (useful in tests and tools)."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    parser._expect("EOF")
    return expr
