"""Revision-tagged query-result cache for the serving layer.

:class:`QueryCache` memoizes *decoded* query results in front of the
store's readers-writer lock: a hit never takes the read lock, never
parses, never scans.  Correctness rests on two rules:

* every entry is tagged with the store **revision** (the last applied
  WAL LSN) it was computed at, and a lookup only returns an entry whose
  tag equals the revision the caller is about to serve — a stale entry
  is a miss, never a wrong answer; and
* a writer **invalidates wholesale** after applying
  (:meth:`~repro.service.store.TemporalStore._update`), so stale
  entries also stop occupying capacity.

Results are snapshotted on insert and copied on every hit, so callers
can mutate what they get back without poisoning the cache.

Keys are the whitespace-normalized query text (:func:`normalize_query`):
semantically identical requests differing only in layout share an entry,
while anything deeper (case, aliasing) intentionally stays distinct —
normalization must never conflate two queries with different answers.
"""

from __future__ import annotations

from ..cache import LRUCache
from ..engine.engine import QueryResult
from ..obs import metrics as _metrics
from ..obs import trace as _trace

__all__ = ["QueryCache", "normalize_query"]

_HITS = _metrics.counter("service.cache.hits")
_MISSES = _metrics.counter("service.cache.misses")
_EVICTIONS = _metrics.counter("service.cache.evictions")
_INVALIDATIONS = _metrics.counter("service.cache.invalidations")

DEFAULT_CAPACITY = 256


_WS = " \t\n\r\f\v"


def normalize_query(text: str) -> str:
    """Collapse whitespace runs *outside quoted literals* — the cache key.

    Whitespace inside a quoted string (``"a  b"``, ``'a  b'``, and their
    triple-quoted forms, with backslash escapes honored) is significant
    to FILTER equality, so it is preserved byte-for-byte: collapsing it
    would give ``FILTER(?x = "a  b")`` and ``FILTER(?x = "a b")`` the
    same key and let them serve each other's (different) results — the
    exact conflation the module contract forbids.  An unterminated quote
    preserves the rest of the text verbatim (the parser will reject the
    query anyway; the key just must not collide with a valid one).
    """
    out: list[str] = []
    append = out.append
    i = 0
    n = len(text)
    pending_ws = False
    while i < n:
        ch = text[i]
        if ch in _WS:
            pending_ws = True
            i += 1
            continue
        if pending_ws and out:
            append(" ")
        pending_ws = False
        if ch in "\"'":
            quote = ch * 3 if text.startswith(ch * 3, i) else ch
            j = i + len(quote)
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text.startswith(quote, j):
                    j += len(quote)
                    break
                j += 1
            else:
                j = n
            # j may have skipped past n via an escape at the end; slicing
            # clamps, so the span is preserved verbatim either way.
            append(text[i:j])
            i = j
            continue
        append(ch)
        i += 1
    return "".join(out)


def _snapshot(result: QueryResult, revision: int) -> QueryResult:
    """An isolated copy of a result (rows are row-level copies)."""
    return QueryResult(
        variables=list(result.variables),
        rows=[dict(row) for row in result.rows],
        revision=revision,
    )


class QueryCache:
    """An LRU of decoded query results, each tagged with a store revision.

    Besides the revision tag, every entry records the cache *generation*
    it was computed in (bumped on :meth:`invalidate`).  The revision tag
    alone cannot catch one corner: a bulk load
    (:meth:`~repro.service.store.TemporalStore.load_dataset`) replaces
    the data without moving the revision, so a slow reader that started
    before the load could :meth:`put` a pre-load result *after* the
    load's invalidation — tagged with a still-current revision.  The
    reader's generation token (captured before its read) makes that
    entry unreturnable.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._lru = LRUCache(capacity, evictions=_EVICTIONS)
        self._generation = 0

    @property
    def generation(self) -> int:
        """Invalidation epoch; capture before computing a result to
        :meth:`put`."""
        return self._generation

    @property
    def capacity(self) -> int:
        """Maximum entries the cache holds."""
        return self._lru.capacity

    def get(self, key: str, revision: int) -> QueryResult | None:
        """The cached result for ``key`` at exactly ``revision``, or None.

        A revision or generation mismatch counts as a miss: the entry was
        computed against different data.
        """
        entry = self._lru.get(key)
        if (
            entry is None
            or entry[0] != self._generation
            or entry[1].revision != revision
        ):
            _trace.annotate(hit=False, revision=revision)
            if _metrics.ENABLED:
                _MISSES.inc()
            return None
        _trace.annotate(hit=True, revision=revision)
        if _metrics.ENABLED:
            _HITS.inc()
        return _snapshot(entry[1], revision)

    def put(
        self,
        key: str,
        revision: int,
        result: QueryResult,
        generation: int | None = None,
    ) -> None:
        """Remember ``result`` as computed at ``revision``.

        ``generation`` is the token captured before the result was
        computed (defaults to the current one).  Profiled results are the
        caller's to skip — profiles carry per-execution timings that make
        no sense replayed.
        """
        if generation is None:
            generation = self._generation
        self._lru.put(key, (generation, _snapshot(result, revision)))

    def invalidate(self) -> int:
        """Drop everything (a writer applied); returns entries dropped."""
        self._generation += 1
        dropped = self._lru.clear()
        if _metrics.ENABLED:
            _INVALIDATIONS.inc()
        return dropped

    def __len__(self) -> int:
        return len(self._lru)
