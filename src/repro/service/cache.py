"""Revision-tagged query-result cache for the serving layer.

:class:`QueryCache` memoizes *decoded* query results in front of the
store's readers-writer lock: a hit never takes the read lock, never
parses, never scans.  Correctness rests on two rules:

* every entry is tagged with the store **revision** (the last applied
  WAL LSN) it was computed at, and a lookup only returns an entry whose
  tag equals the revision the caller is about to serve — a stale entry
  is a miss, never a wrong answer; and
* a writer **invalidates wholesale** after applying
  (:meth:`~repro.service.store.TemporalStore._update`), so stale
  entries also stop occupying capacity.

Results are snapshotted on insert and copied on every hit, so callers
can mutate what they get back without poisoning the cache.

Keys are the whitespace-normalized query text (:func:`normalize_query`):
semantically identical requests differing only in layout share an entry,
while anything deeper (case, aliasing) intentionally stays distinct —
normalization must never conflate two queries with different answers.
"""

from __future__ import annotations

from ..cache import LRUCache
from ..engine.engine import QueryResult
from ..obs import metrics as _metrics
from ..obs import trace as _trace

__all__ = ["QueryCache", "normalize_query"]

_HITS = _metrics.counter("service.cache.hits")
_MISSES = _metrics.counter("service.cache.misses")
_EVICTIONS = _metrics.counter("service.cache.evictions")
_INVALIDATIONS = _metrics.counter("service.cache.invalidations")

DEFAULT_CAPACITY = 256


def normalize_query(text: str) -> str:
    """Collapse all whitespace runs — the result-cache key."""
    return " ".join(text.split())


def _snapshot(result: QueryResult, revision: int) -> QueryResult:
    """An isolated copy of a result (rows are row-level copies)."""
    return QueryResult(
        variables=list(result.variables),
        rows=[dict(row) for row in result.rows],
        revision=revision,
    )


class QueryCache:
    """An LRU of decoded query results, each tagged with a store revision.

    Besides the revision tag, every entry records the cache *generation*
    it was computed in (bumped on :meth:`invalidate`).  The revision tag
    alone cannot catch one corner: a bulk load
    (:meth:`~repro.service.store.TemporalStore.load_dataset`) replaces
    the data without moving the revision, so a slow reader that started
    before the load could :meth:`put` a pre-load result *after* the
    load's invalidation — tagged with a still-current revision.  The
    reader's generation token (captured before its read) makes that
    entry unreturnable.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._lru = LRUCache(capacity, evictions=_EVICTIONS)
        self._generation = 0

    @property
    def generation(self) -> int:
        """Invalidation epoch; capture before computing a result to
        :meth:`put`."""
        return self._generation

    @property
    def capacity(self) -> int:
        """Maximum entries the cache holds."""
        return self._lru.capacity

    def get(self, key: str, revision: int) -> QueryResult | None:
        """The cached result for ``key`` at exactly ``revision``, or None.

        A revision or generation mismatch counts as a miss: the entry was
        computed against different data.
        """
        entry = self._lru.get(key)
        if (
            entry is None
            or entry[0] != self._generation
            or entry[1].revision != revision
        ):
            _trace.annotate(hit=False, revision=revision)
            if _metrics.ENABLED:
                _MISSES.inc()
            return None
        _trace.annotate(hit=True, revision=revision)
        if _metrics.ENABLED:
            _HITS.inc()
        return _snapshot(entry[1], revision)

    def put(
        self,
        key: str,
        revision: int,
        result: QueryResult,
        generation: int | None = None,
    ) -> None:
        """Remember ``result`` as computed at ``revision``.

        ``generation`` is the token captured before the result was
        computed (defaults to the current one).  Profiled results are the
        caller's to skip — profiles carry per-execution timings that make
        no sense replayed.
        """
        if generation is None:
            generation = self._generation
        self._lru.put(key, (generation, _snapshot(result, revision)))

    def invalidate(self) -> int:
        """Drop everything (a writer applied); returns entries dropped."""
        self._generation += 1
        dropped = self._lru.clear()
        if _metrics.ENABLED:
            _INVALIDATIONS.inc()
        return dropped

    def __len__(self) -> int:
        return len(self._lru)
