"""The durable, concurrent temporal store behind ``repro-tx serve``.

:class:`TemporalStore` turns the bulk-loaded, single-shot :class:`~repro.engine.RDFTX`
library into a long-running service:

* **Durability** — every update is appended to a write-ahead log
  (:mod:`repro.service.wal`) *before* it is applied; checkpoints write a
  binary snapshot (:mod:`repro.service.snapshot`) and truncate the log.
  Recovery = load snapshot + replay the WAL records past its LSN.
* **Concurrency** — single-writer / multi-reader.  Writers are serialized
  by a mutex and apply under the write side of a readers-writer lock;
  queries run concurrently under the read side, pinned to the revision
  epoch (the last applied LSN) they started at.  This leans on the MVBT's
  multiversion structure: structure changes never destroy old entries, so
  a reader at revision *r* keeps seeing exactly the state at *r*.
* **Admission of bad updates** — updates are validated against the
  maintained graph before logging, so the WAL stays free of no-op records
  (duplicate inserts, deletes of dead facts, time-order violations).

Checkpoints run while readers continue (only writers pause): the engine is
immutable while the writer mutex is held, which is all serialization needs.
"""

from __future__ import annotations

import threading
import time as _time
from pathlib import Path

from ..engine.engine import RDFTX, QueryResult
from ..model.graph import TemporalGraph
from ..model.time import MIN_TIME, NOW
from ..mvbt.tree import DuplicateKeyError, MVBTConfig, TimeOrderError
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..obs import workload as _workload
from .cache import QueryCache, normalize_query
from .locks import ReadWriteLock, requires_writer_lock
from .sanitizer import sanitized_lock
from .snapshot import load_snapshot, save_snapshot
from .wal import WriteAheadLog

__all__ = ["ReadWriteLock", "StoreError", "TemporalStore"]

_UPDATES = _metrics.counter("service.store.updates")
_QUERIES = _metrics.counter("service.store.queries")
_CHECKPOINTS = _metrics.counter("service.store.checkpoints")
_REPLAYED = _metrics.counter("service.store.replayed_records")
_REPLAY_SKIPPED = _metrics.counter("service.store.replay_skipped")
_QUERY_HIST = _metrics.histogram("service.store.query_ms")
_UPDATE_HIST = _metrics.histogram("service.store.update_ms")


class StoreError(Exception):
    """Misuse of the store (e.g. loading a dataset into a non-empty one)."""


class TemporalStore:
    """A durable RDF-TX engine with single-writer/multi-reader serving.

    Usage::

        with TemporalStore("data/") as store:
            store.load_dataset(graph)          # once, on an empty store
            store.insert("UC", "president", "Carol_Christ", chronon)
            result = store.query("SELECT ?o {UC president ?o ?t}")
            print(result.revision)
    """

    SNAPSHOT_NAME = "store.snap"
    WAL_NAME = "store.wal"

    def __init__(
        self,
        directory: str | Path,
        *,
        use_optimizer: bool = True,
        config: MVBTConfig | None = None,
        group_size: int = 32,
        fsync: bool = True,
        checkpoint_every: int | None = None,
        stats_refresh_threshold: int | None = 256,
        stats_refresh_qerror: float | None = None,
        query_cache_size: int | None = 256,
        parallel: bool | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_path = self.directory / self.SNAPSHOT_NAME
        self.wal_path = self.directory / self.WAL_NAME
        #: serializes writers (updates, checkpoints, load/close).  May
        #: legitimately be held across fsync, hence allow_blocking.
        self._writer = sanitized_lock(
            threading.Lock(), "store.writer", allow_blocking=True
        )
        #: readers-writer lock guarding the in-memory engine.
        self._rw = ReadWriteLock()
        self.checkpoint_every = checkpoint_every
        self._since_checkpoint = 0
        self._closed = False
        #: revision-tagged result cache (None when disabled); hits are
        #: served without the read lock (see :meth:`query`).
        self._query_cache = (
            QueryCache(query_cache_size) if query_cache_size else None
        )
        #: wall-clock append times of recent LSNs, for replication
        #: seconds-behind telemetry.  Bounded; mutated only under
        #: ``_writer``, read lock-free (dict reads are atomic).  The WAL
        #: binary format stays timestamp-free — replay determinism is
        #: untouched.
        self._append_times: dict[int, float] = {}

        snapshot_lsn = 0
        if self.snapshot_path.exists():
            self.engine, meta = load_snapshot(
                self.snapshot_path, use_optimizer=use_optimizer
            )
            self.engine.stats_refresh_threshold = stats_refresh_threshold
            self.engine.drift.qerror_threshold = stats_refresh_qerror
            snapshot_lsn = meta["last_lsn"]
        else:
            optimizer = None
            if use_optimizer:
                from ..optimizer import Optimizer

                optimizer = Optimizer()
            self.engine = RDFTX(
                config=config, optimizer=optimizer,
                stats_refresh_threshold=stats_refresh_threshold,
                stats_refresh_qerror=stats_refresh_qerror,
            )
            self.engine.load(TemporalGraph())
        if parallel is not None:
            self.engine.parallel = parallel
        self._revision = snapshot_lsn

        self._wal = WriteAheadLog(
            self.wal_path, group_size=group_size, fsync=fsync,
            start_lsn=snapshot_lsn + 1,
        )
        self._replay(snapshot_lsn)

    # ------------------------------------------------------------- recovery

    @requires_writer_lock
    def _replay(self, snapshot_lsn: int) -> None:
        """Re-apply WAL records newer than the snapshot.

        Runs from ``__init__`` only, before the store is shared with any
        other thread — the constructor *is* the writer.

        Records at or below ``snapshot_lsn`` are already inside the
        snapshot (a crash between snapshot rename and WAL truncation
        leaves them behind); records that no longer apply are skipped —
        they can only arise from logs written by interrupted older runs,
        and skipping reproduces the original (failed) outcome.
        """
        for record in self._wal.recovered:
            if record.lsn <= snapshot_lsn:
                continue
            try:
                self._apply(record.op, record.subject, record.predicate,
                            record.object, record.time)
            except (DuplicateKeyError, TimeOrderError, KeyError, ValueError):
                if _metrics.ENABLED:
                    _REPLAY_SKIPPED.inc()
            else:
                if _metrics.ENABLED:
                    _REPLAYED.inc()
            self._revision = record.lsn
            self._since_checkpoint += 1

    # -------------------------------------------------------------- loading

    def load_dataset(self, graph: TemporalGraph,
                     compress: bool = True) -> None:
        """Bulk-load an initial dataset into an *empty* store.

        Bulk loading bypasses the WAL (logging millions of historical
        facts would dwarf the snapshot), so the load is made durable by an
        immediate checkpoint.
        """
        with self._writer:
            if self._revision != 0 or len(self.engine._graph or ()) != 0:
                raise StoreError("load_dataset requires an empty store")
            with self._rw.write_locked():
                self.engine.load(graph, compress=compress)
            if self._query_cache is not None:
                self._query_cache.invalidate()
        self.checkpoint()

    # -------------------------------------------------------------- updates

    def insert(self, subject: str, predicate: str, object: str,
               time: int) -> int:
        """Durably start a fact at ``time``; returns the update's LSN."""
        return self._update("insert", subject, predicate, object, time)

    def delete(self, subject: str, predicate: str, object: str,
               time: int) -> int:
        """Durably end a live fact at ``time``; returns the update's LSN."""
        return self._update("delete", subject, predicate, object, time)

    def _update(self, op: str, subject: str, predicate: str, object: str,
                time: int) -> int:
        started = _time.perf_counter()
        with _trace.span("store.update", op=op):
            with _trace.span("store.writer.wait"):
                self._writer.acquire()
            try:
                if self._closed:
                    raise StoreError("store is closed")
                self._validate(op, subject, predicate, object, time)
                # WAL first: once append returns, the update survives a
                # process kill (and a machine crash after the group
                # commit).
                lsn = self._wal.append(op, subject, predicate, object, time)
                self._note_append_time(lsn)
                with self._rw.write_locked():
                    self._apply(op, subject, predicate, object, time)
                    self._revision = lsn
                # After the revision bump: a concurrent reader that misses
                # here re-executes; one that hit just before served the
                # older revision it was pinned to.  Cleared outside the RW
                # lock — stale entries are already unreturnable (revision
                # tags), the clear only reclaims capacity.
                if self._query_cache is not None:
                    self._query_cache.invalidate()
                self._since_checkpoint += 1
                if _metrics.ENABLED:
                    _UPDATES.inc()
            finally:
                self._writer.release()
        if _metrics.ENABLED:
            _UPDATE_HIST.observe((_time.perf_counter() - started) * 1000.0)
        if (
            self.checkpoint_every is not None
            and self._since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()
        return lsn

    def _validate(self, op: str, subject: str, predicate: str, object: str,
                  time: int) -> None:
        if not (MIN_TIME <= time < NOW):
            raise ValueError(f"update time {time!r} outside [{MIN_TIME}, NOW)")
        watermark = max(
            tree.current_time for tree in self.engine.indexes.values()
        )
        if time < watermark:
            raise TimeOrderError(
                f"update at {time} before watermark {watermark}"
            )
        graph = self.engine._graph
        live_since = (
            graph.live_since(subject, predicate, object)
            if graph is not None else None
        )
        if op == "insert":
            if live_since is not None:
                raise DuplicateKeyError(
                    f"fact already live: ({subject}, {predicate}, {object})"
                )
        elif op == "delete":
            if live_since is None:
                raise KeyError(
                    f"fact not live: ({subject}, {predicate}, {object})"
                )
            if time <= live_since:
                raise TimeOrderError(
                    f"delete at {time} not after the fact's start "
                    f"{live_since}"
                )
        else:
            raise ValueError(f"unknown operation: {op!r}")

    @requires_writer_lock
    def _apply(self, op: str, subject: str, predicate: str, object: str,
               time: int) -> None:
        if op == "insert":
            self.engine.insert(subject, predicate, object, time)
        elif op == "delete":
            self.engine.delete(subject, predicate, object, time)
        else:
            raise ValueError(f"unknown operation: {op!r}")

    def sync(self) -> None:
        """Force the WAL's pending group to stable storage."""
        with self._writer:
            self._wal.sync()

    # ---------------------------------------------------------- replication

    #: How many recent LSN append times to retain for lag telemetry.
    APPEND_TIME_WINDOW = 4096

    def _note_append_time(self, lsn: int) -> None:
        """Remember when ``lsn`` became durable here (callers hold
        ``_writer``); prune beyond :data:`APPEND_TIME_WINDOW`."""
        self._append_times[lsn] = _time.time()
        while len(self._append_times) > self.APPEND_TIME_WINDOW:
            self._append_times.pop(next(iter(self._append_times)))

    def append_walltime(self, lsn: int) -> float | None:
        """Wall-clock time ``lsn`` was appended here, if still tracked.

        Shipped alongside ``wal_since`` records so replicas can report
        seconds-behind without the WAL format carrying timestamps.
        """
        return self._append_times.get(lsn)

    def wal_since(self, lsn: int) -> list:
        """Durable WAL records past ``lsn`` (the log-shipping read path).

        Lock-free: :meth:`WriteAheadLog.read_from` re-reads the file, and
        a frame is only readable once its append completed — a concurrent
        writer at worst hides its in-flight record until the next poll.
        """
        return self._wal.read_from(lsn)

    def apply_replicated(self, record) -> None:
        """Apply one shipped WAL record on a follower.

        The follower re-logs the record into its *own* WAL (log before
        apply, same as the primary) so its snapshot + WAL stack recovers
        independently.  Records at or below the current revision are
        skipped (idempotent re-delivery); a record that would *skip* an
        LSN raises :class:`StoreError` — the follower missed records
        (e.g. the primary checkpointed and truncated its log) and must
        resync from a snapshot instead of silently diverging.
        """
        with self._writer:
            if self._closed:
                raise StoreError("store is closed")
            if record.lsn <= self._revision:
                return
            if record.lsn != self._wal.next_lsn:
                raise StoreError(
                    f"replication gap: expected LSN {self._wal.next_lsn}, "
                    f"got {record.lsn}; resync from snapshot"
                )
            self._wal.append(record.op, record.subject, record.predicate,
                             record.object, record.time)
            self._note_append_time(record.lsn)
            with self._rw.write_locked():
                self._apply(record.op, record.subject, record.predicate,
                            record.object, record.time)
                self._revision = record.lsn
            if self._query_cache is not None:
                self._query_cache.invalidate()
            self._since_checkpoint += 1
            if _metrics.ENABLED:
                _UPDATES.inc()

    # -------------------------------------------------------------- queries

    def query(self, text, profile: bool = False) -> QueryResult:
        """Evaluate a SPARQLT query under the read lock.

        ``text`` is query text or a pre-parsed
        :class:`~repro.sparqlt.ast.Query` (the cluster scatter path ships
        parsed sub-queries; only text is cacheable).

        The result's ``revision`` is the store revision (last applied LSN)
        the reader was pinned to.

        The result cache sits entirely *outside* the read lock: a hit
        returns a result whose revision tag equals the revision the store
        held at lookup — equivalent to a reader pinned an instant
        earlier.  Profiled queries bypass the cache (profiles are
        per-execution).
        """
        started = _time.perf_counter()
        try:
            with _trace.span("store.query"):
                return self._query(text, profile, started)
        finally:
            if _metrics.ENABLED:
                _QUERY_HIST.observe(
                    (_time.perf_counter() - started) * 1000.0
                )

    def _query(self, text, profile: bool,
               started: float) -> QueryResult:
        cache = self._query_cache
        key: str | None = None
        generation = 0
        if cache is not None and not profile and isinstance(text, str):
            key = normalize_query(text)
            with _trace.span("cache.lookup"):
                hit = cache.get(key, self._revision)
            if hit is not None:
                _trace.annotate_trace(cache_hit=True)
                if _metrics.ENABLED:
                    _QUERIES.inc()
                    # Cache hits never reach the engine, so the workload
                    # registry is fed here (query=None: the text alone
                    # resolves the shape via the fingerprint text cache).
                    _workload.WORKLOAD.record_query(
                        None, text,
                        (_time.perf_counter() - started) * 1000.0,
                        rows=len(hit.rows), cache_hit=True,
                        trace_id=_trace.current_trace_id(),
                    )
                return hit
            generation = cache.generation
        _trace.annotate_trace(cache_hit=False)
        with self._rw.read_locked():
            revision = self._revision
            result = self.engine.query(text, profile=profile)
        result.revision = revision
        if key is not None:
            cache.put(key, revision, result, generation=generation)
        if _metrics.ENABLED:
            _QUERIES.inc()
        return result

    @property
    def revision(self) -> int:
        """LSN of the last applied update (0 for a fresh store)."""
        return self._revision

    @property
    def live_facts(self) -> int:
        return self.engine.indexes["spo"].live_records

    def predicates(self) -> list[str]:
        """Distinct predicate terms present at any time, sorted.

        The cluster coordinator rebuilds its predicate routing map from
        this inventory at bootstrap; runs under the read lock so the
        walk cannot race a concurrent update.
        """
        with self._rw.read_locked():
            graph = self.engine._graph
            return graph.predicates() if graph is not None else []

    @property
    def cached_results(self) -> int | None:
        """Entries currently in the result cache (None when disabled)."""
        if self._query_cache is None:
            return None
        return len(self._query_cache)

    def storage_report(self) -> dict:
        """Full storage-health report (``/debug/storage``, doctor).

        The engine walk runs under the read lock (a concurrent writer
        must not restructure nodes mid-walk); WAL and cache stats are
        read lock-free afterwards — they are monotonic counters where a
        benign race only skews a diagnostic by one in-flight update.
        """
        from ..obs import introspect as _introspect

        with self._rw.read_locked():
            report = _introspect.engine_report(self.engine)
        wal = self._wal.stats()
        wal["records_since_checkpoint"] = self._since_checkpoint
        report["store"] = {
            "revision": self._revision,
            "live_facts": self.live_facts,
            "wal": wal,
            "result_cache": (
                {
                    "entries": len(self._query_cache),
                    "capacity": self._query_cache.capacity,
                }
                if self._query_cache is not None else None
            ),
        }
        return report

    # ---------------------------------------------------------- maintenance

    def checkpoint(self) -> Path:
        """Snapshot the engine and truncate the WAL.

        Holds the writer mutex (no update can interleave) but *not* the
        read lock — the engine is immutable while no writer runs, so
        readers keep serving during serialization.  The snapshot is
        renamed into place before the WAL is truncated; a crash in
        between merely leaves records the next recovery skips by LSN.
        """
        with self._writer:
            if self._closed:
                raise StoreError("store is closed")
            self._wal.sync()
            path = save_snapshot(
                self.engine, self.snapshot_path, last_lsn=self._revision
            )
            self._wal.truncate()
            self._since_checkpoint = 0
            if _metrics.ENABLED:
                _CHECKPOINTS.inc()
            return path

    def refresh_statistics(self) -> bool:
        """Eagerly rebuild optimizer statistics (writer-exclusive)."""
        with self._writer, self._rw.write_locked():
            return self.engine.refresh_statistics()

    def close(self) -> None:
        """Flush the WAL and release the log handle (no implicit
        checkpoint — recovery replays the log)."""
        with self._writer:
            if self._closed:
                return
            self._closed = True
            self._wal.close()

    def __enter__(self) -> "TemporalStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
