"""Opt-in runtime lock-order sanitizer (``REPRO_LOCK_SANITIZER=1``).

The static rules (RL013/RL014) reason about the lock graph they can see;
this module watches the one that actually happens.  When enabled it
tracks, per thread, the stack of instrumented locks currently held and
maintains a process-global *witness graph* over lock **roles** (lockdep
style: all instances of a role share one node, so an A->B ordering
observed on one pair of instances conflicts with B->A observed on any
other).  Violations raise :class:`LockSanitizerError` immediately — at
the acquisition that would close a cycle, or at a blocking call made
under a lock whose role forbids it.

Roles instrumented by the serving and cluster layers:

==========================  ==============  =================================
role                        blocking ok?    guards
==========================  ==============  =================================
``store.rw``                no              in-memory engine (RW lock)
``store.writer``            yes (fsync)     store update/checkpoint mutex
``cluster.writer``          yes (RPC)       coordinator write serialization
``cluster.member.failover``  yes (RPC)      per-shard promote/reroute
``cluster.client.pool``     no              shard client socket free-list
==========================  ==============  =================================

Everything is a no-op unless the environment variable is ``"1"`` at
import time (worker processes use the ``spawn`` context and re-import
with the inherited environment, so the cluster is covered end to end)
or a test calls :func:`enable`.  When disabled, :func:`sanitized_lock`
returns the raw lock unwrapped — zero steady-state overhead.

``REPRO_LOCK_SANITIZER_STACK_DEPTH`` (default ``0``) additionally
captures that many stack frames per first-seen edge for witness reports.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from dataclasses import dataclass


class LockSanitizerError(RuntimeError):
    """A lock-order cycle or forbidden blocking call was observed."""


@dataclass(frozen=True)
class _Held:
    role: str
    allow_blocking: bool


def _stack_witness() -> str:
    depth = int(os.environ.get("REPRO_LOCK_SANITIZER_STACK_DEPTH", "0"))
    if depth <= 0:
        return ""
    frames = traceback.extract_stack(limit=depth + 3)[:-3]
    return " | " + " <- ".join(
        f"{frame.name}:{frame.lineno}" for frame in reversed(frames)
    )


class LockTracker:
    """Per-thread held stacks plus the process-global witness graph."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._mutex = threading.Lock()
        #: role -> set of roles acquired at least once while it was held
        self._edges: dict[str, set[str]] = {}
        #: first witness of each edge, for error messages and tests
        self._witness: dict[tuple[str, str], str] = {}

    # ---------------------------------------------------------- held stack

    def _held(self) -> list[_Held]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = self._local.held = []
        return held

    def held_roles(self) -> tuple[str, ...]:
        """The current thread's held roles, outermost first (for tests)."""
        return tuple(entry.role for entry in self._held())

    # --------------------------------------------------------- transitions

    def check_order(self, role: str) -> None:
        """Record edges held-roles -> ``role``; raise if one closes a cycle.

        Called *before* blocking on the underlying primitive, so an
        actual ABBA deadlock surfaces as an exception on the second
        thread instead of a hang.
        """
        held = self._held()
        if not held:
            return
        where = (
            f"thread {threading.current_thread().name!r}"
            f"{_stack_witness()}"
        )
        with self._mutex:
            for entry in held:
                self._add_edge(entry.role, role, where)

    def acquired(self, role: str, allow_blocking: bool) -> None:
        """Push ``role`` onto the thread's held stack (acquire succeeded)."""
        self._held().append(_Held(role, allow_blocking))

    def released(self, role: str) -> None:
        """Pop the innermost matching entry; tolerant of enable() races."""
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index].role == role:
                del held[index]
                return

    def check_blocking(self, label: str) -> None:
        """Raise if the thread holds any lock whose role forbids blocking."""
        for entry in self._held():
            if not entry.allow_blocking:
                raise LockSanitizerError(
                    f"blocking call {label!r} while holding "
                    f"{entry.role!r} (held: "
                    f"{' -> '.join(self.held_roles())})"
                )

    # ------------------------------------------------------- witness graph

    def _add_edge(self, src: str, dst: str, where: str) -> None:
        if src == dst:
            raise LockSanitizerError(
                f"recursive acquisition of {src!r} "
                f"(already held by this thread; {where})"
            )
        targets = self._edges.setdefault(src, set())
        if dst in targets:
            return
        if self._reaches(dst, src):
            back = self._witness_path(dst, src)
            raise LockSanitizerError(
                f"lock-order cycle: acquiring {dst!r} while holding "
                f"{src!r} ({where}), but the reverse order was already "
                f"observed: {back}"
            )
        targets.add(dst)
        self._witness[(src, dst)] = where

    def _reaches(self, src: str, dst: str) -> bool:
        frontier = [src]
        seen: set[str] = set()
        while frontier:
            node = frontier.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._edges.get(node, ()))
        return False

    def _witness_path(self, src: str, dst: str) -> str:
        """One witnessed edge chain src -> ... -> dst, for the report."""
        path = self._find_path(src, dst, [src], {src})
        if path is None:  # pragma: no cover - _reaches said it exists
            return f"{src} -> ... -> {dst}"
        legs = []
        for a, b in zip(path, path[1:]):
            legs.append(f"{a} -> {b} ({self._witness.get((a, b), '?')})")
        return "; ".join(legs)

    def _find_path(self, node, dst, path, seen):
        if node == dst:
            return path
        for nxt in sorted(self._edges.get(node, ())):
            if nxt in seen:
                continue
            found = self._find_path(nxt, dst, path + [nxt], seen | {nxt})
            if found is not None:
                return found
        return None

    # -------------------------------------------------------------- tests

    def edges(self) -> dict[str, set[str]]:
        with self._mutex:
            return {src: set(dsts) for src, dsts in self._edges.items()}

    def reset(self) -> None:
        with self._mutex:
            self._edges.clear()
            self._witness.clear()
        self._local = threading.local()


#: The process-global tracker; meaningful only while :func:`enabled`.
TRACKER = LockTracker()

_ENV_FLAG = "REPRO_LOCK_SANITIZER"
_enabled = os.environ.get(_ENV_FLAG) == "1"
_real_sleep = None


def enabled() -> bool:
    return _enabled


def enable() -> None:
    """Turn the sanitizer on (tests; production uses the env var)."""
    global _enabled
    _enabled = True
    install()


def disable() -> None:
    """Turn the sanitizer off and drop recorded state (tests)."""
    global _enabled
    _enabled = False
    TRACKER.reset()


def check_blocking(label: str) -> None:
    """Blocking-call hook for I/O sites (protocol send/recv, sleeps)."""
    if _enabled:
        TRACKER.check_blocking(label)


class SanitizedLock:
    """A ``threading.Lock`` wrapper reporting to the global tracker."""

    __slots__ = ("_raw", "role", "allow_blocking")

    def __init__(self, raw, role: str, allow_blocking: bool) -> None:
        self._raw = raw
        self.role = role
        self.allow_blocking = allow_blocking

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if _enabled:
            TRACKER.check_order(self.role)
        got = self._raw.acquire(blocking, timeout)
        if got and _enabled:
            TRACKER.acquired(self.role, self.allow_blocking)
        return got

    def release(self) -> None:
        if _enabled:
            TRACKER.released(self.role)
        self._raw.release()

    def locked(self) -> bool:
        return self._raw.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SanitizedLock({self.role!r}, raw={self._raw!r})"


def sanitized_lock(raw, role: str, allow_blocking: bool = False):
    """Wrap ``raw`` for tracking, or return it unchanged when disabled.

    The decision is made at *construction* time: stores and coordinators
    built before :func:`enable` keep raw locks.  That is the right
    trade — production never pays for the wrapper, and tests enable the
    sanitizer before building the objects under test.
    """
    if not _enabled:
        return raw
    return SanitizedLock(raw, role, allow_blocking)


def install() -> None:
    """Patch ``time.sleep`` so sleeping under a no-blocking lock raises.

    Idempotent; the wrapper consults :func:`enabled` at call time, so
    :func:`disable` restores normal behaviour without unpatching.
    """
    global _real_sleep
    if _real_sleep is not None:
        return
    _real_sleep = time.sleep

    def _checked_sleep(seconds):
        check_blocking("time.sleep")
        _real_sleep(seconds)

    time.sleep = _checked_sleep


if _enabled:  # pragma: no cover - exercised via the sanitize CI job
    install()
