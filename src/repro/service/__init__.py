"""The durable, concurrent serving layer (``repro-tx serve``).

Builds the paper's in-memory engine out into a system you can leave
running: a write-ahead log and binary snapshots for durability
(:mod:`~repro.service.wal`, :mod:`~repro.service.snapshot`), a
single-writer/multi-reader store with revision-pinned reads
(:mod:`~repro.service.store`), and a stdlib HTTP SPARQLT endpoint with
admission control (:mod:`~repro.service.server`).
"""

from .locks import ReadWriteLock, requires_writer_lock
from .snapshot import (
    SNAPSHOT_MAGIC,
    SnapshotError,
    is_snapshot,
    load_snapshot,
    save_snapshot,
)
from .server import TemporalService, serve
from .store import StoreError, TemporalStore
from .wal import WAL_MAGIC, WalError, WalRecord, WriteAheadLog, read_records

__all__ = [
    "requires_writer_lock",
    "SNAPSHOT_MAGIC",
    "SnapshotError",
    "is_snapshot",
    "load_snapshot",
    "save_snapshot",
    "TemporalService",
    "serve",
    "ReadWriteLock",
    "StoreError",
    "TemporalStore",
    "WAL_MAGIC",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "read_records",
]
