"""Binary snapshots of a whole RDF-TX engine.

A snapshot is the durable image the serving layer checkpoints to: the
dictionary, the four compressed MVBT forests (raw leaf buffers included, so
restore pays no re-encode), the maintained temporal graph, and — when an
optimizer is attached — its temporal histogram.  Together with the WAL
(:mod:`repro.service.wal`) it gives crash recovery: load the snapshot,
replay the log records past the snapshot's ``last_lsn``.

Files start with an 8-byte magic (:data:`SNAPSHOT_MAGIC`) so tools can
auto-detect them (``repro-tx info/query/shell`` accept snapshots wherever
they accept temporal N-Quads, skipping the parse + bulk-load + compress
pipeline).  The body is a pickled plain-data payload — node graphs are
flattened to tables by :meth:`repro.mvbt.tree.MVBT.dump_state` first, so
loading never recurses deeply.  Snapshots are a trusted format (your own
data directory), like pickle itself.
"""

from __future__ import annotations

import os
import pickle
import time as _time
from pathlib import Path

from ..engine.engine import RDFTX
from ..engine.patterns import INDEX_ORDERS
from ..model.dictionary import Dictionary
from ..model.graph import TemporalGraph
from ..mvbt.tree import MVBT, MVBTConfig
from ..obs import metrics as _metrics

_SAVES = _metrics.counter("service.snapshot.saves")
_LOADS = _metrics.counter("service.snapshot.loads")
_SAVE_TIMER = _metrics.REGISTRY.timer_stat("service.snapshot.save")
_LOAD_TIMER = _metrics.REGISTRY.timer_stat("service.snapshot.load")

#: File header identifying a snapshot (8 bytes).
SNAPSHOT_MAGIC = b"RTXSNAP1"

#: Payload schema version.
SNAPSHOT_VERSION = 1


class SnapshotError(Exception):
    """An unreadable or incompatible snapshot file."""


def is_snapshot(path: str | Path) -> bool:
    """Whether ``path`` starts with the snapshot magic bytes."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(SNAPSHOT_MAGIC)) == SNAPSHOT_MAGIC
    except OSError:
        return False


def serialize_engine(engine: RDFTX, *, last_lsn: int = 0) -> dict:
    """The plain-data snapshot payload of an engine."""
    dictionary = engine.dictionary or Dictionary()
    graph = engine._graph
    cfg = engine.config
    payload: dict = {
        "version": SNAPSHOT_VERSION,
        # Provenance metadata only — never read back into engine state, so
        # the wall-clock read cannot make two restores diverge.
        "created_at": _time.time(),  # repro-lint: disable=RL006
        "last_lsn": last_lsn,
        "config": (cfg.block_capacity, cfg.weak_min, cfg.epsilon),
        "dictionary": [dictionary.decode(i)
                       for i in range(1, dictionary.max_id + 1)],
        "indexes": {
            name: tree.dump_state() for name, tree in engine.indexes.items()
        },
        "graph": graph.encoded_rows() if graph is not None else None,
        "statistics": None,
        "optimizer_params": None,
    }
    optimizer = engine.optimizer
    if optimizer is not None:
        payload["optimizer_params"] = (
            optimizer.cm, optimizer.lm, optimizer.budget_fraction
        )
        if optimizer.statistics is not None:
            payload["statistics"] = optimizer.statistics.histogram
    return payload


def restore_engine(payload: dict, *, use_optimizer: bool = True) -> RDFTX:
    """Rebuild an engine from a snapshot payload."""
    if payload.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version: {payload.get('version')!r}"
        )
    dictionary = Dictionary()
    for term in payload["dictionary"]:
        dictionary.encode(term)
    optimizer = None
    if use_optimizer and payload["optimizer_params"] is not None:
        from ..optimizer import Optimizer

        cm, lm, budget_fraction = payload["optimizer_params"]
        optimizer = Optimizer(cm=cm, lm=lm, budget_fraction=budget_fraction)
    capacity, weak_min, epsilon = payload["config"]
    engine = RDFTX(
        config=MVBTConfig(capacity, weak_min, epsilon), optimizer=optimizer
    )
    engine.dictionary = dictionary
    for name in INDEX_ORDERS:
        engine.indexes[name] = MVBT.load_state(payload["indexes"][name])
    if payload["graph"] is not None:
        engine._graph = TemporalGraph.from_encoded(
            dictionary, payload["graph"]
        )
    if optimizer is not None:
        if payload["statistics"] is not None:
            from ..optimizer.statistics import Statistics

            optimizer.statistics = Statistics.from_histogram(
                payload["statistics"], dictionary
            )
        elif engine._graph is not None:
            optimizer.rebuild(engine._graph)
    return engine


def save_snapshot(engine: RDFTX, path: str | Path, *,
                  last_lsn: int = 0) -> Path:
    """Atomically write a snapshot of ``engine`` to ``path``.

    The payload goes to a temporary sibling first, is fsynced, and is then
    renamed over the target — a crash mid-save leaves the previous
    snapshot (or none) intact, never a half-written file.
    """
    started = _time.perf_counter()
    path = Path(path)
    payload = serialize_engine(engine, last_lsn=last_lsn)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(SNAPSHOT_MAGIC)
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    if _metrics.ENABLED:
        _SAVES.inc()
        _SAVE_TIMER.observe(_time.perf_counter() - started)
    return path


def load_snapshot(path: str | Path,
                  *, use_optimizer: bool = True) -> tuple[RDFTX, dict]:
    """Load a snapshot; returns ``(engine, meta)``.

    ``meta`` carries the non-structural payload fields (``last_lsn``,
    ``created_at``, ``version``).
    """
    started = _time.perf_counter()
    path = Path(path)
    with open(path, "rb") as handle:
        magic = handle.read(len(SNAPSHOT_MAGIC))
        if magic != SNAPSHOT_MAGIC:
            raise SnapshotError(f"{path}: not a snapshot file (bad magic)")
        try:
            payload = pickle.load(handle)
        except Exception as error:
            raise SnapshotError(f"{path}: corrupt snapshot: {error}") from error
    engine = restore_engine(payload, use_optimizer=use_optimizer)
    meta = {
        "last_lsn": payload.get("last_lsn", 0),
        "created_at": payload.get("created_at"),
        "version": payload.get("version"),
    }
    if _metrics.ENABLED:
        _LOADS.inc()
        _LOAD_TIMER.observe(_time.perf_counter() - started)
    return engine, meta
