"""HTTP SPARQLT endpoint over a :class:`~repro.service.store.TemporalStore`.

A stdlib-only serving layer (``http.server.ThreadingHTTPServer``): one
thread per connection, with admission control layered on top —

* a bounded semaphore caps in-flight requests (``max_inflight``); a full
  server answers **503** instead of queueing unboundedly, and
* each admitted request runs on a worker pool with a deadline
  (``request_timeout``); overruns answer **504** (the worker finishes in
  the background — the MVBT readers are safe to abandon).

Endpoints::

    GET  /healthz       liveness + store revision / live fact count
    GET  /metrics       the obs registry (JSON; ?format=text for humans)
    POST /query         {"query": "...", "profile": false} -> rows
    POST /update        {"op": "insert"|"delete", "subject": ..., ...}
                        or {"updates": [...]} for a batch
    POST /checkpoint    snapshot + WAL truncation

Temporal bindings serialize as ``[[start, end|null], ...]`` — ``null``
marks a still-live period (the paper's *NOW*).
"""

from __future__ import annotations

import contextlib
import itertools
import json
import logging
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlparse, parse_qs

from ..model.time import NOW, PeriodSet, TimeError, date_to_chronon
from ..mvbt.tree import DuplicateKeyError, TimeOrderError
from ..obs import metrics as _metrics
from ..sparqlt.errors import SparqltError
from .store import StoreError, TemporalStore

_REQUESTS = _metrics.counter("service.server.requests")
_REJECTED = _metrics.counter("service.server.rejected")
_TIMEOUTS = _metrics.counter("service.server.timeouts")
_ERRORS = _metrics.counter("service.server.errors")
_REQUEST_TIMER = _metrics.REGISTRY.timer_stat("service.server.request")

_LOG = logging.getLogger("repro.service.server")

#: Per-process sequence feeding unexpected-failure error ids, so a client
#: 500 can be matched to the logged traceback.
_ERROR_SEQ = itertools.count(1)

#: Largest accepted request body (64 MiB) — guards the u32 length read.
_MAX_BODY = 64 * 1024 * 1024


class ServiceUnavailable(Exception):
    """Raised internally when admission control rejects a request."""


def _encode_value(value):
    if isinstance(value, PeriodSet):
        return [
            [p.start, None if p.end == NOW else p.end] for p in value
        ]
    return value


def _parse_time(value) -> int:
    """An update's time: a chronon int or an ISO date string."""
    if isinstance(value, bool):
        raise ValueError(f"bad time value: {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return date_to_chronon(value)
    raise ValueError(f"bad time value: {value!r}")


class TemporalService(ThreadingHTTPServer):
    """The HTTP server; owns the store and the admission machinery."""

    daemon_threads = True

    def __init__(
        self,
        store: TemporalStore,
        address: tuple[str, int] = ("127.0.0.1", 0),
        *,
        max_inflight: int = 8,
        request_timeout: float | None = 30.0,
        admission_timeout: float = 0.05,
    ) -> None:
        super().__init__(address, _Handler)
        self.store = store
        self.max_inflight = max_inflight
        self.request_timeout = request_timeout
        #: how long a request waits for an admission slot before 503.
        self.admission_timeout = admission_timeout
        self._slots = threading.BoundedSemaphore(max_inflight)
        self._pool = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-serve"
        )

    @property
    def port(self) -> int:
        return self.server_address[1]

    @contextlib.contextmanager
    def admitted(self):
        """Acquire an in-flight slot or raise :class:`ServiceUnavailable`."""
        if not self._slots.acquire(timeout=self.admission_timeout):
            raise ServiceUnavailable
        try:
            yield
        finally:
            self._slots.release()

    def run_with_deadline(self, fn):
        """Run ``fn`` on the pool, bounded by ``request_timeout``."""
        future = self._pool.submit(fn)
        try:
            return future.result(timeout=self.request_timeout)
        except FutureTimeoutError:
            raise

    def shutdown(self) -> None:
        super().shutdown()
        self._pool.shutdown(wait=False)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    # Nagle + delayed ACK costs ~40 ms per keep-alive round trip; small
    # JSON responses want the segment pushed immediately.
    disable_nagle_algorithm = True
    server: TemporalService

    # --------------------------------------------------------------- plumbing

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging would drown test output; metrics cover it.

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length > _MAX_BODY:
            raise ValueError("request body too large")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # ----------------------------------------------------------------- routes

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        if _metrics.ENABLED:
            _REQUESTS.inc()
        if parsed.path == "/healthz":
            store = self.server.store
            self._send_json(200, {
                "status": "ok",
                "revision": store.revision,
                "live_facts": store.live_facts,
                "cached_results": store.cached_results,
            })
        elif parsed.path == "/metrics":
            wants_text = parse_qs(parsed.query).get("format") == ["text"]
            if wants_text:
                body = _metrics.REGISTRY.render_text().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "text/plain; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                self._send_json(200, _metrics.REGISTRY.snapshot())
        else:
            self._send_error(404, f"no such endpoint: {parsed.path}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        import time as _time

        started = _time.perf_counter()
        if _metrics.ENABLED:
            _REQUESTS.inc()
        path = urlparse(self.path).path
        handler = {
            "/query": self._handle_query,
            "/update": self._handle_update,
            "/checkpoint": self._handle_checkpoint,
        }.get(path)
        if handler is None:
            self._send_error(404, f"no such endpoint: {path}")
            return
        try:
            payload = self._read_body() if path != "/checkpoint" else {}
        except (ValueError, json.JSONDecodeError) as error:
            self._send_error(400, f"bad request body: {error}")
            return
        try:
            with self.server.admitted():
                result = self.server.run_with_deadline(
                    lambda: handler(payload)
                )
            self._send_json(200, result)
        except ServiceUnavailable:
            if _metrics.ENABLED:
                _REJECTED.inc()
            self._send_error(503, "server saturated, retry later")
        except FutureTimeoutError:
            if _metrics.ENABLED:
                _TIMEOUTS.inc()
            self._send_error(504, "request deadline exceeded")
        except (SparqltError, ValueError, TimeError) as error:
            self._send_error(400, str(error))
        except (DuplicateKeyError, TimeOrderError, KeyError,
                StoreError) as error:
            self._send_error(409, str(error))
        except Exception:
            # Defensive boundary: never kill the connection thread, but
            # never swallow the traceback either — log it under an error
            # id the client can quote back.
            error_id = f"{os.getpid():x}-{next(_ERROR_SEQ):06x}"
            _LOG.exception("request %s failed (error id %s)", path, error_id)
            if _metrics.ENABLED:
                _ERRORS.inc()
            self._send_json(500, {
                "error": "internal error; see server log",
                "error_id": error_id,
            })
        finally:
            if _metrics.ENABLED:
                _REQUEST_TIMER.observe(_time.perf_counter() - started)

    # ---------------------------------------------------------- POST bodies

    def _handle_query(self, payload: dict) -> dict:
        text = payload.get("query")
        if not isinstance(text, str) or not text.strip():
            raise ValueError("missing 'query' string")
        result = self.server.store.query(
            text, profile=bool(payload.get("profile"))
        )
        response = {
            "variables": result.variables,
            "rows": [
                {name: _encode_value(value) for name, value in row.items()}
                for row in result.rows
            ],
            "revision": result.revision,
        }
        if result.profile is not None:
            response["profile"] = result.profile.to_dict()
        return response

    def _handle_update(self, payload: dict) -> dict:
        updates = payload.get("updates")
        if updates is None:
            updates = [payload]
        if not isinstance(updates, list) or not updates:
            raise ValueError("'updates' must be a non-empty list")
        store = self.server.store
        last_lsn = None
        for update in updates:
            if not isinstance(update, dict):
                raise ValueError("each update must be a JSON object")
            op = update.get("op")
            if op not in ("insert", "delete"):
                raise ValueError(f"bad op: {op!r}")
            terms = []
            for field in ("subject", "predicate", "object"):
                term = update.get(field)
                if not isinstance(term, str) or not term:
                    raise ValueError(f"missing '{field}' string")
                terms.append(term)
            time = _parse_time(update.get("time"))
            if op == "insert":
                last_lsn = store.insert(*terms, time)
            else:
                last_lsn = store.delete(*terms, time)
        return {"applied": len(updates), "revision": last_lsn}

    def _handle_checkpoint(self, payload: dict) -> dict:
        path = self.server.store.checkpoint()
        return {"snapshot": str(path),
                "revision": self.server.store.revision}


def serve(
    store: TemporalStore,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs,
) -> TemporalService:
    """Create a service bound to ``host:port`` (not yet serving).

    Call ``serve_forever()`` on the result (or run it on a thread); the
    bound port is ``service.port`` — useful with ``port=0`` in tests.
    """
    return TemporalService(store, (host, port), **kwargs)
