"""HTTP SPARQLT endpoint over a :class:`~repro.service.store.TemporalStore`.

A stdlib-only serving layer (``http.server.ThreadingHTTPServer``): one
thread per connection, with admission control layered on top —

* a bounded semaphore caps in-flight requests (``max_inflight``); a full
  server answers **503** instead of queueing unboundedly, and
* each admitted request runs on a worker pool with a deadline
  (``request_timeout``); overruns answer **504** (the worker finishes in
  the background — the MVBT readers are safe to abandon).

Endpoints::

    GET  /healthz       liveness + store revision / live fact count
                        + process uptime / RSS
    GET  /metrics       the obs registry (JSON; ?format=text for humans,
                        Prometheus text when Accept: text/plain);
                        ?scope=cluster federates every member's registry
                        behind a coordinator (labeled per shard/role)
    GET  /debug/traces  recent request traces (?id=<trace_id> for the
                        full span tree, ?limit=N for the listing)
    GET  /debug/events  the cluster event ring (promotions, lag,
                        resyncs), merged across members on a coordinator
    GET  /debug/workload  per-shape query aggregates (?limit=N)
    GET  /debug/storage   MVBT / dictionary / WAL / cache health report
    GET  /debug/profile   on-demand sampling profiler (?seconds=N);
                        returns collapsed-stack text for flamegraph.pl
    POST /query         {"query": "...", "profile": false} -> rows
    POST /update        {"op": "insert"|"delete", "subject": ..., ...}
                        or {"updates": [...]} for a batch
    POST /checkpoint    snapshot + WAL truncation

Every sampled POST carries a ``trace_id`` in its response; the matching
span tree (admission wait, lock waits, cache lookup, compile, scans,
joins, WAL commit) is retrievable from ``/debug/traces`` while it stays
in the ring buffer.  Requests slower than ``--slow-ms`` additionally log
their full span tree through the structured logger.

Temporal bindings serialize as ``[[start, end|null], ...]`` — ``null``
marks a still-live period (the paper's *NOW*).
"""

from __future__ import annotations

import contextlib
import itertools
import json
import logging
import os
import re
import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlparse, parse_qs

from ..model.time import NOW, PeriodSet, TimeError, date_to_chronon
from ..mvbt.tree import DuplicateKeyError, TimeOrderError
from ..obs import events as _events
from ..obs import federation as _federation
from ..obs import introspect as _introspect
from ..obs import log as _obslog
from ..obs import metrics as _metrics
from ..obs import sampler as _sampler
from ..obs import trace as _trace
from ..obs import workload as _workload
from ..sparqlt.errors import SparqltError
from .store import StoreError, TemporalStore

_REQUESTS = _metrics.counter("service.server.requests")
_REJECTED = _metrics.counter("service.server.rejected")
_TIMEOUTS = _metrics.counter("service.server.timeouts")
_ERRORS = _metrics.counter("service.server.errors")
_REQUEST_TIMER = _metrics.REGISTRY.timer_stat("service.server.request")
_REQUEST_HIST = _metrics.histogram("service.server.request_ms")
_UPTIME = _metrics.gauge("process.uptime_seconds")
_RSS = _metrics.gauge("process.rss_bytes")

#: Shape of the trace ids :mod:`repro.obs.trace` mints (pid-seq hex); a
#: lookup that cannot match gets 400, a well-formed miss gets 404.
_TRACE_ID_RE = re.compile(r"^[0-9a-f]+-[0-9a-f]{8,}$")

_LOG = logging.getLogger("repro.service.server")

#: Per-process sequence feeding unexpected-failure error ids, so a client
#: 500 can be matched to the logged traceback.
_ERROR_SEQ = itertools.count(1)

#: Largest accepted request body (64 MiB) — guards the u32 length read.
_MAX_BODY = 64 * 1024 * 1024


class ServiceUnavailable(Exception):
    """Raised internally when admission control rejects a request."""


def _encode_value(value):
    if isinstance(value, PeriodSet):
        return [
            [p.start, None if p.end == NOW else p.end] for p in value
        ]
    return value


def _parse_time(value) -> int:
    """An update's time: a chronon int or an ISO date string."""
    if isinstance(value, bool):
        raise ValueError(f"bad time value: {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return date_to_chronon(value)
    raise ValueError(f"bad time value: {value!r}")


class TemporalService(ThreadingHTTPServer):
    """The HTTP server; owns the store and the admission machinery."""

    daemon_threads = True

    def __init__(
        self,
        store: TemporalStore,
        address: tuple[str, int] = ("127.0.0.1", 0),
        *,
        max_inflight: int = 8,
        request_timeout: float | None = 30.0,
        admission_timeout: float = 0.05,
        trace_sample: float = 1.0,
        slow_ms: float | None = None,
        trace_capacity: int = 128,
        role: str = "standalone",
        shard_id: int | None = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.store = store
        #: this process's place in a cluster topology, reported by
        #: /healthz: "standalone", "coordinator", "shard" or "replica".
        self.role = role
        self.shard_id = shard_id
        self.max_inflight = max_inflight
        self.request_timeout = request_timeout
        #: how long a request waits for an admission slot before 503.
        self.admission_timeout = admission_timeout
        #: fraction of POST requests that record a full trace.
        self.sampler = _trace.Sampler(trace_sample)
        #: requests slower than this (ms) log their span tree; None = off.
        self.slow_ms = slow_ms
        #: ring of recently finished traces, served at /debug/traces.
        self.traces = _trace.TraceBuffer(trace_capacity)
        self._slots = threading.BoundedSemaphore(max_inflight)
        self._pool = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-serve"
        )

    @property
    def port(self) -> int:
        return self.server_address[1]

    @contextlib.contextmanager
    def admitted(self):
        """Acquire an in-flight slot or raise :class:`ServiceUnavailable`."""
        with _trace.span("admission.wait"):
            admitted = self._slots.acquire(timeout=self.admission_timeout)
        if not admitted:
            raise ServiceUnavailable
        try:
            yield
        finally:
            self._slots.release()

    def run_with_deadline(self, fn):
        """Run ``fn`` on the pool, bounded by ``request_timeout``.

        The submission carries the caller's trace context, so spans the
        worker opens nest under this request's root span.
        """
        future = _trace.submit(self._pool, fn)
        try:
            return future.result(timeout=self.request_timeout)
        except FutureTimeoutError:
            raise

    def shutdown(self) -> None:
        super().shutdown()
        self._pool.shutdown(wait=False)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    # Nagle + delayed ACK costs ~40 ms per keep-alive round trip; small
    # JSON responses want the segment pushed immediately.
    disable_nagle_algorithm = True
    server: TemporalService

    # --------------------------------------------------------------- plumbing

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        # http.server's ad-hoc lines (connection resets, malformed
        # requests) go through the structured logger at debug level, so
        # they are recoverable with --log-level debug instead of lost.
        _obslog.LOGGER.debug("http_server", message=format % args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length > _MAX_BODY:
            raise ValueError("request body too large")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # ----------------------------------------------------------------- routes

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        if _metrics.ENABLED:
            _REQUESTS.inc()
        # GETs serve monitoring endpoints; debug level keeps scrape
        # polling out of the default access log.
        _obslog.LOGGER.debug("http_access", method="GET", path=parsed.path)
        if parsed.path == "/healthz":
            store = self.server.store
            payload = {
                "status": "ok",
                "role": self.server.role,
                "shard_id": self.server.shard_id,
                "revision": store.revision,
                "applied_lsn": store.revision,
                "live_facts": store.live_facts,
                "cached_results": store.cached_results,
                "uptime_seconds": round(
                    _introspect.process_uptime_seconds(), 3
                ),
                "rss_bytes": _introspect.process_rss_bytes(),
            }
            # A ClusterStore duck-types TemporalStore and adds a
            # topology report; surface it so `repro-tx cluster-status`
            # needs nothing beyond /healthz.
            cluster_status = getattr(store, "cluster_status", None)
            if cluster_status is not None:
                payload["cluster"] = cluster_status()
            self._send_json(200, payload)
        elif parsed.path == "/metrics":
            if _metrics.ENABLED:
                _UPTIME.set(_introspect.process_uptime_seconds())
                rss = _introspect.process_rss_bytes()
                if rss is not None:
                    _RSS.set(rss)
            query = parse_qs(parsed.query)
            accept = self.headers.get("Accept", "")
            if query.get("scope") == ["cluster"]:
                self._handle_cluster_metrics(query, accept)
            elif query.get("format") == ["text"]:
                self._send_text(_metrics.REGISTRY.render_text())
            elif (query.get("format") == ["prometheus"]
                  or "text/plain" in accept):
                # Standard scrapers send Accept: text/plain...; JSON
                # stays the default for everything else.
                self._send_text(_metrics.REGISTRY.render_prometheus())
            else:
                self._send_json(200, _metrics.REGISTRY.snapshot())
        elif parsed.path == "/debug/traces":
            self._handle_traces(parse_qs(parsed.query))
        elif parsed.path == "/debug/events":
            self._handle_events(parse_qs(parsed.query))
        elif parsed.path == "/debug/workload":
            self._handle_workload(parse_qs(parsed.query))
        elif parsed.path == "/debug/storage":
            self._send_json(200, self.server.store.storage_report())
        elif parsed.path == "/debug/profile":
            self._handle_profile(parse_qs(parsed.query))
        else:
            self._send_error(404, f"no such endpoint: {parsed.path}")

    def _send_text(self, body_text: str, status: int = 200) -> None:
        body = body_text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _handle_cluster_metrics(self, query: dict, accept: str) -> None:
        """``/metrics?scope=cluster``: the coordinator's federated pull."""
        federated_metrics = getattr(
            self.server.store, "federated_metrics", None
        )
        if federated_metrics is None:
            self._send_error(
                400, "scope=cluster requires a cluster coordinator"
            )
            return
        force = query.get("force") == ["1"]
        try:
            federated = federated_metrics(force=force)
        except StoreError as error:
            self._send_error(409, str(error))
            return
        if (query.get("format") == ["prometheus"]
                or "text/plain" in accept):
            self._send_text(
                _federation.render_prometheus_cluster(federated)
            )
        else:
            self._send_json(200, federated)

    def _handle_events(self, query: dict) -> None:
        """``/debug/events``: the event ring (cluster-merged when the
        store is a coordinator)."""
        try:
            limit = int(query.get("limit", ["100"])[0])
        except ValueError:
            self._send_error(400, "bad 'limit' value")
            return
        cluster_events = getattr(self.server.store, "cluster_events", None)
        if cluster_events is not None:
            try:
                events = cluster_events(limit=limit)
            except StoreError as error:
                self._send_error(409, str(error))
                return
        else:
            events = _events.EVENTS.recent(limit)
        self._send_json(200, {
            "enabled": _metrics.ENABLED,
            "events": events,
            "counts": _events.EVENTS.counts(),
        })

    def _handle_traces(self, query: dict) -> None:
        trace_id = query.get("id", [None])[0]
        if trace_id is not None:
            if not _TRACE_ID_RE.match(trace_id):
                # Distinguish "can never exist" from "already evicted":
                # a malformed id is a caller bug, not a cache miss.
                self._send_error(400, f"malformed trace id: {trace_id}")
                return
            found = self.server.traces.get(trace_id)
            if found is None:
                self._send_error(404, f"no such trace: {trace_id}")
            else:
                self._send_json(200, found.as_dict())
            return
        try:
            limit = int(query.get("limit", ["20"])[0])
        except ValueError:
            self._send_error(400, "bad 'limit' value")
            return
        listing = [
            {
                "trace_id": t.trace_id,
                "name": t.name,
                "started_at": t.started_at,
                "duration_ms": round(t.duration_ms, 3),
                "attrs": dict(t.attrs),
            }
            for t in self.server.traces.recent(limit)
        ]
        self._send_json(200, {"traces": listing})

    def _handle_workload(self, query: dict) -> None:
        try:
            limit = int(query.get("limit", ["50"])[0])
        except ValueError:
            self._send_error(400, "bad 'limit' value")
            return
        snap = _workload.WORKLOAD.snapshot(limit=limit)
        snap["enabled"] = _metrics.ENABLED
        self._send_json(200, snap)

    def _handle_profile(self, query: dict) -> None:
        try:
            seconds = float(query.get("seconds", ["5"])[0])
        except ValueError:
            self._send_error(400, "bad 'seconds' value")
            return
        try:
            collapsed = _sampler.profile(seconds)
        except ValueError as error:
            self._send_error(400, str(error))
        except _sampler.ProfilerDisabled as error:
            self._send_error(503, str(error))
        except _sampler.ProfilerBusy as error:
            self._send_error(409, str(error))
        else:
            self._send_text(collapsed)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        import time as _time

        started = _time.perf_counter()
        if _metrics.ENABLED:
            _REQUESTS.inc()
        path = urlparse(self.path).path
        handler = {
            "/query": self._handle_query,
            "/update": self._handle_update,
            "/checkpoint": self._handle_checkpoint,
        }.get(path)
        if handler is None:
            self._send_error(404, f"no such endpoint: {path}")
            return
        try:
            payload = self._read_body() if path != "/checkpoint" else {}
        except (ValueError, json.JSONDecodeError) as error:
            self._send_error(400, f"bad request body: {error}")
            return
        if _metrics.ENABLED and self.server.sampler.keep():
            trace_cm = _trace.start_trace(
                f"POST {path}", self.server.traces, path=path
            )
        else:
            trace_cm = contextlib.nullcontext()
        trace = None
        status = 200
        try:
            with trace_cm as opened:
                if isinstance(opened, _trace.Trace):
                    trace = opened
                with self.server.admitted():
                    result = self.server.run_with_deadline(
                        lambda: handler(payload)
                    )
                if trace is not None:
                    result["trace_id"] = trace.trace_id
            self._send_json(200, result)
        except ServiceUnavailable:
            status = 503
            if _metrics.ENABLED:
                _REJECTED.inc()
            payload = {"error": "server saturated, retry later"}
            if trace is not None:
                # The trace names the victim: its admission.wait span
                # shows how long the request queued before rejection.
                payload["trace_id"] = trace.trace_id
            self._send_json(503, payload)
        except FutureTimeoutError:
            status = 504
            if _metrics.ENABLED:
                _TIMEOUTS.inc()
            payload = {"error": "request deadline exceeded"}
            if trace is not None:
                payload["trace_id"] = trace.trace_id
            self._send_json(504, payload)
        except (SparqltError, ValueError, TimeError) as error:
            status = 400
            self._send_error(400, str(error))
        except (DuplicateKeyError, TimeOrderError, KeyError,
                StoreError) as error:
            status = 409
            self._send_error(409, str(error))
        except Exception:
            # Defensive boundary: never kill the connection thread, but
            # never swallow the traceback either — log it under an error
            # id the client can quote back.
            status = 500
            error_id = f"{os.getpid():x}-{next(_ERROR_SEQ):06x}"
            _LOG.exception("request %s failed (error id %s)", path, error_id)
            if _metrics.ENABLED:
                _ERRORS.inc()
            self._send_json(500, {
                "error": "internal error; see server log",
                "error_id": error_id,
            })
        finally:
            elapsed_ms = (_time.perf_counter() - started) * 1000.0
            if _metrics.ENABLED:
                _REQUEST_TIMER.observe(elapsed_ms / 1000.0)
                _REQUEST_HIST.observe(elapsed_ms)
            self._finish_request(path, status, elapsed_ms, trace)

    def _finish_request(self, path: str, status: int, elapsed_ms: float,
                        trace) -> None:
        """Access log + slow-query log for a finished POST."""
        if trace is not None:
            trace.attrs["status"] = status
        cache_hit = trace.attrs.get("cache_hit") if trace else None
        _obslog.LOGGER.info(
            "http_access",
            method="POST",
            path=path,
            status=status,
            duration_ms=round(elapsed_ms, 3),
            trace_id=trace.trace_id if trace else None,
            cache_hit=cache_hit,
        )
        slow_ms = self.server.slow_ms
        if (trace is not None and slow_ms is not None
                and elapsed_ms >= slow_ms):
            _obslog.LOGGER.warning(
                "slow_query",
                path=path,
                status=status,
                duration_ms=round(elapsed_ms, 3),
                trace_id=trace.trace_id,
                threshold_ms=slow_ms,
                trace=trace.as_dict(),
            )

    # ---------------------------------------------------------- POST bodies

    def _handle_query(self, payload: dict) -> dict:
        text = payload.get("query")
        if not isinstance(text, str) or not text.strip():
            raise ValueError("missing 'query' string")
        result = self.server.store.query(
            text, profile=bool(payload.get("profile"))
        )
        response = {
            "variables": result.variables,
            "rows": [
                {name: _encode_value(value) for name, value in row.items()}
                for row in result.rows
            ],
            "revision": result.revision,
        }
        if result.profile is not None:
            response["profile"] = result.profile.to_dict()
        return response

    def _handle_update(self, payload: dict) -> dict:
        updates = payload.get("updates")
        if updates is None:
            updates = [payload]
        if not isinstance(updates, list) or not updates:
            raise ValueError("'updates' must be a non-empty list")
        store = self.server.store
        last_lsn = None
        for update in updates:
            if not isinstance(update, dict):
                raise ValueError("each update must be a JSON object")
            op = update.get("op")
            if op not in ("insert", "delete"):
                raise ValueError(f"bad op: {op!r}")
            terms = []
            for field in ("subject", "predicate", "object"):
                term = update.get(field)
                if not isinstance(term, str) or not term:
                    raise ValueError(f"missing '{field}' string")
                terms.append(term)
            time = _parse_time(update.get("time"))
            if op == "insert":
                last_lsn = store.insert(*terms, time)
            else:
                last_lsn = store.delete(*terms, time)
        return {"applied": len(updates), "revision": last_lsn}

    def _handle_checkpoint(self, payload: dict) -> dict:
        path = self.server.store.checkpoint()
        return {"snapshot": str(path),
                "revision": self.server.store.revision}


def serve(
    store: TemporalStore,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs,
) -> TemporalService:
    """Create a service bound to ``host:port`` (not yet serving).

    Call ``serve_forever()`` on the result (or run it on a thread); the
    bound port is ``service.port`` — useful with ``port=0`` in tests.
    """
    return TemporalService(store, (host, port), **kwargs)
