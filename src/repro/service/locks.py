"""Concurrency primitives of the serving layer.

:class:`ReadWriteLock` is the readers-writer lock guarding the in-memory
engine of a :class:`~repro.service.store.TemporalStore`;
:func:`requires_writer_lock` is the *lock-discipline marker* the static
analyzer (``repro-tx lint``, rules RL002/RL003) keys off: decorating a
method asserts "every caller holds writer exclusivity", so the checker
accepts its engine mutations without seeing an enclosing
``write_locked()`` block.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterator, TypeVar

from ..obs import trace as _trace
from . import sanitizer as _san

_F = TypeVar("_F", bound=Callable)


def requires_writer_lock(fn: _F) -> _F:
    """Mark ``fn`` as callable only while the store's writer mutex (and,
    for engine mutations, the write side of the RW lock) is held.

    Purely declarative — the decorator adds no runtime checking (the hot
    update path cannot afford one) but sets ``__requires_writer_lock__``
    so both the static analyzer and debugging tools can find the marked
    frontier.
    """
    fn.__requires_writer_lock__ = True  # type: ignore[attr-defined]
    return fn


class ReadWriteLock:
    """A readers-writer lock with writer preference.

    Many readers may hold the lock at once; a writer waits for them to
    drain and then holds it exclusively.  Arriving readers queue behind a
    waiting writer so a steady query stream cannot starve updates (the
    serving layer's writes are short: four tree inserts).
    """

    #: Sanitizer role shared by every instance (lockdep-style class key).
    SANITIZER_ROLE = "store.rw"

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        if _san.enabled():
            _san.TRACKER.check_order(self.SANITIZER_ROLE)
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        if _san.enabled():
            _san.TRACKER.acquired(self.SANITIZER_ROLE, allow_blocking=False)

    def release_read(self) -> None:
        if _san.enabled():
            _san.TRACKER.released(self.SANITIZER_ROLE)
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        if _san.enabled():
            _san.TRACKER.check_order(self.SANITIZER_ROLE)
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        if _san.enabled():
            _san.TRACKER.acquired(self.SANITIZER_ROLE, allow_blocking=False)

    def release_write(self) -> None:
        if _san.enabled():
            _san.TRACKER.released(self.SANITIZER_ROLE)
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextlib.contextmanager
    def read_locked(self) -> Iterator[None]:
        # The span covers only the wait, not the critical section — the
        # interesting signal is how long a reader queued behind writers.
        with _trace.span("lock.read.wait"):
            self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextlib.contextmanager
    def write_locked(self) -> Iterator[None]:
        with _trace.span("lock.write.wait"):
            self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
