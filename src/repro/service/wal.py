"""Write-ahead log for the serving layer.

An append-only file of ``insert``/``delete`` operations, written *before*
the update is applied to the in-memory engine, so a crash loses at most the
records not yet pushed to disk.  The framing is

``[file header: 8-byte magic] ([u32 length][u32 crc32][payload])*``

with each payload carrying ``(lsn, op, time, subject, predicate, object)``.
The CRC plus the length prefix make a torn tail (crash mid-write)
detectable: recovery stops at the first bad frame and truncates it away.

Durability is *group commit*: records are pushed to the OS on every append
(so a process kill never loses an acknowledged update), but the expensive
``fsync`` — which protects against machine/power failure — runs once per
``group_size`` appends, amortizing it across a burst of writes.  Explicit
:meth:`WriteAheadLog.sync` flushes the tail of a batch.

LSNs are monotonic across the life of a store, surviving checkpoint
truncation (the snapshot records the last applied LSN; replay skips frames
at or below it, which makes a crash *between* snapshot rename and WAL
truncation harmless).
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ..obs import metrics as _metrics
from ..obs import trace as _trace

_APPENDS = _metrics.counter("service.wal.appends")
_SYNCS = _metrics.counter("service.wal.syncs")
_TORN = _metrics.counter("service.wal.torn_tails")
_SYNC_HIST = _metrics.histogram("service.wal.sync_ms")

#: File header identifying a WAL file (8 bytes).
WAL_MAGIC = b"RTXWAL1\n"

_FRAME = struct.Struct(">II")  # payload length, crc32(payload)
_FIXED = struct.Struct(">QBq")  # lsn, op code, time

_OPS = {"insert": 0, "delete": 1}
_OP_NAMES = {code: name for name, code in _OPS.items()}

#: Upper bound on a sane payload length; anything above is a torn frame.
_MAX_PAYLOAD = 1 << 26


class WalError(Exception):
    """A malformed WAL file (bad magic / unusable header)."""


@dataclass(frozen=True)
class WalRecord:
    """One logged update operation."""

    lsn: int
    op: str  # "insert" | "delete"
    subject: str
    predicate: str
    object: str
    time: int

    def encode(self) -> bytes:
        payload = bytearray(_FIXED.pack(self.lsn, _OPS[self.op], self.time))
        for term in (self.subject, self.predicate, self.object):
            raw = term.encode("utf-8")
            payload.extend(struct.pack(">I", len(raw)))
            payload.extend(raw)
        return bytes(payload)

    @classmethod
    def decode(cls, payload: bytes) -> "WalRecord":
        lsn, op_code, time = _FIXED.unpack_from(payload, 0)
        pos = _FIXED.size
        terms = []
        for _ in range(3):
            (length,) = struct.unpack_from(">I", payload, pos)
            pos += 4
            terms.append(payload[pos : pos + length].decode("utf-8"))
            pos += length
        return cls(lsn, _OP_NAMES[op_code], terms[0], terms[1], terms[2],
                   time)


class WriteAheadLog:
    """Append-only operation log with group commit and torn-tail repair.

    Opening scans the existing file: valid frames become
    :attr:`recovered`, a torn tail is truncated, and the append position /
    next LSN are set past the last valid frame (but never below
    ``start_lsn``, which the store passes from its snapshot so LSNs stay
    monotonic across checkpoint truncation).
    """

    def __init__(self, path: str | Path, *, group_size: int = 32,
                 fsync: bool = True, start_lsn: int = 1) -> None:
        self.path = Path(path)
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        self.group_size = group_size
        self.fsync = fsync
        self._pending = 0
        self.recovered: list[WalRecord] = []
        self._next_lsn = start_lsn
        self._scan_and_repair()
        self._handle = open(self.path, "ab")

    # ------------------------------------------------------------- recovery

    def _scan_and_repair(self) -> None:
        if not self.path.exists() or self.path.stat().st_size == 0:
            with open(self.path, "wb") as handle:
                handle.write(WAL_MAGIC)
                handle.flush()
                os.fsync(handle.fileno())
            return
        with open(self.path, "rb") as handle:
            data = handle.read()
        if data[: len(WAL_MAGIC)] != WAL_MAGIC:
            raise WalError(f"{self.path}: not a WAL file (bad magic)")
        records, good_end = _parse_frames(data, len(WAL_MAGIC))
        if good_end < len(data):
            # Torn tail from a crash mid-write: drop it.
            if _metrics.ENABLED:
                _TORN.inc()
            with open(self.path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
        self.recovered = records
        if records:
            self._next_lsn = max(self._next_lsn, records[-1].lsn + 1)

    # -------------------------------------------------------------- logging

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    def append(self, op: str, subject: str, predicate: str, object: str,
               time: int) -> int:
        """Log one operation; returns its LSN.

        The frame reaches the OS before this returns (surviving a process
        kill); it reaches the disk at the next group boundary or explicit
        :meth:`sync` (surviving a machine crash).
        """
        record = WalRecord(self._next_lsn, op, subject, predicate, object,
                           time)
        payload = record.encode()
        with _trace.span("wal.append", lsn=record.lsn):
            self._handle.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
            self._handle.write(payload)
            self._handle.flush()
        self._next_lsn += 1
        self._pending += 1
        if _metrics.ENABLED:
            _APPENDS.inc()
        if self._pending >= self.group_size:
            self.sync()
        return record.lsn

    def sync(self) -> None:
        """Group-commit barrier: push every pending record to stable
        storage."""
        if self._pending == 0:
            return
        started = time.perf_counter()
        with _trace.span("wal.sync", pending=self._pending):
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
        self._pending = 0
        if _metrics.ENABLED:
            _SYNCS.inc()
            _SYNC_HIST.observe((time.perf_counter() - started) * 1000.0)

    # ------------------------------------------------------------- tailing

    def read_from(self, lsn: int) -> list[WalRecord]:
        """All durable records with LSN strictly greater than ``lsn``.

        This is the replication / change-feed read path: a follower that
        has applied everything up to ``lsn`` calls ``read_from(lsn)`` to
        fetch the tail it is missing.  The append handle is flushed first,
        so every *acknowledged* append is visible to the read; a torn tail
        (a crash mid-write by another process reading a live file) simply
        ends the scan — it is never repaired here, because repair belongs
        to the owning writer's recovery.

        Records at or below ``lsn`` are skipped, which makes mid-stream
        offsets cheap: the file is parsed once and filtered (WAL files are
        bounded by checkpoint truncation).  An ``lsn`` past the end of the
        log returns an empty list.
        """
        if not self._handle.closed:
            self._handle.flush()
        data = self.path.read_bytes()
        if data[: len(WAL_MAGIC)] != WAL_MAGIC:
            raise WalError(f"{self.path}: not a WAL file (bad magic)")
        records, _ = _parse_frames(data, len(WAL_MAGIC))
        return [record for record in records if record.lsn > lsn]

    def tail(self, lsn: int) -> "Iterator[WalRecord]":
        """Iterate the records past ``lsn`` currently in the log.

        A convenience iterator over :meth:`read_from` for pull-based
        consumers (replication channels, ``/changes?since=`` feeds): each
        call yields the records available *now* and then stops — callers
        poll again with the last LSN they saw.
        """
        yield from self.read_from(lsn)

    def truncate(self) -> None:
        """Reset the log to empty (after a checkpoint made it redundant).

        The in-memory LSN counter keeps counting, so records written after
        a truncation still sort after the snapshot's ``last_lsn``.
        """
        self.sync()
        self._handle.close()
        with open(self.path, "wb") as handle:
            handle.write(WAL_MAGIC)
            handle.flush()
            os.fsync(handle.fileno())
        self._handle = open(self.path, "ab")

    def close(self) -> None:
        if self._handle.closed:
            return
        self.sync()
        self._handle.close()

    @property
    def size_bytes(self) -> int:
        self._handle.flush()
        return self.path.stat().st_size

    def stats(self) -> dict:
        """Diagnostic snapshot for ``/debug/storage`` and doctor.

        Deliberately lock- and flush-free so any thread can call it while
        a writer appends: the on-disk size may trail the handle's buffer
        by at most one unflushed frame, and the int reads race benignly.
        """
        return {
            "size_bytes": self.path.stat().st_size,
            "next_lsn": self._next_lsn,
            "pending_records": self._pending,
            "group_size": self.group_size,
            "fsync": self.fsync,
        }

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _parse_frames(data: bytes, pos: int) -> tuple[list[WalRecord], int]:
    """Decode frames from ``data`` starting at ``pos``.

    Returns the valid records and the offset one past the last valid
    frame; a short, corrupt, or undecodable frame ends the scan there.
    """
    records: list[WalRecord] = []
    size = len(data)
    while pos + _FRAME.size <= size:
        length, crc = _FRAME.unpack_from(data, pos)
        body_start = pos + _FRAME.size
        if length > _MAX_PAYLOAD or body_start + length > size:
            break
        payload = data[body_start : body_start + length]
        if zlib.crc32(payload) != crc:
            break
        try:
            records.append(WalRecord.decode(payload))
        except (struct.error, UnicodeDecodeError, KeyError):
            break
        pos = body_start + length
    return records, pos


def read_records(path: str | Path) -> list[WalRecord]:
    """Read the valid records of a WAL file without modifying it."""
    data = Path(path).read_bytes()
    if data[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise WalError(f"{path}: not a WAL file (bad magic)")
    records, _ = _parse_frames(data, len(WAL_MAGIC))
    return records
