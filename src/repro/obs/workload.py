"""Workload intelligence: query fingerprints, per-shape aggregates, and
the estimate-drift monitor.

Fingerprinting turns a parsed SPARQLT query into a *shape*: constants
collapse to placeholders and variables are renamed in first-occurrence
order, so ``SELECT ?o {UC president ?o ?t}`` and
``SELECT ?x {UM chancellor ?x ?u}`` aggregate together while queries
with genuinely different variable structure (e.g. a repeated variable)
stay apart.  :class:`WorkloadRegistry` keeps bounded per-shape
aggregates — count, latency histogram, rows, result-cache hit ratio,
and the exemplar ``trace_id`` of the slowest traced instance — behind
``GET /debug/workload`` and ``repro-tx stats --workload``.

:class:`DriftMonitor` closes the optimizer feedback loop: a small
deterministic fraction of *normal* queries is executed with profiling
on (the same machinery as EXPLAIN ANALYZE), their per-pattern q-errors
feed a bounded window exported as ``optimizer.drift.*``, and a sustained
median above the configured threshold triggers
:meth:`~repro.engine.engine.RDFTX.refresh_statistics`.

Everything gates on the ``REPRO_OBS`` kill switch: with observability
off, recording and drift sampling are no-ops.
"""

from __future__ import annotations

import hashlib
import statistics
import threading
from collections import deque

from ..cache import LRUCache
from . import metrics as _metrics
from . import trace as _trace
from .metrics import Histogram
from .profile import QueryProfile

_RECORDS = _metrics.counter("obs.workload.records")
_OVERFLOW = _metrics.counter("obs.workload.overflow")
_SHAPES_GAUGE = _metrics.gauge("obs.workload.shapes")
_DRIFT_SAMPLES = _metrics.counter("optimizer.drift.samples")
_DRIFT_REFRESHES = _metrics.counter("optimizer.drift.refreshes")
_DRIFT_MAX = _metrics.gauge("optimizer.drift.max_qerror")
_DRIFT_MEDIAN = _metrics.gauge("optimizer.drift.median_qerror")

#: Distinct shapes tracked before new ones fold into the overflow bucket.
MAX_SHAPES = 512

#: Normalized-text -> fingerprint cache entries (skips re-fingerprinting
#: hot query texts, including the store's cache-hit path).
TEXT_CACHE_CAPACITY = 2048

#: Fraction of normal queries the drift monitor profiles (deterministic).
DRIFT_SAMPLE_RATE = 1.0 / 16.0

#: Q-error observations the drift window holds; a refresh decision needs
#: the window full, so smaller windows react faster but noisier.
DRIFT_WINDOW = 32

#: Longest raw query text kept as a shape's example.
EXAMPLE_LIMIT = 200


# ------------------------------------------------------------- fingerprints


def fingerprint(query) -> tuple[str, str]:
    """Canonical (shape_id, shape_text) of a parsed SPARQLT query.

    Variables are renamed ``?v0, ?v1, ...`` in first-occurrence order
    (patterns, then filters, then unions/optionals, then the select
    list); term/time constants become ``<c>``/``<t>`` and filter
    literals ``<kind>`` placeholders.  Structure — pattern positions,
    filter operators and function names, group algebra, projection —
    is preserved, so two queries share a shape exactly when they differ
    only in constants, variable names, or whitespace.
    """
    from ..sparqlt.ast import (
        And, Compare, FuncCall, Literal, Not, Or, TermConst, TimeConst, Var,
    )

    names: dict[str, str] = {}

    def var(name: str) -> str:
        if name not in names:
            names[name] = f"?v{len(names)}"
        return names[name]

    def term(node) -> str:
        if isinstance(node, Var):
            return var(node.name)
        if isinstance(node, TermConst):
            return "<c>"
        if isinstance(node, TimeConst):
            return "<t>"
        return "<?>"

    def expr(node) -> str:
        if isinstance(node, Var):
            return var(node.name)
        if isinstance(node, Literal):
            return f"<{node.kind}>"
        if isinstance(node, FuncCall):
            return f"{node.name}({expr(node.arg)})"
        if isinstance(node, Compare):
            return f"({expr(node.left)} {node.op} {expr(node.right)})"
        if isinstance(node, And):
            return f"({expr(node.left)} && {expr(node.right)})"
        if isinstance(node, Or):
            return f"({expr(node.left)} || {expr(node.right)})"
        if isinstance(node, Not):
            return f"!({expr(node.operand)})"
        return "<?>"

    def group(node) -> str:
        parts = [
            " ".join(
                term(t)
                for t in (p.subject, p.predicate, p.object, p.time)
            )
            for p in node.patterns
        ]
        parts.extend(f"FILTER {expr(f)}" for f in node.filters)
        parts.extend(
            "UNION(" + " | ".join(group(b) for b in union) + ")"
            for union in node.unions
        )
        parts.extend(
            "OPTIONAL(" + group(opt) + ")" for opt in node.optionals
        )
        return " . ".join(parts)

    body = group(query.group)
    select = " ".join(var(name) for name in query.select)
    shape = f"SELECT {select} {{ {body} }}"
    shape_id = hashlib.sha1(shape.encode("utf-8")).hexdigest()[:12]
    return shape_id, shape


def fingerprint_text(text: str) -> tuple[str, str]:
    """Parse ``text`` and fingerprint it (see :func:`fingerprint`)."""
    from ..sparqlt.parser import parse

    return fingerprint(parse(text))


# ---------------------------------------------------------- shape registry


class ShapeStats:
    """Aggregates for one query shape (thread-safe)."""

    __slots__ = ("shape_id", "shape", "example", "count", "rows", "hits",
                 "latency", "slowest_ms", "exemplar_trace_id", "exemplar_ms",
                 "_lock")

    def __init__(self, shape_id: str, shape: str,
                 example: str | None = None) -> None:
        self.shape_id = shape_id
        self.shape = shape
        self.example = example
        self.count = 0
        self.rows = 0
        self.hits = 0
        self.latency = Histogram(shape_id)
        self.slowest_ms = 0.0
        #: trace id of the slowest *traced* instance (untraced requests
        #: may be slower; the exemplar must be resolvable).
        self.exemplar_trace_id: str | None = None
        self.exemplar_ms = 0.0
        self._lock = threading.Lock()

    def record(self, duration_ms: float, rows: int, cache_hit: bool,
               trace_id: str | None) -> None:
        with self._lock:
            self.count += 1
            self.rows += rows
            if cache_hit:
                self.hits += 1
            if duration_ms > self.slowest_ms:
                self.slowest_ms = duration_ms
            if trace_id is not None and duration_ms >= self.exemplar_ms:
                self.exemplar_ms = duration_ms
                self.exemplar_trace_id = trace_id
        self.latency.observe(duration_ms)

    def as_dict(self) -> dict:
        with self._lock:
            count = self.count
            rows = self.rows
            hits = self.hits
            slowest_ms = self.slowest_ms
            exemplar = self.exemplar_trace_id
            exemplar_ms = self.exemplar_ms
        return {
            "shape_id": self.shape_id,
            "shape": self.shape,
            "example": self.example,
            "count": count,
            "rows_mean": rows / count if count else 0.0,
            "cache_hit_ratio": hits / count if count else 0.0,
            "p50_ms": round(self.latency.quantile(0.50), 4),
            "p95_ms": round(self.latency.quantile(0.95), 4),
            "p99_ms": round(self.latency.quantile(0.99), 4),
            "slowest_ms": round(slowest_ms, 4),
            "exemplar_trace_id": exemplar,
            "exemplar_ms": round(exemplar_ms, 4),
        }


class WorkloadRegistry:
    """Bounded shape_id -> :class:`ShapeStats` registry.

    Once ``max_shapes`` distinct shapes exist, further novel shapes fold
    into a single overflow bucket — memory stays bounded under
    adversarial workloads (e.g. 10k distinct generated shapes) while the
    dominant shapes keep aggregating accurately.
    """

    def __init__(self, max_shapes: int = MAX_SHAPES,
                 text_cache: int = TEXT_CACHE_CAPACITY) -> None:
        self.max_shapes = max_shapes
        self._lock = threading.Lock()
        self._shapes: dict[str, ShapeStats] = {}
        self._texts: LRUCache = LRUCache(text_cache)
        self._overflow = ShapeStats(
            "(overflow)", "(folded: shape registry full)"
        )

    def __len__(self) -> int:
        return len(self._shapes)

    def _resolve(self, query, text: str | None) -> tuple[str, str]:
        """Fingerprint via the text cache when possible."""
        key = None
        if text is not None:
            key = " ".join(text.split())
            found = self._texts.get(key)
            if found is not None:
                return found
        pair = fingerprint(query) if query is not None \
            else fingerprint_text(text)
        if key is not None:
            self._texts.put(key, pair)
        return pair

    def record_query(self, query, text: str | None, duration_ms: float,
                     rows: int, cache_hit: bool,
                     trace_id: str | None = None) -> None:
        """Fold one executed query into its shape's aggregates.

        ``query`` is the parsed AST (may be None when only ``text`` is
        known — the store's cache-hit path); ``text`` the raw source
        (may be None for pre-parsed convenience-API queries).
        """
        if not _metrics.ENABLED:
            return
        shape_id, shape = self._resolve(query, text)
        stats = self._record(shape_id, shape, text)
        stats.record(duration_ms, rows, cache_hit, trace_id)
        _RECORDS.inc()

    def _record(self, shape_id: str, shape: str,
                text: str | None = None) -> ShapeStats:
        """Get-or-create the shape's stats, bounded by ``max_shapes``."""
        stats = self._shapes.get(shape_id)
        if stats is not None:
            return stats
        with self._lock:
            stats = self._shapes.get(shape_id)
            if stats is None:
                if len(self._shapes) >= self.max_shapes:
                    _OVERFLOW.inc()
                    return self._overflow
                example = text[:EXAMPLE_LIMIT] if text else None
                stats = ShapeStats(shape_id, shape, example=example)
                self._shapes[shape_id] = stats
                _SHAPES_GAUGE.set(len(self._shapes))
        return stats

    def snapshot(self, limit: int | None = None) -> dict:
        """The registry as one JSON-able dict, busiest shapes first."""
        with self._lock:
            shapes = list(self._shapes.values())
        shapes.sort(key=lambda s: s.count, reverse=True)
        if limit is not None:
            shapes = shapes[:limit]
        return {
            "distinct_shapes": len(self._shapes),
            "records": sum(s.count for s in shapes),
            "overflow": self._overflow.count,
            "shapes": [s.as_dict() for s in shapes],
        }

    def render_text(self, limit: int = 20) -> str:
        """Aligned per-shape table for ``repro-tx stats --workload``."""
        snap = self.snapshot(limit=limit)
        if not snap["shapes"]:
            return "(no queries recorded)"
        header = ["count", "p50_ms", "p95_ms", "hit%", "rows", "trace",
                  "shape"]
        rows = []
        for s in snap["shapes"]:
            rows.append([
                str(s["count"]),
                f"{s['p50_ms']:.2f}",
                f"{s['p95_ms']:.2f}",
                f"{100.0 * s['cache_hit_ratio']:.0f}",
                f"{s['rows_mean']:.1f}",
                s["exemplar_trace_id"] or "-",
                s["shape"][:60],
            ])
        widths = [
            max(len(header[i]), max(len(r[i]) for r in rows))
            for i in range(len(header) - 1)
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(header, widths))
            + "  " + header[-1],
            "  ".join("-" * w for w in widths) + "  " + "-" * 5,
        ]
        for r in rows:
            lines.append(
                "  ".join(c.ljust(w) for c, w in zip(r, widths))
                + "  " + r[-1]
            )
        lines.append(
            f"({snap['distinct_shapes']} shape(s), "
            f"{snap['overflow']} overflow record(s))"
        )
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._shapes.clear()
            self._texts.clear()
            self._overflow = ShapeStats(
                "(overflow)", "(folded: shape registry full)"
            )
        _SHAPES_GAUGE.set(0)


#: The process-global workload registry the engine and store report into.
WORKLOAD = WorkloadRegistry()


# ------------------------------------------------------------ drift monitor


class DriftMonitor:
    """Sampled est-vs-actual q-error tracking with optimizer feedback.

    A deterministic :class:`~repro.obs.trace.Sampler` picks which normal
    queries run with internal profiling; their worst per-pattern q-error
    lands in a bounded window.  When the window is full and its median
    reaches ``qerror_threshold``, :meth:`refresh_due` tells the engine
    to rebuild its statistics (``None`` disables the feedback loop but
    keeps the ``optimizer.drift.*`` metrics flowing).
    """

    def __init__(self, qerror_threshold: float | None = None,
                 window: int = DRIFT_WINDOW,
                 sample_rate: float = DRIFT_SAMPLE_RATE) -> None:
        self.qerror_threshold = qerror_threshold
        self.sampler = _trace.Sampler(sample_rate)
        self._recent: deque = deque(maxlen=window)
        self._lock = threading.Lock()
        self.refreshes = 0

    def sample(self) -> bool:
        """Whether the next query should be drift-profiled."""
        if not _metrics.ENABLED:
            return False
        return self.sampler.keep()

    def observe(self, profile: QueryProfile) -> None:
        """Fold one profiled execution's q-errors into the window."""
        if not _metrics.ENABLED:
            return
        qerrors = [q for _, _, _, q in profile.pattern_qerrors()]
        if not qerrors:
            return
        with self._lock:
            self._recent.append(max(qerrors))
            window = list(self._recent)
        _DRIFT_SAMPLES.inc()
        _DRIFT_MAX.set(max(window))
        _DRIFT_MEDIAN.set(statistics.median(window))

    def refresh_due(self) -> bool:
        """Whether sustained drift warrants a statistics rebuild."""
        if self.qerror_threshold is None:
            return False
        with self._lock:
            if len(self._recent) < (self._recent.maxlen or 1):
                return False
            window = list(self._recent)
        return statistics.median(window) >= self.qerror_threshold

    def note_refresh(self) -> None:
        """Record a drift-triggered rebuild and restart the window."""
        _DRIFT_REFRESHES.inc()
        with self._lock:
            self.refreshes += 1
            self._recent.clear()

    def reset_window(self) -> None:
        """Drop pending observations (the statistics just changed)."""
        with self._lock:
            self._recent.clear()
        _DRIFT_MAX.set(0.0)
        _DRIFT_MEDIAN.set(0.0)

    def snapshot(self) -> dict:
        with self._lock:
            window = list(self._recent)
            refreshes = self.refreshes
        return {
            "threshold": self.qerror_threshold,
            "window_size": self._recent.maxlen,
            "window_fill": len(window),
            "median_qerror": statistics.median(window) if window else None,
            "max_qerror": max(window) if window else None,
            "refreshes": refreshes,
        }
