"""Zero-dependency span tracer with ``contextvars`` propagation.

A request entering the serving layer opens a *root span* via
:func:`start_trace`; every layer it flows through — admission control,
lock acquisition, cache lookup, compilation, index scans, joins, WAL
group commit — opens *child spans* via :func:`span`.  The active span
travels in a :class:`contextvars.ContextVar`, so nesting is implicit and
work handed to a thread pool keeps its parentage when submitted through
:func:`submit` (which copies the caller's context onto the worker).

Design points:

* **Context-manager only.** Spans are opened with ``with span(...):``;
  the begin/end pair is a single lexical scope, so a span can never leak
  open on an exception path.  Lint rule RL011 enforces this at review
  time.
* **Near-zero cost when off.** When observability is disabled
  (``REPRO_OBS=0`` / :func:`repro.obs.metrics.set_enabled`), when the
  sampler skips a request, or when code runs outside any trace,
  :func:`span` returns a shared no-op context manager: no allocation, no
  clock reads.
* **Deterministic ids and sampling.** Trace ids come from a process
  counter (``<pid hex>-<seq hex>``), and :class:`Sampler` uses a
  fraction accumulator rather than a PRNG, so tests can assert exact
  keep/skip sequences.
* **Bounded retention.** Finished traces land in a fixed-size
  :class:`TraceBuffer` ring; the server exposes it at
  ``GET /debug/traces``.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar, copy_context
from typing import TYPE_CHECKING, Any, Iterator

from . import metrics as _metrics

if TYPE_CHECKING:  # pragma: no cover
    from concurrent.futures import Executor, Future

__all__ = [
    "Span",
    "Trace",
    "TraceBuffer",
    "Sampler",
    "start_trace",
    "span",
    "active",
    "current_trace_id",
    "annotate",
    "annotate_trace",
    "submit",
    "export_spans",
    "graft_remote_trace",
]

#: Upper bound on spans a worker exports per RPC response.  Keeps the
#: attachment a bounded fraction of the reply frame even for scans that
#: open a span per leaf.
MAX_REMOTE_SPANS = 256

#: Monotonic per-process sequence feeding trace ids.
_TRACE_SEQ = itertools.count(1)

#: The span the current logical context is inside (None outside traces).
_CURRENT_SPAN: ContextVar["Span | None"] = ContextVar(
    "repro_current_span", default=None
)


def _new_trace_id() -> str:
    return f"{os.getpid():x}-{next(_TRACE_SEQ):08x}"


class Span:
    """One timed operation in a trace tree.

    Spans are created internally by :func:`start_trace` / :func:`span`;
    user code never instantiates or starts/finishes one directly (RL011).
    """

    __slots__ = ("name", "trace", "parent", "children", "attrs",
                 "start_ms", "end_ms", "_t0")

    def __init__(self, name: str, trace: "Trace",
                 parent: "Span | None") -> None:
        self.name = name
        self.trace = trace
        self.parent = parent
        self.children: list[Span] = []
        self.attrs: dict[str, Any] = {}
        self.start_ms = (time.time() - trace.epoch) * 1000.0
        self.end_ms: float | None = None
        self._t0 = time.perf_counter()
        if parent is not None:
            with trace.lock:
                parent.children.append(self)

    @property
    def duration_ms(self) -> float:
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    def annotate(self, **attrs: Any) -> None:
        """Attach key/value attributes to this span."""
        self.attrs.update(attrs)

    def _close(self) -> None:
        self.end_ms = self.start_ms + (
            time.perf_counter() - self._t0
        ) * 1000.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "start_ms": round(self.start_ms, 3),
            "duration_ms": round(self.duration_ms, 3),
            "attrs": dict(self.attrs),
            "children": [c.as_dict() for c in self.children],
        }


class Trace:
    """A tree of spans plus trace-level attributes for one request."""

    __slots__ = ("trace_id", "name", "root", "attrs", "epoch", "lock",
                 "started_at")

    def __init__(self, name: str) -> None:
        self.trace_id = _new_trace_id()
        self.name = name
        self.attrs: dict[str, Any] = {}
        self.epoch = time.time()
        self.started_at = self.epoch
        self.lock = threading.Lock()
        self.root = Span(name, self, None)

    @property
    def duration_ms(self) -> float:
        return self.root.duration_ms

    def as_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "started_at": self.started_at,
            "duration_ms": round(self.duration_ms, 3),
            "attrs": dict(self.attrs),
            "root": self.root.as_dict(),
        }

    def span_names(self) -> list[str]:
        """Flat list of every span name in the tree (test helper)."""
        names: list[str] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            names.append(node.name)
            stack.extend(node.children)
        return names


class TraceBuffer:
    """Fixed-size ring of recently finished traces."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._items: list[Trace] = []

    def add(self, trace: Trace) -> None:
        with self._lock:
            self._items.append(trace)
            if len(self._items) > self.capacity:
                del self._items[: len(self._items) - self.capacity]

    def recent(self, limit: int = 20) -> list[Trace]:
        """Most recent traces, newest first."""
        with self._lock:
            return list(reversed(self._items[-limit:]))

    def get(self, trace_id: str) -> Trace | None:
        with self._lock:
            for item in reversed(self._items):
                if item.trace_id == trace_id:
                    return item
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class Sampler:
    """Deterministic fraction sampler (no PRNG).

    Keeps requests whenever the running accumulator crosses 1.0, so a
    rate of ``0.25`` keeps exactly every 4th request and a rate of
    ``1.0`` keeps everything.  Deterministic sampling is reproducible in
    tests and spreads kept traces evenly instead of in random clumps.
    """

    def __init__(self, rate: float = 1.0) -> None:
        if not (0.0 <= rate <= 1.0):
            raise ValueError("sample rate must be within [0, 1]")
        self.rate = rate
        self._acc = 0.0
        self._lock = threading.Lock()

    def keep(self) -> bool:
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        with self._lock:
            self._acc += self.rate
            if self._acc >= 1.0:
                self._acc -= 1.0
                return True
            return False


class _NoopSpan:
    """Shared do-nothing context manager for untraced code paths."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        return None


_NOOP = _NoopSpan()


@contextmanager
def _trace_cm(trace: Trace, buffer: TraceBuffer | None) -> Iterator[Trace]:
    token = _CURRENT_SPAN.set(trace.root)
    try:
        yield trace
    finally:
        _CURRENT_SPAN.reset(token)
        trace.root._close()
        if buffer is not None:
            buffer.add(trace)


@contextmanager
def _span_cm(parent: Span, name: str,
             attrs: dict[str, Any]) -> Iterator[Span]:
    child = Span(name, parent.trace, parent)
    if attrs:
        child.attrs.update(attrs)
    token = _CURRENT_SPAN.set(child)
    try:
        yield child
    finally:
        _CURRENT_SPAN.reset(token)
        child._close()


def start_trace(name: str, buffer: TraceBuffer | None = None,
                **attrs: Any):
    """Open a root span and install it as the current context.

    Returns a context manager yielding the :class:`Trace`; on exit the
    root span closes and the trace is appended to ``buffer`` (if given).
    When observability is disabled this is a no-op context manager and
    nothing is recorded.
    """
    if not _metrics.ENABLED:
        return _NOOP
    trace = Trace(name)
    if attrs:
        trace.attrs.update(attrs)
    return _trace_cm(trace, buffer)


def span(name: str, **attrs: Any):
    """Open a child span under the current context, if any.

    Outside a trace (or with observability disabled) this returns a
    shared no-op context manager, so instrumentation sites can call it
    unconditionally on hot paths.
    """
    if not _metrics.ENABLED:
        return _NOOP
    parent = _CURRENT_SPAN.get()
    if parent is None:
        return _NOOP
    return _span_cm(parent, name, attrs)


def active() -> bool:
    """Whether the calling context is inside a live trace."""
    return _metrics.ENABLED and _CURRENT_SPAN.get() is not None


def current_trace_id() -> str | None:
    """Trace id of the enclosing trace, or None outside any trace."""
    current = _CURRENT_SPAN.get()
    return None if current is None else current.trace.trace_id


def annotate(**attrs: Any) -> None:
    """Attach attributes to the *current span* (no-op outside traces)."""
    current = _CURRENT_SPAN.get()
    if current is not None and _metrics.ENABLED:
        current.attrs.update(attrs)


def annotate_trace(**attrs: Any) -> None:
    """Attach trace-level attributes (e.g. ``cache_hit=True``)."""
    current = _CURRENT_SPAN.get()
    if current is not None and _metrics.ENABLED:
        current.trace.attrs.update(attrs)


def submit(pool: "Executor", fn: Any, /, *args: Any,
           **kwargs: Any) -> "Future[Any]":
    """``pool.submit`` that carries the caller's trace context along.

    Workers see the submitting context's current span as their parent,
    so spans they open nest correctly under the request that scheduled
    the work.  Outside a trace this degrades to a plain ``submit`` with
    no context copy.
    """
    if not active():
        return pool.submit(fn, *args, **kwargs)
    ctx = copy_context()
    return pool.submit(ctx.run, fn, *args, **kwargs)


# --------------------------------------------------------------------------
# Cross-process stitching.
#
# A cluster worker traces its side of an RPC into a private Trace (opened
# by the dispatcher when the coordinator's payload carries a trace id).
# `export_spans` turns that finished subtree into a bounded plain-dict
# attachment for the response envelope; `graft_remote_trace` rebuilds it
# on the coordinator under the live `cluster.rpc` span, mapping worker
# wall-clock onto the coordinator's trace timeline via an NTP-style skew
# estimate from the four send/recv timestamps.


def export_spans(root: Span, limit: int = MAX_REMOTE_SPANS) -> dict[str, Any]:
    """Serialize a span subtree to a bounded wire-friendly dict.

    Depth-first, keeping at most ``limit`` spans; a node whose children
    overflow the budget gets a ``truncated`` count instead of the
    dropped subtrees.
    """
    budget = [limit]

    def encode(node: Span) -> dict[str, Any]:
        budget[0] -= 1
        out: dict[str, Any] = {
            "name": node.name,
            "start_ms": round(node.start_ms, 3),
            "duration_ms": round(node.duration_ms, 3),
        }
        if node.attrs:
            out["attrs"] = dict(node.attrs)
        children = []
        dropped = 0
        for child in node.children:
            if budget[0] <= 0:
                dropped += 1
                continue
            children.append(encode(child))
        if children:
            out["children"] = children
        if dropped:
            out["truncated"] = dropped
        return out

    return encode(root)


def _graft_node(parent: Span, node: dict[str, Any],
                shift_ms: float) -> Span:
    """Rebuild one exported span under ``parent``, shifted in time."""
    child = Span(str(node.get("name", "remote")), parent.trace, parent)
    attrs = node.get("attrs")
    if isinstance(attrs, dict):
        child.attrs.update(attrs)
    truncated = node.get("truncated")
    if truncated:
        child.attrs["truncated"] = truncated
    start = node.get("start_ms")
    duration = node.get("duration_ms")
    child.start_ms = shift_ms + (
        float(start) if isinstance(start, (int, float)) else 0.0
    )
    child.end_ms = child.start_ms + (
        float(duration) if isinstance(duration, (int, float)) else 0.0
    )
    for sub in node.get("children") or ():
        if isinstance(sub, dict):
            _graft_node(child, sub, shift_ms)
    return child


def graft_remote_trace(envelope: Any, *, sent_ts: float,
                       recv_ts: float) -> bool:
    """Attach a worker's exported span subtree under the current span.

    ``envelope`` is the attachment a worker put on its RPC response
    (see :func:`repro.cluster.protocol.encode_trace_envelope`);
    ``sent_ts``/``recv_ts`` are the coordinator's wall-clock times
    around the RPC.  The per-hop clock skew is estimated NTP-style as
    ``((t1 - t0) + (t2 - t3)) / 2`` from the coordinator send (t0),
    worker receive (t1), worker send (t2) and coordinator receive (t3)
    stamps, and is used to place the remote spans on the coordinator's
    timeline; the estimate and the network round-trip share are also
    annotated on the enclosing span.  Returns False (and grafts
    nothing) outside a live trace or for malformed envelopes.
    """
    if not _metrics.ENABLED:
        return False
    parent = _CURRENT_SPAN.get()
    if parent is None or not isinstance(envelope, dict):
        return False
    root = envelope.get("root")
    if not isinstance(root, dict):
        return False
    trace = parent.trace
    worker_recv = envelope.get("recv_ts")
    worker_send = envelope.get("send_ts")
    worker_epoch = envelope.get("epoch")
    skew_s = 0.0
    if (isinstance(worker_recv, (int, float))
            and isinstance(worker_send, (int, float))):
        skew_s = ((worker_recv - sent_ts) + (worker_send - recv_ts)) / 2.0
        net_ms = ((recv_ts - sent_ts) - (worker_send - worker_recv)) * 1000.0
        parent.annotate(clock_skew_ms=round(skew_s * 1000.0, 3),
                        net_ms=round(max(0.0, net_ms), 3))
    if isinstance(worker_epoch, (int, float)):
        shift_ms = (worker_epoch - skew_s - trace.epoch) * 1000.0
    else:
        # No worker epoch: anchor the subtree at our send time.
        shift_ms = (sent_ts - trace.epoch) * 1000.0
    grafted = _graft_node(parent, root, shift_ms)
    for key in ("shard_id", "role", "pid"):
        value = envelope.get(key)
        if value is not None:
            grafted.attrs[key] = value
    remote_id = envelope.get("trace_id")
    if remote_id is not None:
        grafted.attrs["remote_trace_id"] = remote_id
    return True
