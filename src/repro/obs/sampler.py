"""On-demand wall-clock sampling profiler (zero dependencies).

Polls :func:`sys._current_frames` on the calling thread at a fixed
interval for a bounded duration and folds every other thread's stack
into collapsed-stack counts — the ``frame;frame;frame count`` text
format flamegraph.pl and speedscope consume directly.  Served at
``GET /debug/profile?seconds=N``.

Design constraints:

* **Single concurrent profile** — sampling costs one stack walk per
  thread per tick; a module lock rejects overlapping runs
  (:class:`ProfilerBusy` -> HTTP 409).
* **Kill switch** — with ``REPRO_OBS=0`` profiling refuses to run
  (:class:`ProfilerDisabled` -> HTTP 503).
* **Self-exclusion** — the sampling thread's own stack is skipped;
  every other thread (request workers, pool workers, the accept loop)
  is included, so idle time is visible too.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter as _TallyCounter

from . import metrics as _metrics

_PROFILES = _metrics.counter("obs.profiler.profiles")
_SAMPLES = _metrics.counter("obs.profiler.samples")

#: Seconds between stack polls (~100 Hz; cheap for tens of threads).
DEFAULT_INTERVAL = 0.01

#: Upper bound on one profile's duration.
MAX_SECONDS = 60.0

#: Serializes profiles process-wide.
_ACTIVE = threading.Lock()


class ProfilerBusy(Exception):
    """Another profile is already running."""


class ProfilerDisabled(Exception):
    """Profiling refused because observability is off (``REPRO_OBS=0``)."""


def _frame_label(frame) -> str:
    """One collapsed-stack frame: ``module:function``."""
    code = frame.f_code
    filename = code.co_filename.replace("\\", "/").rsplit("/", 1)[-1]
    if filename.endswith(".py"):
        filename = filename[:-3]
    # Semicolons and spaces are the collapsed format's separators.
    name = code.co_name.replace(";", "_").replace(" ", "_")
    return f"{filename}:{name}"


def _collapse(frame) -> str:
    """Root-first ``a;b;c`` stack for one thread's current frame."""
    labels: list[str] = []
    while frame is not None:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return ";".join(labels)


class SamplingProfiler:
    """Collects stack samples; render with :meth:`collapsed`."""

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._counts: _TallyCounter = _TallyCounter()
        self.samples = 0

    def collect(self, seconds: float) -> None:
        """Sample every thread except the caller for ``seconds``."""
        own = threading.get_ident()
        deadline = time.perf_counter() + seconds
        while time.perf_counter() < deadline:
            for thread_id, frame in sys._current_frames().items():
                if thread_id == own:
                    continue
                self._counts[_collapse(frame)] += 1
                self.samples += 1
            time.sleep(self.interval)
        if _metrics.ENABLED:
            _SAMPLES.inc(self.samples)

    def collapsed(self) -> str:
        """Collapsed-stack text, heaviest stacks first."""
        lines = [
            f"{stack} {count}"
            for stack, count in self._counts.most_common()
        ]
        return "\n".join(lines) + ("\n" if lines else "")


def profile(seconds: float, interval: float = DEFAULT_INTERVAL) -> str:
    """Run one bounded profile and return the collapsed-stack text.

    Raises :class:`ProfilerDisabled` under ``REPRO_OBS=0``,
    :class:`ProfilerBusy` when a profile is already in flight, and
    ``ValueError`` for an out-of-range duration.
    """
    if not _metrics.ENABLED:
        raise ProfilerDisabled("observability disabled (REPRO_OBS=0)")
    if not (0.0 < seconds <= MAX_SECONDS):
        raise ValueError(f"seconds must be in (0, {MAX_SECONDS:g}]")
    if not _ACTIVE.acquire(blocking=False):
        raise ProfilerBusy("another profile is already running")
    try:
        sampler = SamplingProfiler(interval=interval)
        sampler.collect(seconds)
        _PROFILES.inc()
        return sampler.collapsed()
    finally:
        _ACTIVE.release()
