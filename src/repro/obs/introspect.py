"""Storage health introspection: MVBT forest, dictionary, WAL, caches.

:func:`engine_report` walks each index's node registry (cheap: node
counts and cached live counts only — compressed leaves are *not*
decoded) and reports per-tree depth, node/leaf counts, live-vs-dead
entry ratios, leaf fill, and compression ratios, plus dictionary and
plan-cache occupancy.  :meth:`~repro.service.store.TemporalStore.storage_report`
wraps it under the store's read lock and adds WAL and result-cache
stats; both feed ``GET /debug/storage`` and ``repro-tx doctor``.

:func:`find_anomalies` turns a report into human-readable warnings
(mismatched live counts, uncompressed leaves, stale statistics, an
overdue checkpoint), and :func:`render_report` prints the health
report ``repro-tx doctor`` shows.

Process-level helpers (:func:`process_uptime_seconds`,
:func:`process_rss_bytes`) back the ``process.*`` gauges on
``/metrics`` and the extended ``/healthz`` payload.
"""

from __future__ import annotations

import time

#: Wall-clock at module import — a serving process imports the obs layer
#: during startup, so this approximates process start well enough for an
#: uptime gauge.
_STARTED_AT = time.time()

#: Average live-leaf fill below this fraction of ``block_capacity`` is
#: flagged (the forest is mostly dead weight or badly split).
LOW_FILL = 0.25

#: Dead-to-total entry ratio above this is flagged as history-heavy.
HIGH_DEAD_RATIO = 0.9

#: WAL records pending replay above this suggest an overdue checkpoint.
CHECKPOINT_BACKLOG = 10_000


# ------------------------------------------------------------ process state


def process_uptime_seconds() -> float:
    """Seconds since the observability layer was imported."""
    return time.time() - _STARTED_AT


def process_rss_bytes() -> int | None:
    """Resident set size from ``/proc/self/status`` (None off Linux)."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


# ------------------------------------------------------------- MVBT forest


def tree_report(tree) -> dict:
    """Structural health of one MVBT (no leaf decoding).

    Walks the registry-reachable nodes once, using the cached ``count``
    and ``live_count`` node properties — compressed leaves stay
    compressed, so the walk is safe on a serving store.
    """
    from ..mvbt.compression import NODE_HEADER_BYTES, STANDARD_ENTRY_BYTES

    nodes = leaves = index_nodes = live_nodes = 0
    entries = live_entries = 0
    compressed_leaves = live_leaves = 0
    live_leaf_entries = 0
    size_bytes = 0
    uncompressed_bytes = 0
    for node in tree.iter_nodes():
        nodes += 1
        count = node.count
        entries += count
        live_entries += node.live_count
        size_bytes += node.sizeof()
        uncompressed_bytes += NODE_HEADER_BYTES + STANDARD_ENTRY_BYTES * count
        if node.is_alive:
            live_nodes += 1
        if node.is_leaf:
            leaves += 1
            if node.is_compressed:
                compressed_leaves += 1
            if node.is_alive:
                live_leaves += 1
                live_leaf_entries += node.live_count
        else:
            index_nodes += 1
    capacity = tree.config.block_capacity
    depth = _live_depth(tree)
    return {
        "depth": depth,
        "nodes": nodes,
        "leaves": leaves,
        "index_nodes": index_nodes,
        "live_nodes": live_nodes,
        "entries": entries,
        "live_entries": live_entries,
        "live_ratio": live_entries / entries if entries else 0.0,
        "compressed_leaves": compressed_leaves,
        "uncompressed_leaves": leaves - compressed_leaves,
        "live_leaves": live_leaves,
        "live_leaf_fill": (
            live_leaf_entries / (live_leaves * capacity)
            if live_leaves else 0.0
        ),
        "size_bytes": size_bytes,
        "compression_ratio": (
            size_bytes / uncompressed_bytes if uncompressed_bytes else 1.0
        ),
        "live_records": tree.live_records,
        "total_versions": tree.total_versions,
        "current_time": tree.current_time,
    }


def _live_depth(tree) -> int:
    """Height of the live version: root-to-leaf along live routing."""
    node = tree.live_root
    depth = 1
    while not node.is_leaf:
        live = node.live_entries()
        if not live:
            break
        node = live[0].child
        depth += 1
    return depth


def engine_report(engine) -> dict:
    """Health of a whole engine: all four indexes + dictionary + caches.

    Callers serving live traffic must hold the store's read lock (see
    ``TemporalStore.storage_report``); a freshly loaded offline engine
    (``repro-tx doctor DATASET``) needs no locking.
    """
    indexes = {
        name: tree_report(tree) for name, tree in engine.indexes.items()
    }
    dictionary = None
    if engine.dictionary is not None:
        dictionary = {
            "terms": len(engine.dictionary),
            "size_bytes": engine.dictionary.sizeof(),
        }
    return {
        "indexes": indexes,
        "dictionary": dictionary,
        "plan_cache": {
            "entries": len(engine._plan_cache),
            "capacity": engine._plan_cache.capacity,
        },
        "statistics": {
            "dirty_updates": engine.statistics_dirty,
            "refresh_threshold": engine.stats_refresh_threshold,
            "drift": engine.drift.snapshot(),
            "optimizer": engine.optimizer is not None,
        },
        "total_size_bytes": engine.sizeof(),
    }


# ---------------------------------------------------------------- anomalies


def find_anomalies(report: dict) -> list[str]:
    """Human-readable warnings derived from a storage report."""
    warnings: list[str] = []
    indexes = report.get("indexes", {})
    live_counts = {
        name: tree["live_records"] for name, tree in indexes.items()
    }
    if len(set(live_counts.values())) > 1:
        warnings.append(
            f"live record counts disagree across indexes: {live_counts} "
            f"(possible index corruption)"
        )
    for name, tree in indexes.items():
        if tree["uncompressed_leaves"] and tree["compressed_leaves"]:
            warnings.append(
                f"index {name}: {tree['uncompressed_leaves']} leaf/leaves "
                f"not delta-compressed (partial compression)"
            )
        if tree["live_leaves"] and tree["live_leaf_fill"] < LOW_FILL:
            warnings.append(
                f"index {name}: average live-leaf fill "
                f"{tree['live_leaf_fill']:.0%} is below {LOW_FILL:.0%} "
                f"of block capacity"
            )
        if tree["entries"] and 1.0 - tree["live_ratio"] > HIGH_DEAD_RATIO:
            warnings.append(
                f"index {name}: {1.0 - tree['live_ratio']:.0%} of entries "
                f"are historical — reads of the live version pay for deep "
                f"history"
            )
    stats = report.get("statistics") or {}
    threshold = stats.get("refresh_threshold")
    dirty = stats.get("dirty_updates", 0)
    if stats.get("optimizer") and threshold is None and dirty:
        warnings.append(
            f"optimizer statistics {dirty} update(s) stale and automatic "
            f"refresh is disabled"
        )
    store = report.get("store") or {}
    wal = store.get("wal") or {}
    if wal.get("pending_records"):
        warnings.append(
            f"WAL has {wal['pending_records']} record(s) pending group "
            f"commit (unsynced tail)"
        )
    if (wal.get("records_since_checkpoint") or 0) > CHECKPOINT_BACKLOG:
        warnings.append(
            f"{wal['records_since_checkpoint']} WAL record(s) since the "
            f"last checkpoint — restarts replay them all"
        )
    return warnings


# ---------------------------------------------------------------- rendering


def render_report(report: dict) -> str:
    """The aligned health report ``repro-tx doctor`` prints."""
    lines: list[str] = []
    indexes = report.get("indexes", {})
    if indexes:
        header = ["index", "depth", "nodes", "leaves", "live%", "fill%",
                  "compr", "bytes"]
        rows = []
        for name, tree in sorted(indexes.items()):
            rows.append([
                name,
                str(tree["depth"]),
                str(tree["nodes"]),
                str(tree["leaves"]),
                f"{100.0 * tree['live_ratio']:.0f}",
                f"{100.0 * tree['live_leaf_fill']:.0f}",
                f"{tree['compression_ratio']:.2f}",
                str(tree["size_bytes"]),
            ])
        widths = [
            max(len(header[i]), max(len(r[i]) for r in rows))
            for i in range(len(header))
        ]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        any_tree = next(iter(indexes.values()))
        lines.append(
            f"live facts: {any_tree['live_records']}  "
            f"versions: {any_tree['total_versions']}  "
            f"watermark chronon: {any_tree['current_time']}"
        )
    dictionary = report.get("dictionary")
    if dictionary:
        lines.append(
            f"dictionary: {dictionary['terms']} term(s), "
            f"{dictionary['size_bytes']} bytes"
        )
    plan_cache = report.get("plan_cache")
    if plan_cache:
        lines.append(
            f"plan cache: {plan_cache['entries']}/{plan_cache['capacity']}"
        )
    stats = report.get("statistics")
    if stats:
        drift = stats.get("drift") or {}
        lines.append(
            f"optimizer: {'on' if stats.get('optimizer') else 'off'}, "
            f"{stats.get('dirty_updates', 0)} update(s) since last "
            f"statistics build, drift refreshes: "
            f"{drift.get('refreshes', 0)}"
        )
    store = report.get("store")
    if store:
        lines.append(
            f"revision: {store.get('revision')}  "
            f"result cache: {store.get('result_cache')}"
        )
        wal = store.get("wal") or {}
        if wal:
            lines.append(
                f"WAL: {wal.get('size_bytes', 0)} bytes, next LSN "
                f"{wal.get('next_lsn')}, {wal.get('pending_records', 0)} "
                f"pending, fsync={'on' if wal.get('fsync') else 'off'}"
            )
    total = report.get("total_size_bytes")
    if total is not None:
        lines.append(f"total index + dictionary size: {total} bytes")
    return "\n".join(lines)
