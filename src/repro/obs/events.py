"""Ring-buffered cluster event log.

Failovers, resyncs, promotions and their kin are rare, high-signal state
transitions: exactly the things an operator greps for after an incident.
Scattered warning lines are easy to lose, so each transition is recorded
twice — appended to a bounded in-memory ring served at ``/debug/events``,
and mirrored as a structured log line through :mod:`repro.obs.log` so
log shippers see the same record.

Event names are dotted paths (``cluster.event.promoted``) drawn from
:data:`repro.obs.catalog.EVENTS`; lint rule RL017 cross-checks every
``record(...)`` call site against that catalog the way RL009/RL012 do
for metric names.  ``REPRO_OBS=0`` turns recording into a no-op.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

from . import log as _obslog
from . import metrics as _metrics

__all__ = ["EventLog", "EVENTS", "record", "recent"]

#: Default ring capacity: enough for any plausible incident window while
#: bounding /debug/events payloads and coordinator memory.
DEFAULT_CAPACITY = 256


class EventLog:
    """Thread-safe bounded ring of structured cluster events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def record(self, event: str, *, level: str = "info",
               **fields: Any) -> dict[str, Any] | None:
        """Append one event and mirror it to the structured log.

        ``None`` field values are dropped (a replica outside any trace has
        ``trace_id=None``; serializing that noise helps nobody).  Returns
        the stored record, or ``None`` when observability is disabled.
        """
        if not _metrics.ENABLED:
            return None
        clean = {key: value for key, value in fields.items()
                 if value is not None}
        entry: dict[str, Any] = {
            "ts": round(time.time(), 6),
            "event": event,
            "level": level,
        }
        entry.update(clean)
        with self._lock:
            self._ring.append(entry)
            self._counts[event] = self._counts.get(event, 0) + 1
        _obslog.LOGGER.log(level, event, **clean)
        return entry

    def recent(self, limit: int = 100) -> list[dict[str, Any]]:
        """The newest ``limit`` events, newest first."""
        if limit <= 0:
            return []
        with self._lock:
            snapshot = list(self._ring)
        snapshot.reverse()
        return snapshot[:limit]

    def counts(self) -> dict[str, int]:
        """Lifetime per-event-name totals (not bounded by the ring)."""
        with self._lock:
            return dict(self._counts)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._counts.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


#: The process-global event log (coordinator and workers each have one;
#: the coordinator's /debug/events handler merges them over RPC).
EVENTS = EventLog()


def record(event: str, *, level: str = "info",
           **fields: Any) -> dict[str, Any] | None:
    """``EVENTS.record`` shorthand."""
    return EVENTS.record(event, level=level, **fields)


def recent(limit: int = 100) -> list[dict[str, Any]]:
    """``EVENTS.recent`` shorthand."""
    return EVENTS.recent(limit)
