"""Operator-level query profiles (EXPLAIN ANALYZE).

``RDFTX.query(..., profile=True)`` attaches a :class:`QueryProfile` to the
result: a tree of :class:`ProfileNode` operator records, one per scan,
join, filter and projection, each carrying the optimizer's estimated
cardinality, the actual row count, elapsed wall time, and index-level
counters (MVBT leaves visited, entries examined/pruned, compressed pages
decoded).  Estimate-vs-actual drift is summarized as the *q-error*
``max(est / actual, actual / est)`` with both sides floored at one row,
the standard measure for cardinality estimators.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass
class ProfileNode:
    """One executed operator: scans, joins, filters, projection."""

    op: str
    detail: str = ""
    #: optimizer cardinality estimate; None when the optimizer is off.
    est_rows: float | None = None
    #: rows produced; None when the operator is fused away (sync join inputs).
    actual_rows: int | None = None
    time_ms: float = 0.0
    #: index-level counters, e.g. leaves visited by a scan.
    extra: dict = field(default_factory=dict)
    children: list["ProfileNode"] = field(default_factory=list)

    @property
    def qerror(self) -> float | None:
        """q-error of the cardinality estimate, both sides floored at 1."""
        if self.est_rows is None or self.actual_rows is None:
            return None
        est = max(self.est_rows, 1.0)
        actual = max(float(self.actual_rows), 1.0)
        return max(est / actual, actual / est)

    def describe(self) -> str:
        """One-line EXPLAIN ANALYZE rendering of this operator."""
        parts = [self.op]
        if self.detail:
            parts.append(self.detail)
        parts.append(
            "(est=?" if self.est_rows is None
            else f"(est={_format_rows(self.est_rows)}"
        )
        parts.append(
            "actual=?" if self.actual_rows is None
            else f"actual={self.actual_rows}"
        )
        parts.append(f"time={self.time_ms:.2f}ms)")
        q = self.qerror
        if q is not None:
            parts.append(f"qerr={q:.2f}")
        if self.extra:
            inner = " ".join(f"{k}={v}" for k, v in self.extra.items())
            parts.append(f"[{inner}]")
        return " ".join(parts)

    def walk(self):
        """Depth-first iteration over this subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        out = {
            "op": self.op,
            "detail": self.detail,
            "est_rows": self.est_rows,
            "actual_rows": self.actual_rows,
            "time_ms": round(self.time_ms, 4),
        }
        if self.extra:
            out["extra"] = dict(self.extra)
        q = self.qerror
        if q is not None:
            out["qerror"] = round(q, 4)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


def _format_rows(value: float) -> str:
    """Estimates below ten keep two decimals (they are often fractional)."""
    return f"{value:.0f}" if value >= 10 else f"{value:.2f}"


@dataclass
class QueryProfile:
    """The profile of one query execution: operator tree plus totals."""

    root: ProfileNode
    total_ms: float = 0.0

    def iter_nodes(self):
        return self.root.walk()

    def pattern_qerrors(self) -> list[tuple[str, float, int, float]]:
        """Per-pattern ``(pattern, est, actual, q-error)`` for every scan
        that carries an optimizer estimate."""
        out = []
        for node in self.iter_nodes():
            if node.op != "scan":
                continue
            if node.est_rows is None or node.actual_rows is None:
                continue
            out.append(
                (node.detail, node.est_rows, node.actual_rows, node.qerror)
            )
        return out

    def max_qerror(self) -> float | None:
        """Worst per-pattern q-error, or None without estimates."""
        qerrors = [q for _, _, _, q in self.pattern_qerrors()]
        return max(qerrors) if qerrors else None

    def render(self) -> str:
        """PostgreSQL EXPLAIN ANALYZE-style tree rendering."""
        lines: list[str] = []
        _render_node(self.root, lines, prefix="", is_last=True, is_root=True)
        lines.append(f"Total: {self.total_ms:.2f} ms")
        worst = self.max_qerror()
        if worst is not None:
            lines.append(f"Max pattern q-error: {worst:.2f}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "total_ms": round(self.total_ms, 4),
            "max_qerror": self.max_qerror(),
            "plan": self.root.to_dict(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def _render_node(
    node: ProfileNode,
    lines: list[str],
    prefix: str,
    is_last: bool,
    is_root: bool = False,
) -> None:
    if is_root:
        lines.append(node.describe())
        child_prefix = ""
    else:
        lines.append(prefix + ("└─ " if is_last else "├─ ") + node.describe())
        child_prefix = prefix + ("   " if is_last else "│  ")
    for i, child in enumerate(node.children):
        _render_node(
            child, lines, child_prefix, is_last=(i == len(node.children) - 1)
        )
