"""The catalog of sanctioned metric names.

Every counter / gauge / timer / histogram registered anywhere in the tree must be
declared here first.  The point is hygiene at scale: the global registry
(:mod:`repro.obs.metrics`) will happily mint a metric for any string, so a
typo at one call site silently forks a counter ("service.store.querys")
and dashboards read zeros forever.  ``repro-tx lint`` rule RL009
cross-checks every registration call against this catalog, making the
drift a review-time error instead.

Keep the catalog sorted; the entry's comment is the one-line contract of
what the metric counts.
"""

from __future__ import annotations

import re

#: Metric names must be lowercase dotted paths: ``subsystem.component.what``.
NAME_PATTERN = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: Every counter name the tree is allowed to register.
COUNTERS = frozenset({
    "engine.filter_rows_in",          # rows entering a FILTER operator
    "engine.filter_rows_out",         # rows surviving a FILTER operator
    "engine.hash_join_rows",          # rows emitted by hash joins
    "engine.hash_joins",              # hash-join operator executions
    "engine.index_scan_rows",         # rows emitted by index scans
    "engine.index_scans",             # index-scan operator executions
    "engine.parallel.leaf_tasks",     # per-leaf scan tasks run on the pool
    "engine.parallel.prefetches",     # pattern scans prefetched on the pool
    "engine.parallel.scans",          # scans fanned out per leaf
    "engine.plan_cache.evictions",    # compiled plans evicted (LRU)
    "engine.plan_cache.hits",         # compile calls served from cache
    "engine.plan_cache.misses",       # compile calls that planned afresh
    "engine.queries",                 # SPARQLT queries evaluated
    "engine.sync_join_rows",          # rows emitted by synchronized joins
    "engine.sync_joins",              # synchronized-join executions
    "mvbt.compression.bytes_decoded",     # compressed bytes expanded
    "mvbt.compression.entries_decoded",   # entries expanded from buffers
    "mvbt.compression.leaves_decoded",    # leaf-buffer cache misses
    "mvbt.scan.entries_examined",     # entries touched by scans
    "mvbt.scan.entries_emitted",      # entries passing scan predicates
    "mvbt.scan.entries_pruned",       # entries skipped by pruning
    "mvbt.scan.leaves_visited",       # leaf nodes visited by scans
    "mvbt.scan.scans",                # range-interval scans started
    "mvbt.tree.deletes",              # logical deletes applied
    "mvbt.tree.inserts",              # inserts applied
    "mvbt.tree.key_splits",           # key splits performed
    "mvbt.tree.merges",               # merges performed
    "mvbt.tree.version_splits",       # version splits performed
    "service.cache.evictions",        # result-cache entries evicted (LRU)
    "service.cache.hits",             # queries served from the result cache
    "service.cache.invalidations",    # wholesale result-cache clears
    "service.cache.misses",           # result-cache lookups that missed
    "service.server.errors",          # unexpected 500s (see error_id log)
    "service.server.rejected",        # admissions rejected with 503
    "service.server.requests",        # HTTP requests received
    "service.server.timeouts",        # requests past deadline (504)
    "service.snapshot.loads",         # snapshots loaded
    "service.snapshot.saves",         # snapshots written
    "service.store.checkpoints",      # checkpoints completed
    "service.store.queries",          # store queries served
    "service.store.replay_skipped",   # WAL records skipped during recovery
    "service.store.replayed_records", # WAL records re-applied on recovery
    "service.store.updates",          # durable updates applied
    "service.wal.appends",            # WAL records appended
    "service.wal.syncs",              # WAL fsync group commits
    "service.wal.torn_tails",         # torn WAL tails repaired on open
})

#: Every gauge name the tree is allowed to register.
GAUGES = frozenset()

#: Every timer-stat name the tree is allowed to register.
TIMERS = frozenset({
    "engine.query",            # end-to-end SPARQLT evaluation
    "service.server.request",  # HTTP request wall time
    "service.snapshot.load",   # snapshot load wall time
    "service.snapshot.save",   # snapshot save wall time
})

#: Every fixed-bucket latency-histogram name the tree is allowed to register.
HISTOGRAMS = frozenset({
    "service.server.request_ms",   # HTTP request wall time (per request)
    "service.store.query_ms",      # store-level query latency
    "service.store.update_ms",     # store-level durable-update latency
    "service.wal.sync_ms",         # WAL group-commit fsync latency
})

#: Union of all sanctioned names, any kind.
ALL_METRICS = COUNTERS | GAUGES | TIMERS | HISTOGRAMS


def is_registered(name: str) -> bool:
    """Whether ``name`` is a sanctioned metric of any kind."""
    return name in ALL_METRICS


def is_well_formed(name: str) -> bool:
    """Whether ``name`` matches the dotted lowercase naming convention."""
    return NAME_PATTERN.match(name) is not None
