"""The catalog of sanctioned metric names.

Every counter / gauge / timer / histogram registered anywhere in the tree must be
declared here first.  The point is hygiene at scale: the global registry
(:mod:`repro.obs.metrics`) will happily mint a metric for any string, so a
typo at one call site silently forks a counter ("service.store.querys")
and dashboards read zeros forever.  ``repro-tx lint`` rules RL009 and
RL012 cross-check every registration call against this catalog, making
the drift a review-time error instead.

Each entry maps the name to its one-line contract; the help text is also
emitted as the Prometheus ``# HELP`` line, and
:meth:`~repro.obs.metrics.Registry.render_prometheus` renders *every*
cataloged metric — zero-valued when nothing registered it yet — so the
scrape surface is identical across restarts and code paths.

Keep each kind's dict sorted by name.
"""

from __future__ import annotations

import re

#: Metric names must be lowercase dotted paths: ``subsystem.component.what``.
NAME_PATTERN = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: Every counter name the tree is allowed to register -> its contract.
COUNTER_HELP: dict[str, str] = {
    "cluster.coordinator.failovers": "replica promotions after primary death",
    "cluster.coordinator.federation_errors":
        "member metrics pulls that failed",
    "cluster.coordinator.federation_pulls":
        "member metrics snapshots pulled by the federation collector",
    "cluster.coordinator.queries": "queries evaluated by the coordinator",
    "cluster.coordinator.replica_lagging":
        "replica reads refused behind the acked LSN",
    "cluster.coordinator.replica_reads": "reads served by a replica",
    "cluster.coordinator.rpc_errors": "shard RPCs failed at transport level",
    "cluster.coordinator.scatter_scans": "per-shard scatter scan requests",
    "cluster.coordinator.single_shard": "queries on the single-shard fast path",
    "cluster.coordinator.updates": "updates routed to owner shards",
    "cluster.worker.replicated": "WAL records applied from the primary",
    "cluster.worker.replicated_bytes":
        "encoded WAL bytes applied from the primary",
    "cluster.worker.requests": "RPC requests served by this worker",
    "cluster.worker.resyncs": "full snapshot resyncs performed",
    "cluster.worker.wal_shipped": "WAL records shipped to followers",
    "cluster.worker.wal_shipped_bytes":
        "encoded WAL bytes shipped to followers",
    "engine.filter_rows_in": "rows entering a FILTER operator",
    "engine.filter_rows_out": "rows surviving a FILTER operator",
    "engine.hash_join_rows": "rows emitted by hash joins",
    "engine.hash_joins": "hash-join operator executions",
    "engine.index_scan_rows": "rows emitted by index scans",
    "engine.index_scans": "index-scan operator executions",
    "engine.parallel.leaf_tasks": "per-leaf scan tasks run on the pool",
    "engine.parallel.prefetches": "pattern scans prefetched on the pool",
    "engine.parallel.scans": "scans fanned out per leaf",
    "engine.plan_cache.evictions": "compiled plans evicted (LRU)",
    "engine.plan_cache.hits": "compile calls served from cache",
    "engine.plan_cache.misses": "compile calls that planned afresh",
    "engine.queries": "SPARQLT queries evaluated",
    "engine.sync_join_rows": "rows emitted by synchronized joins",
    "engine.sync_joins": "synchronized-join executions",
    "mvbt.compression.bytes_decoded": "compressed bytes expanded",
    "mvbt.compression.entries_decoded": "entries expanded from buffers",
    "mvbt.compression.leaves_decoded": "leaf-buffer cache misses",
    "mvbt.compression.packed_entries_skipped":
        "entries filtered by packed scans without materializing",
    "mvbt.compression.packed_scans": "leaf scans answered over packed bytes",
    "mvbt.scan.entries_examined": "entries touched by scans",
    "mvbt.scan.entries_emitted": "entries passing scan predicates",
    "mvbt.scan.entries_pruned": "entries skipped by pruning",
    "mvbt.scan.leaves_visited": "leaf nodes visited by scans",
    "mvbt.scan.scans": "range-interval scans started",
    "mvbt.tree.deletes": "logical deletes applied",
    "mvbt.tree.inserts": "inserts applied",
    "mvbt.tree.key_splits": "key splits performed",
    "mvbt.tree.merges": "merges performed",
    "mvbt.tree.version_splits": "version splits performed",
    "obs.profiler.profiles": "sampling-profiler runs completed",
    "obs.profiler.samples": "thread stack samples captured by the profiler",
    "obs.workload.overflow": "query records folded into the overflow shape",
    "obs.workload.records": "queries folded into the workload registry",
    "optimizer.drift.refreshes":
        "statistics rebuilds triggered by sustained estimate drift",
    "optimizer.drift.samples": "queries profiled by the drift monitor",
    "service.cache.evictions": "result-cache entries evicted (LRU)",
    "service.cache.hits": "queries served from the result cache",
    "service.cache.invalidations": "wholesale result-cache clears",
    "service.cache.misses": "result-cache lookups that missed",
    "service.server.errors": "unexpected 500s (see error_id log)",
    "service.server.rejected": "admissions rejected with 503",
    "service.server.requests": "HTTP requests received",
    "service.server.timeouts": "requests past deadline (504)",
    "service.snapshot.loads": "snapshots loaded",
    "service.snapshot.saves": "snapshots written",
    "service.store.checkpoints": "checkpoints completed",
    "service.store.queries": "store queries served",
    "service.store.replay_skipped": "WAL records skipped during recovery",
    "service.store.replayed_records": "WAL records re-applied on recovery",
    "service.store.updates": "durable updates applied",
    "service.wal.appends": "WAL records appended",
    "service.wal.syncs": "WAL fsync group commits",
    "service.wal.torn_tails": "torn WAL tails repaired on open",
}

#: Every gauge name the tree is allowed to register -> its contract.
GAUGE_HELP: dict[str, str] = {
    "cluster.coordinator.shards_alive": "shards with a live primary",
    "cluster.coordinator.watermark":
        "cluster revision watermark (total applied LSNs)",
    "cluster.lag.lsn":
        "per-replica LSN lag: acked_lsn minus the replica's applied LSN",
    "cluster.lag.max_lsn":
        "worst per-replica LSN lag across the cluster at the last pull",
    "cluster.lag.max_seconds":
        "worst per-replica seconds-behind across the cluster at the last pull",
    "cluster.lag.seconds":
        "per-replica seconds behind the primary, from shipped-record stamps",
    "cluster.member.up":
        "1 when the member answered the last federation pull, else 0",
    "obs.workload.shapes": "distinct query shapes currently tracked",
    "optimizer.drift.max_qerror":
        "worst per-pattern q-error in the drift window",
    "optimizer.drift.median_qerror":
        "median per-pattern q-error over the drift window",
    "process.rss_bytes": "resident set size (from /proc/self/status)",
    "process.uptime_seconds": "seconds since the obs layer was loaded",
}

#: Every timer-stat name the tree is allowed to register -> its contract.
TIMER_HELP: dict[str, str] = {
    "engine.query": "end-to-end SPARQLT evaluation",
    "service.server.request": "HTTP request wall time",
    "service.snapshot.load": "snapshot load wall time",
    "service.snapshot.save": "snapshot save wall time",
}

#: Every fixed-bucket latency-histogram name the tree is allowed to
#: register -> its contract.
HISTOGRAM_HELP: dict[str, str] = {
    "cluster.coordinator.rpc_ms": "coordinator-to-shard RPC latency",
    "service.server.request_ms": "HTTP request wall time (per request)",
    "service.store.query_ms": "store-level query latency",
    "service.store.update_ms": "store-level durable-update latency",
    "service.wal.sync_ms": "WAL group-commit fsync latency",
}

#: Every cluster event-log name the tree is allowed to record -> its
#: contract.  Events are state transitions, not series: they flow into
#: :class:`repro.obs.events.EventLog` rings and structured log lines
#: rather than the metrics registry.  Lint rule RL017 checks ``record``
#: call sites against this set.
EVENT_HELP: dict[str, str] = {
    "cluster.event.diverged":
        "a replica's WAL diverged from the primary; full resync forced",
    "cluster.event.failover": "a shard primary died; promotion started",
    "cluster.event.member_dead": "a member stopped answering RPCs",
    "cluster.event.promote_failed":
        "a promotion attempt failed; trying the next replica",
    "cluster.event.promote_gap":
        "a promoted replica had a WAL gap it could not close",
    "cluster.event.promoted": "a replica took over as shard primary",
    "cluster.event.replica_lagging":
        "a pinned read fell back to the primary (replica behind acked LSN)",
    "cluster.event.replication_gap":
        "a replica fell behind the primary's shipped WAL window; resyncing",
    "cluster.event.resync": "a replica completed a full snapshot resync",
    "cluster.event.update_recovered":
        "an update acknowledged via the shipped WAL after a mid-write failover",
}

#: Sanctioned names per kind (the sets RL009/RL012 check against).
COUNTERS = frozenset(COUNTER_HELP)
GAUGES = frozenset(GAUGE_HELP)
TIMERS = frozenset(TIMER_HELP)
HISTOGRAMS = frozenset(HISTOGRAM_HELP)

#: Sanctioned event-log names (the set RL017 checks against).
EVENTS = frozenset(EVENT_HELP)

#: Union of all sanctioned names, any kind.
ALL_METRICS = COUNTERS | GAUGES | TIMERS | HISTOGRAMS

#: name -> help text, any kind.
HELP = {**COUNTER_HELP, **GAUGE_HELP, **TIMER_HELP, **HISTOGRAM_HELP}


def help_for(name: str) -> str:
    """The cataloged one-line contract ('' for ad-hoc names)."""
    return HELP.get(name, "")


def is_registered(name: str) -> bool:
    """Whether ``name`` is a sanctioned metric of any kind."""
    return name in ALL_METRICS


def is_event(name: str) -> bool:
    """Whether ``name`` is a sanctioned cluster event-log name."""
    return name in EVENTS


def is_well_formed(name: str) -> bool:
    """Whether ``name`` matches the dotted lowercase naming convention."""
    return NAME_PATTERN.match(name) is not None
