"""Structured JSON logging for the serving layer.

One event per line, JSON-encoded, written to a configurable stream
(stderr by default).  The serving layer's access log and slow-query log
both go through here, so every line carries the same envelope —
``ts``, ``level``, ``event`` — plus event-specific fields such as
``trace_id``, ``status``, ``cache_hit`` and ``duration_ms``.

Quiet by default: the level starts at ``warning`` so test suites and
benchmarks that spin up servers stay silent; ``repro-tx serve
--log-level info`` turns access logs on.  ``REPRO_OBS=0`` silences
everything regardless of level.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, TextIO

from . import metrics as _metrics

__all__ = ["LEVELS", "Logger", "LOGGER", "log", "set_level", "set_stream"]

#: Severity order; events below the configured level are dropped.
LEVELS = ("debug", "info", "warning", "error")

_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}


class Logger:
    """Thread-safe line-oriented JSON logger."""

    def __init__(self, stream: TextIO | None = None,
                 level: str = "warning") -> None:
        self._stream = stream
        self._lock = threading.Lock()
        self._rank = self._rank_of(level)

    @staticmethod
    def _rank_of(level: str) -> int:
        try:
            return _LEVEL_RANK[level]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; want one of {LEVELS}"
            ) from None

    def set_level(self, level: str) -> None:
        self._rank = self._rank_of(level)

    def set_stream(self, stream: TextIO | None) -> None:
        """Redirect output; ``None`` means the live ``sys.stderr``."""
        with self._lock:
            self._stream = stream

    def enabled_for(self, level: str) -> bool:
        return _metrics.ENABLED and self._rank_of(level) >= self._rank

    def log(self, level: str, event: str, **fields: Any) -> None:
        """Emit one structured line if ``level`` passes the filter."""
        if not self.enabled_for(level):
            return
        record: dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": level,
            "event": event,
        }
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            stream = self._stream if self._stream is not None else sys.stderr
            stream.write(line + "\n")
            stream.flush()

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


#: The process-global logger the serving layer writes to.
LOGGER = Logger()


def log(level: str, event: str, **fields: Any) -> None:
    """``LOGGER.log`` shorthand."""
    LOGGER.log(level, event, **fields)


def set_level(level: str) -> None:
    """``LOGGER.set_level`` shorthand."""
    LOGGER.set_level(level)


def set_stream(stream: TextIO | None) -> None:
    """``LOGGER.set_stream`` shorthand."""
    LOGGER.set_stream(stream)
