"""Observability: metrics registry and operator-level query profiles.

A lightweight, zero-dependency layer threaded through the engine's hot
paths (MVBT scans, joins, the optimizer's cardinality estimates).  The
environment variable ``REPRO_OBS=0`` turns every probe into a no-op.
"""

from .catalog import ALL_METRICS, is_registered, is_well_formed
from .metrics import (
    ENABLED,
    REGISTRY,
    Counter,
    Gauge,
    Registry,
    Timer,
    TimerStat,
    counter,
    enabled,
    gauge,
    set_enabled,
    timer,
)
from .profile import ProfileNode, QueryProfile

__all__ = [
    "ALL_METRICS",
    "is_registered",
    "is_well_formed",
    "ENABLED",
    "REGISTRY",
    "Counter",
    "Gauge",
    "ProfileNode",
    "QueryProfile",
    "Registry",
    "Timer",
    "TimerStat",
    "counter",
    "enabled",
    "gauge",
    "set_enabled",
    "timer",
]
