"""Observability: metrics registry and operator-level query profiles.

A lightweight, zero-dependency layer threaded through the engine's hot
paths (MVBT scans, joins, the optimizer's cardinality estimates).  The
environment variable ``REPRO_OBS=0`` turns every probe into a no-op.
"""

from .catalog import ALL_METRICS, is_event, is_registered, is_well_formed
from .events import EVENTS, EventLog
from .log import LOGGER, Logger
from .metrics import (
    ENABLED,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Registry,
    Timer,
    TimerStat,
    counter,
    enabled,
    gauge,
    histogram,
    set_enabled,
    timer,
)
from .profile import ProfileNode, QueryProfile
from .trace import Sampler, Span, Trace, TraceBuffer

__all__ = [
    "ALL_METRICS",
    "is_event",
    "is_registered",
    "is_well_formed",
    "ENABLED",
    "EVENTS",
    "EventLog",
    "LOGGER",
    "Logger",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "ProfileNode",
    "QueryProfile",
    "Registry",
    "Sampler",
    "Span",
    "Timer",
    "TimerStat",
    "Trace",
    "TraceBuffer",
    "counter",
    "enabled",
    "gauge",
    "histogram",
    "set_enabled",
    "timer",
]
