"""Cluster metrics federation: merge member snapshots, render labels.

The coordinator pulls each member's registry snapshot (the worker
``metrics`` op) and needs two things done with the pile: *merge* the
per-process values into one series per ``(shard, role)`` label set, and
*render* the result in the Prometheus text format with those labels
attached.  Everything here is pure dict math over the wire shape of
:meth:`repro.obs.metrics.Registry.snapshot` — no sockets, no registry
mutation — so it is unit-testable without a cluster.

Merge semantics per kind:

* **counters** — summed; the per-process counts are disjoint.
* **gauges** — max; a gauge is a point-in-time reading and the
  conservative fleet-wide answer for lag/watermark-style values is the
  worst member.
* **timers** — counts and totals summed, min/max folded, mean recomputed.
* **histograms** — merged *bucket-wise*: the cumulative bucket lists are
  de-cumulated, per-bound counts summed across members, re-cumulated,
  and the p50/p95/p99 re-interpolated from the merged buckets — exactly
  the estimate a single histogram observing the union of samples would
  report.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from . import catalog as _catalog

__all__ = [
    "merge_counters",
    "merge_gauges",
    "merge_timers",
    "merge_histograms",
    "merge_snapshots",
    "build_groups",
    "render_prometheus_cluster",
]

#: Canonical label emission order; any other labels follow, sorted.
_LABEL_ORDER = ("shard", "role", "replica")


def merge_counters(maps: Iterable[dict[str, Any]]) -> dict[str, int]:
    """Sum counter maps key-wise."""
    merged: dict[str, int] = {}
    for values in maps:
        for name, value in values.items():
            merged[name] = merged.get(name, 0) + int(value)
    return dict(sorted(merged.items()))


def merge_gauges(maps: Iterable[dict[str, Any]]) -> dict[str, float]:
    """Fold gauge maps key-wise by max (worst-member semantics)."""
    merged: dict[str, float] = {}
    for values in maps:
        for name, value in values.items():
            value = float(value)
            if name not in merged or value > merged[name]:
                merged[name] = value
    return dict(sorted(merged.items()))


def merge_timers(stats: Iterable[dict[str, Any]]) -> dict[str, float]:
    """Fold timer-stat dicts (count/total/min/max, mean recomputed)."""
    count = 0
    total_ms = 0.0
    min_ms = math.inf
    max_ms = 0.0
    for stat in stats:
        observed = int(stat.get("count", 0))
        count += observed
        total_ms += float(stat.get("total_ms", 0.0))
        if observed:
            min_ms = min(min_ms, float(stat.get("min_ms", 0.0)))
        max_ms = max(max_ms, float(stat.get("max_ms", 0.0)))
    return {
        "count": count,
        "total_ms": total_ms,
        "mean_ms": total_ms / count if count else 0.0,
        "min_ms": min_ms if count else 0.0,
        "max_ms": max_ms,
    }


def _quantile(bounds: list[float], counts: list[int], total: int,
              q: float) -> float:
    """Interpolated quantile over per-bucket counts.

    Mirrors :meth:`repro.obs.metrics.Histogram.quantile` so a merged
    histogram answers exactly what one histogram over the union of the
    samples would.
    """
    if total == 0 or not bounds:
        return 0.0
    rank = q * total
    cumulative = 0
    lower = 0.0
    for bound, bucket in zip(bounds, counts):
        if cumulative + bucket >= rank:
            if bucket == 0:
                return bound
            fraction = (rank - cumulative) / bucket
            return lower + (bound - lower) * fraction
        cumulative += bucket
        lower = bound
    return bounds[-1]


def merge_histograms(snapshots: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Merge histogram ``as_dict`` payloads bucket-wise.

    The wire shape carries *cumulative* ``[bound, count]`` pairs; each is
    de-cumulated, the per-bound increments summed across members (bounds
    are unioned, so members with different ladders still merge), and the
    result re-cumulated with quantiles re-interpolated.
    """
    per_bound: dict[float, int] = {}
    overflow = 0
    total = 0
    sum_ms = 0.0
    for snap in snapshots:
        previous = 0
        for bound, cumulative in snap.get("buckets") or []:
            bound = float(bound)
            per_bound[bound] = per_bound.get(bound, 0) + (
                int(cumulative) - previous
            )
            previous = int(cumulative)
        overflow += int(snap.get("overflow", 0))
        total += int(snap.get("count", 0))
        sum_ms += float(snap.get("sum_ms", 0.0))
    bounds = sorted(per_bound)
    counts = [per_bound[bound] for bound in bounds]
    cumulative_total = 0
    buckets: list[list[float]] = []
    for bound, bucket in zip(bounds, counts):
        cumulative_total += bucket
        buckets.append([bound, cumulative_total])
    return {
        "count": total,
        "sum_ms": sum_ms,
        "overflow": overflow,
        "p50_ms": _quantile(bounds, counts, total, 0.50),
        "p95_ms": _quantile(bounds, counts, total, 0.95),
        "p99_ms": _quantile(bounds, counts, total, 0.99),
        "buckets": buckets,
    }


def merge_snapshots(
    snapshots: Iterable[dict[str, Any]],
) -> dict[str, Any]:
    """Merge whole registry snapshots into one snapshot-shaped dict."""
    snapshots = list(snapshots)
    timer_names: dict[str, list[dict[str, Any]]] = {}
    hist_names: dict[str, list[dict[str, Any]]] = {}
    for snap in snapshots:
        for name, stat in (snap.get("timers") or {}).items():
            timer_names.setdefault(name, []).append(stat)
        for name, hist in (snap.get("histograms") or {}).items():
            hist_names.setdefault(name, []).append(hist)
    return {
        "counters": merge_counters(
            snap.get("counters") or {} for snap in snapshots
        ),
        "gauges": merge_gauges(
            snap.get("gauges") or {} for snap in snapshots
        ),
        "timers": {
            name: merge_timers(stats)
            for name, stats in sorted(timer_names.items())
        },
        "histograms": {
            name: merge_histograms(hists)
            for name, hists in sorted(hist_names.items())
        },
    }


def build_groups(members: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Group live, obs-enabled member entries by label set and merge.

    ``members`` entries follow the federated shape the coordinator
    builds: ``shard`` (absent for the coordinator itself), ``role``,
    ``alive``, ``enabled`` and ``metrics``.  Replicas of the same shard
    share the ``(shard, role)`` label set, so their snapshots merge into
    one series instead of colliding.
    """
    grouped: dict[tuple, dict[str, Any]] = {}
    for entry in members:
        if not entry.get("alive") or not entry.get("enabled"):
            continue
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict):
            continue
        labels: dict[str, str] = {}
        if entry.get("shard") is not None:
            labels["shard"] = str(entry["shard"])
        labels["role"] = str(entry.get("role", "unknown"))
        key = tuple(sorted(labels.items()))
        bucket = grouped.setdefault(key, {"labels": labels, "snapshots": []})
        bucket["snapshots"].append(metrics)
    groups: list[dict[str, Any]] = []
    for key in sorted(grouped):
        bucket = grouped[key]
        groups.append({
            "labels": bucket["labels"],
            "members": len(bucket["snapshots"]),
            "metrics": merge_snapshots(bucket["snapshots"]),
        })
    return groups


def _format_labels(labels: dict[str, Any], extra: str = "") -> str:
    """``{shard="0",role="replica"}`` with deterministic key order."""
    parts = [
        f'{key}="{labels[key]}"' for key in _LABEL_ORDER if key in labels
    ]
    parts.extend(
        f'{key}="{value}"'
        for key, value in sorted(labels.items())
        if key not in _LABEL_ORDER
    )
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}"


def render_prometheus_cluster(federated: dict[str, Any]) -> str:
    """Prometheus text exposition of a federated cluster pull.

    Unlike the per-process renderer, nothing is synthesized from the
    catalog: only series members actually reported appear, each labeled
    with its merged group's ``shard``/``role`` (and ``replica`` index
    for the per-replica lag gauges).  ``federated`` is the dict
    :meth:`repro.cluster.coordinator.ClusterStore.federated_metrics`
    returns.
    """
    lines: list[str] = []

    def prom(name: str) -> str:
        return "repro_" + name.replace(".", "_")

    def emit_help(base: str, name: str, kind: str) -> None:
        text = _catalog.help_for(name)
        if text:
            lines.append(f"# HELP {base} {text}")
        lines.append(f"# TYPE {base} {kind}")

    groups = federated.get("groups") or []
    by_name: dict[str, dict[str, list]] = {
        "counters": {}, "gauges": {}, "timers": {}, "histograms": {},
    }
    for group in groups:
        labels = group.get("labels") or {}
        metrics = group.get("metrics") or {}
        for kind in by_name:
            for name, value in (metrics.get(kind) or {}).items():
                by_name[kind].setdefault(name, []).append((labels, value))

    for name in sorted(by_name["counters"]):
        base = prom(name)
        emit_help(f"{base}_total", name, "counter")
        for labels, value in by_name["counters"][name]:
            lines.append(f"{base}_total{_format_labels(labels)} {value}")
    for name in sorted(by_name["gauges"]):
        base = prom(name)
        emit_help(base, name, "gauge")
        for labels, value in by_name["gauges"][name]:
            lines.append(f"{base}{_format_labels(labels)} {value:g}")
    for name in sorted(by_name["timers"]):
        base = prom(name)
        emit_help(f"{base}_seconds", name, "summary")
        for labels, stat in by_name["timers"][name]:
            rendered = _format_labels(labels)
            lines.append(
                f"{base}_seconds_count{rendered} {stat['count']}"
            )
            lines.append(
                f"{base}_seconds_sum{rendered} "
                f"{stat['total_ms'] / 1000.0:.9g}"
            )
    for name in sorted(by_name["histograms"]):
        base = prom(name)
        emit_help(base, name, "histogram")
        for labels, hist in by_name["histograms"][name]:
            cumulative = 0
            for bound, cum in hist.get("buckets") or []:
                cumulative = cum
                le_label = 'le="%g"' % bound
                lines.append(
                    f"{base}_bucket{_format_labels(labels, le_label)} {cum}"
                )
            inf_label = 'le="+Inf"'
            total_count = cumulative + hist.get("overflow", 0)
            lines.append(
                f"{base}_bucket{_format_labels(labels, inf_label)} "
                f"{total_count}"
            )
            rendered = _format_labels(labels)
            lines.append(f"{base}_sum{rendered} {hist['sum_ms']:.9g}")
            lines.append(f"{base}_count{rendered} {hist['count']}")

    # Per-replica lag gauges and per-member liveness, straight from the
    # member entries (these are coordinator-derived, not registry series).
    lag_lsn: list[tuple[dict[str, Any], float]] = []
    lag_seconds: list[tuple[dict[str, Any], float]] = []
    up: list[tuple[dict[str, Any], int]] = []
    for entry in federated.get("members") or []:
        labels = {}
        if entry.get("shard") is not None:
            labels["shard"] = str(entry["shard"])
        labels["role"] = str(entry.get("role", "unknown"))
        if entry.get("replica") is not None:
            labels["replica"] = str(entry["replica"])
        up.append((labels, 1 if entry.get("alive") else 0))
        if entry.get("role") == "replica" and entry.get("alive"):
            if entry.get("lag_lsn") is not None:
                lag_lsn.append((labels, float(entry["lag_lsn"])))
            if entry.get("lag_seconds") is not None:
                lag_seconds.append((labels, float(entry["lag_seconds"])))
    for name, series in (("cluster.lag.lsn", lag_lsn),
                         ("cluster.lag.seconds", lag_seconds),
                         ("cluster.member.up", up)):
        if not series:
            continue
        base = prom(name)
        emit_help(base, name, "gauge")
        for labels, value in series:
            lines.append(f"{base}{_format_labels(labels)} {value:g}")
    return "\n".join(lines) + "\n"
