"""Process-wide metrics registry: counters, gauges, timers, histograms.

Zero-dependency observability for the engine's hot paths.  Metrics are
named, thread-safe, and live in a process-global :data:`REGISTRY` by
default; :meth:`Registry.snapshot` / :meth:`Registry.reset` and the
text/JSON/Prometheus renderers back the ``repro-tx stats`` subcommand,
the ``/metrics`` endpoint, and the benchmark harness's profile
artifacts.

:class:`Histogram` records latencies into fixed log-spaced buckets so
p50/p95/p99 are derivable from the bucket counts alone (no per-sample
storage) and standard Prometheus scrapers can consume the cumulative
``_bucket``/``_sum``/``_count`` rendering.

Kill switch: setting the environment variable ``REPRO_OBS=0`` (before
import) disables all instrumentation — counter increments, timer
observations, and query profiling become no-ops, so benchmark timings are
unaffected.  Call sites in hot loops additionally gate on
:data:`ENABLED` so the disabled path costs a single attribute check per
operation batch, never per row.  Tests and tools can flip the switch at
runtime with :func:`set_enabled`.
"""

from __future__ import annotations

import bisect
import json
import os
import threading
import time
from typing import Callable, Iterable


def _env_enabled() -> bool:
    """Read the ``REPRO_OBS`` kill switch from the environment."""
    raw = os.environ.get("REPRO_OBS", "1").strip().lower()
    return raw not in ("0", "false", "off", "no")


#: Global instrumentation switch (``REPRO_OBS`` env, default on).
ENABLED = _env_enabled()


def enabled() -> bool:
    """Whether instrumentation is currently on."""
    return ENABLED


def set_enabled(flag: bool) -> bool:
    """Flip the kill switch at runtime; returns the previous state."""
    global ENABLED
    previous = ENABLED
    ENABLED = bool(flag)
    return previous


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if not ENABLED:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A named value that can go up and down (last write wins)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if not ENABLED:
            return
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class TimerStat:
    """Aggregated wall-clock observations: count / total / min / max."""

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        if not ENABLED:
            return
        with self._lock:
            self.count += 1
            self.total += seconds
            if seconds < self.min:
                self.min = seconds
            if seconds > self.max:
                self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = float("inf")
            self.max = 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_ms": self.total * 1000.0,
            "mean_ms": self.mean * 1000.0,
            "min_ms": (self.min if self.count else 0.0) * 1000.0,
            "max_ms": self.max * 1000.0,
        }


#: Default latency bucket upper bounds in **milliseconds** — a 1-2-5
#: log-spaced ladder from 50µs to 10s.  Observations above the last bound
#: land in the implicit +Inf overflow bucket.
DEFAULT_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
    100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
)


class Histogram:
    """Fixed-bucket latency histogram (milliseconds).

    Cumulative-on-read: each observation increments exactly one bucket
    counter, quantiles are interpolated from the bucket boundaries when
    asked.  With log-spaced buckets the interpolation error is bounded by
    the bucket ratio (2-2.5x here), which is what fleet-wide p95/p99
    dashboards tolerate by convention.
    """

    __slots__ = ("name", "bounds", "_counts", "_overflow", "_sum",
                 "_count", "_lock")

    def __init__(self, name: str,
                 bounds: tuple[float, ...] = DEFAULT_BUCKETS_MS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * len(self.bounds)
        self._overflow = 0
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value_ms: float) -> None:
        """Record one observation (milliseconds)."""
        if not ENABLED:
            return
        index = bisect.bisect_left(self.bounds, value_ms)
        with self._lock:
            if index < len(self.bounds):
                self._counts[index] += 1
            else:
                self._overflow += 1
            self._sum += value_ms
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum_ms(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Interpolated quantile in milliseconds (0 <= q <= 1).

        Walks the cumulative bucket counts to the target rank and
        interpolates linearly inside the containing bucket; ranks landing
        in the overflow bucket report the largest finite bound (the
        histogram cannot resolve beyond it).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        lower = 0.0
        for bound, bucket in zip(self.bounds, counts):
            if cumulative + bucket >= rank:
                if bucket == 0:
                    return bound
                fraction = (rank - cumulative) / bucket
                return lower + (bound - lower) * fraction
            cumulative += bucket
            lower = bound
        return self.bounds[-1]

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * len(self.bounds)
            self._overflow = 0
            self._sum = 0.0
            self._count = 0

    def as_dict(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            overflow = self._overflow
            total = self._count
            sum_ms = self._sum
        cumulative = 0
        buckets = []
        for bound, bucket in zip(self.bounds, counts):
            cumulative += bucket
            buckets.append([bound, cumulative])
        return {
            "count": total,
            "sum_ms": sum_ms,
            "overflow": overflow,
            "p50_ms": self.quantile(0.50),
            "p95_ms": self.quantile(0.95),
            "p99_ms": self.quantile(0.99),
            "buckets": buckets,
        }


class Timer:
    """Context manager / decorator feeding a :class:`TimerStat`.

    Usage::

        with registry.timer("engine.query"):
            ...

        @registry.timer("engine.query")
        def run(): ...
    """

    __slots__ = ("stat", "_start")

    def __init__(self, stat: TimerStat) -> None:
        self.stat = stat
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter() if ENABLED else None
        return self

    def __exit__(self, *exc) -> bool:
        if self._start is not None:
            self.stat.observe(time.perf_counter() - self._start)
            self._start = None
        return False

    def __call__(self, fn: Callable) -> Callable:
        stat = self.stat

        def wrapper(*args, **kwargs):
            if not ENABLED:
                return fn(*args, **kwargs)
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                stat.observe(time.perf_counter() - start)

        wrapper.__name__ = getattr(fn, "__name__", "wrapped")
        wrapper.__doc__ = fn.__doc__
        return wrapper


class Registry:
    """A named collection of counters, gauges and timer stats."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, TimerStat] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------- factories

    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            with self._lock:
                found = self._counters.setdefault(name, Counter(name))
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            with self._lock:
                found = self._gauges.setdefault(name, Gauge(name))
        return found

    def timer_stat(self, name: str) -> TimerStat:
        found = self._timers.get(name)
        if found is None:
            with self._lock:
                found = self._timers.setdefault(name, TimerStat(name))
        return found

    def timer(self, name: str) -> Timer:
        return Timer(self.timer_stat(name))

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS_MS
    ) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            with self._lock:
                found = self._histograms.setdefault(
                    name, Histogram(name, bounds)
                )
        return found

    # ------------------------------------------------------------ inspection

    def counter_values(self, names: Iterable[str]) -> dict[str, int]:
        """Current values of the named counters (created when missing)."""
        return {name: self.counter(name).value for name in names}

    def snapshot(self) -> dict:
        """One nested dict of every metric's current state."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.value for name, g in sorted(self._gauges.items())
                },
                "timers": {
                    name: t.as_dict()
                    for name, t in sorted(self._timers.items())
                },
                "histograms": {
                    name: h.as_dict()
                    for name, h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        """Zero every metric, keeping the registered objects alive so
        module-level references stay valid."""
        with self._lock:
            metrics = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._timers.values())
                + list(self._histograms.values())
            )
        for metric in metrics:
            metric.reset()

    # ------------------------------------------------------------- rendering

    def render_text(self) -> str:
        """Aligned text rendering of the whole registry."""
        snap = self.snapshot()
        lines: list[str] = []
        if snap["counters"]:
            lines.append("counters:")
            width = max(len(n) for n in snap["counters"])
            for name, value in snap["counters"].items():
                lines.append(f"  {name.ljust(width)}  {value}")
        if snap["gauges"]:
            lines.append("gauges:")
            width = max(len(n) for n in snap["gauges"])
            for name, value in snap["gauges"].items():
                lines.append(f"  {name.ljust(width)}  {value:g}")
        if snap["timers"]:
            lines.append("timers:")
            width = max(len(n) for n in snap["timers"])
            for name, stat in snap["timers"].items():
                lines.append(
                    f"  {name.ljust(width)}  count={stat['count']}"
                    f" total={stat['total_ms']:.2f}ms"
                    f" mean={stat['mean_ms']:.3f}ms"
                    f" max={stat['max_ms']:.3f}ms"
                )
        if snap["histograms"]:
            lines.append("histograms:")
            width = max(len(n) for n in snap["histograms"])
            for name, hist in snap["histograms"].items():
                lines.append(
                    f"  {name.ljust(width)}  count={hist['count']}"
                    f" p50={hist['p50_ms']:.3f}ms"
                    f" p95={hist['p95_ms']:.3f}ms"
                    f" p99={hist['p99_ms']:.3f}ms"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def render_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of the registry.

        Names are prefixed ``repro_`` with dots mapped to underscores;
        counters gain the conventional ``_total`` suffix, timer stats
        render as ``_count``/``_sum_ms``, histograms as classic
        cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.

        Every cataloged metric (:mod:`repro.obs.catalog`) is rendered —
        zero-valued when nothing has registered it yet — alongside any
        ad-hoc registered names, so the scrape surface is identical
        across restarts, and every series carries its ``# HELP``
        contract.
        """
        from . import catalog as _catalog

        lines: list[str] = []

        def prom(name: str) -> str:
            return "repro_" + name.replace(".", "_")

        def help_line(base: str, name: str) -> None:
            text = _catalog.help_for(name)
            if text:
                lines.append(f"# HELP {base} {text}")

        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            timers = dict(self._timers)
            histograms = dict(self._histograms)
        for name in sorted(set(counters) | _catalog.COUNTERS):
            base = prom(name)
            counter_ = counters.get(name)
            help_line(f"{base}_total", name)
            lines.append(f"# TYPE {base}_total counter")
            lines.append(
                f"{base}_total {counter_.value if counter_ else 0}"
            )
        for name in sorted(set(gauges) | _catalog.GAUGES):
            base = prom(name)
            gauge_ = gauges.get(name)
            help_line(base, name)
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {gauge_.value if gauge_ else 0:g}")
        for name in sorted(set(timers) | _catalog.TIMERS):
            base = prom(name)
            stat = timers.get(name)
            help_line(f"{base}_seconds", name)
            lines.append(f"# TYPE {base}_seconds summary")
            lines.append(
                f"{base}_seconds_count {stat.count if stat else 0}"
            )
            lines.append(
                f"{base}_seconds_sum {stat.total if stat else 0.0:.9g}"
            )
        for name in sorted(set(histograms) | _catalog.HISTOGRAMS):
            base = prom(name)
            hist = histograms.get(name)
            if hist is None:
                hist = Histogram(name)
            data = hist.as_dict()
            help_line(base, name)
            lines.append(f"# TYPE {base} histogram")
            cumulative = 0
            for bound, cum in data["buckets"]:
                cumulative = cum
                lines.append(f'{base}_bucket{{le="{bound:g}"}} {cum}')
            lines.append(
                f'{base}_bucket{{le="+Inf"}} '
                f'{cumulative + data["overflow"]}'
            )
            lines.append(f"{base}_sum {data['sum_ms']:.9g}")
            lines.append(f"{base}_count {data['count']}")
        return "\n".join(lines) + "\n"


#: The process-global default registry every subsystem reports into.
REGISTRY = Registry()


def counter(name: str) -> Counter:
    """``REGISTRY.counter`` shorthand."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """``REGISTRY.gauge`` shorthand."""
    return REGISTRY.gauge(name)


def timer(name: str) -> Timer:
    """``REGISTRY.timer`` shorthand."""
    return REGISTRY.timer(name)


def histogram(name: str) -> Histogram:
    """``REGISTRY.histogram`` shorthand."""
    return REGISTRY.histogram(name)
