"""Triples and temporal triples (Section 2.2 of the paper).

A plain RDF triple is ``(subject, predicate, object)``.  A temporal RDF triple
annotates it with a temporal element; consecutive chronons are encoded with a
:class:`~repro.model.time.Period` as in the paper's interval encoding
``(s, p, o)[ts ... te]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .time import NOW, Period, format_chronon

#: Term type: at the model level terms are strings (URIs or literals);
#: after dictionary encoding they are integers.
Term = str


@dataclass(frozen=True, order=True)
class Triple:
    """A static RDF triple ``(s, p, o)``."""

    subject: Term
    predicate: Term
    object: Term

    def __iter__(self) -> Iterator[Term]:
        yield self.subject
        yield self.predicate
        yield self.object

    def __str__(self) -> str:
        return f"({self.subject}, {self.predicate}, {self.object})"


@dataclass(frozen=True, order=True)
class TemporalTriple:
    """An interval-encoded temporal RDF triple ``(s, p, o)[ts ... te]``."""

    subject: Term
    predicate: Term
    object: Term
    period: Period

    @classmethod
    def make(
        cls,
        subject: Term,
        predicate: Term,
        object: Term,
        start: int,
        end: int = NOW,
    ) -> "TemporalTriple":
        """Build from half-open chronon bounds ``[start, end)``."""
        return cls(subject, predicate, object, Period(start, end))

    @property
    def triple(self) -> Triple:
        """The static part of the temporal triple."""
        return Triple(self.subject, self.predicate, self.object)

    @property
    def is_live(self) -> bool:
        """Whether the fact still holds at the current instant."""
        return self.period.is_live

    def __str__(self) -> str:
        ts = format_chronon(self.period.first)
        te = format_chronon(self.period.last)
        return (
            f"({self.subject}, {self.predicate}, {self.object}) [{ts} ... {te}]"
        )


@dataclass(frozen=True, order=True)
class EncodedTriple:
    """A dictionary-encoded temporal triple: three ids plus the period.

    This is the unit stored in MVBT indices: ``key`` yields the ids in any of
    the four index orders.
    """

    subject: int
    predicate: int
    object: int
    period: Period

    def key(self, order: str) -> tuple[int, int, int]:
        """The composite key in one of the orders SPO, SOP, POS, OPS."""
        mapping = {"s": self.subject, "p": self.predicate, "o": self.object}
        try:
            return (mapping[order[0]], mapping[order[1]], mapping[order[2]])
        except (KeyError, IndexError):
            raise ValueError(f"unknown key order: {order!r}") from None
