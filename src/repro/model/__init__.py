"""Temporal RDF data model: time domain, triples, dictionary, graphs."""

from .dictionary import Dictionary, DictionaryError
from .graph import TemporalGraph
from .time import (
    MIN_TIME,
    NOW,
    Period,
    PeriodSet,
    TimeError,
    chronon_to_date,
    date_to_chronon,
    day_of,
    format_chronon,
    month_of,
    month_range,
    year_of,
    year_range,
)
from .triple import EncodedTriple, TemporalTriple, Triple

__all__ = [
    "Dictionary",
    "DictionaryError",
    "EncodedTriple",
    "MIN_TIME",
    "NOW",
    "Period",
    "PeriodSet",
    "TemporalGraph",
    "TemporalTriple",
    "TimeError",
    "Triple",
    "chronon_to_date",
    "date_to_chronon",
    "day_of",
    "format_chronon",
    "month_of",
    "month_range",
    "year_of",
    "year_range",
]
