"""Temporal RDF graphs.

A :class:`TemporalGraph` is the logical container of a knowledge-base history:
a set of interval-encoded temporal triples over a shared dictionary.  It is
the common ingestion format consumed by the RDF-TX engine and by every
baseline, so all systems index exactly the same data.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Iterable, Iterator

from .dictionary import Dictionary
from .time import NOW, Period, PeriodSet, TimeError
from .triple import EncodedTriple, TemporalTriple


class TemporalGraph:
    """An in-memory set of temporal RDF triples with dictionary encoding."""

    def __init__(self) -> None:
        self.dictionary = Dictionary()
        self._triples: list[EncodedTriple] = []
        #: (sid, pid, oid) -> index of the live triple for that fact, so the
        #: live-update path (engine inserts/deletes, the serving layer's
        #: validation) is O(1) instead of a scan.
        self._live: dict[tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------ load

    def add(
        self,
        subject: str,
        predicate: str,
        object: str,
        start: int,
        end: int = NOW,
    ) -> EncodedTriple:
        """Add one interval-encoded fact ``(s, p, o)[start, end)``."""
        encoded = EncodedTriple(
            self.dictionary.encode(subject),
            self.dictionary.encode(predicate),
            self.dictionary.encode(object),
            Period(start, end),
        )
        self._triples.append(encoded)
        if encoded.period.is_live:
            self._live[
                (encoded.subject, encoded.predicate, encoded.object)
            ] = len(self._triples) - 1
        return encoded

    def add_triple(self, triple: TemporalTriple) -> EncodedTriple:
        """Add a :class:`TemporalTriple`."""
        return self.add(
            triple.subject,
            triple.predicate,
            triple.object,
            triple.period.start,
            triple.period.end,
        )

    def extend(self, triples: Iterable[TemporalTriple]) -> None:
        """Bulk-add temporal triples."""
        for triple in triples:
            self.add_triple(triple)

    def end(self, subject: str, predicate: str, object: str,
            end: int) -> None:
        """End the live fact ``(s, p, o)`` at chronon ``end``.

        Raises :class:`KeyError` when the fact is not live.  Ending a fact
        at (or before) its own start leaves a zero-length history, so the
        triple is dropped entirely — the MVBT's matching entry is likewise
        never visible at any chronon.
        """
        if end >= NOW:
            raise TimeError("cannot end a fact at NOW")
        sid = self.dictionary.lookup(subject)
        pid = self.dictionary.lookup(predicate)
        oid = self.dictionary.lookup(object)
        if sid is None or pid is None or oid is None:
            raise KeyError(f"fact not live: ({subject}, {predicate}, {object})")
        idx = self._live.pop((sid, pid, oid), None)
        if idx is None:
            raise KeyError(f"fact not live: ({subject}, {predicate}, {object})")
        old = self._triples[idx]
        if end <= old.period.start:
            self._remove_at(idx)
            return
        self._triples[idx] = EncodedTriple(
            old.subject, old.predicate, old.object,
            Period(old.period.start, end),
        )

    def _remove_at(self, idx: int) -> None:
        """Remove the triple at ``idx`` (swap-with-last, fix the live map)."""
        last = self._triples.pop()
        if idx < len(self._triples):
            self._triples[idx] = last
            if last.period.is_live:
                self._live[(last.subject, last.predicate, last.object)] = idx

    def is_live(self, subject: str, predicate: str, object: str) -> bool:
        """Whether the fact currently holds (has a live interval)."""
        return self.live_since(subject, predicate, object) is not None

    def live_since(
        self, subject: str, predicate: str, object: str
    ) -> int | None:
        """Start chronon of the fact's live interval, or ``None``."""
        sid = self.dictionary.lookup(subject)
        pid = self.dictionary.lookup(predicate)
        oid = self.dictionary.lookup(object)
        if sid is None or pid is None or oid is None:
            return None
        idx = self._live.get((sid, pid, oid))
        if idx is None:
            return None
        return self._triples[idx].period.start

    # ----------------------------------------------------- (de)serialization

    def encoded_rows(self) -> list[tuple[int, int, int, int, int]]:
        """Flat ``(sid, pid, oid, start, end)`` rows (snapshot payloads)."""
        return [
            (t.subject, t.predicate, t.object, t.period.start, t.period.end)
            for t in self._triples
        ]

    @classmethod
    def from_encoded(
        cls,
        dictionary: Dictionary,
        rows: Iterable[tuple[int, int, int, int, int]],
    ) -> "TemporalGraph":
        """Rebuild a graph from a dictionary plus encoded rows."""
        graph = cls()
        graph.dictionary = dictionary
        for sid, pid, oid, start, end in rows:
            encoded = EncodedTriple(sid, pid, oid, Period(start, end))
            graph._triples.append(encoded)
            if end == NOW:
                graph._live[(sid, pid, oid)] = len(graph._triples) - 1
        return graph

    # ----------------------------------------------------------------- views

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[EncodedTriple]:
        return iter(self._triples)

    def decode(self, encoded: EncodedTriple) -> TemporalTriple:
        """Decode an encoded triple back to its string form."""
        decode = self.dictionary.decode
        return TemporalTriple(
            decode(encoded.subject),
            decode(encoded.predicate),
            decode(encoded.object),
            encoded.period,
        )

    def triples(self) -> Iterator[TemporalTriple]:
        """Iterate decoded temporal triples."""
        return (self.decode(t) for t in self._triples)

    def predicates(self) -> list[str]:
        """Sorted distinct predicate terms across the whole history."""
        decode = self.dictionary.decode
        return sorted(decode(pid) for pid in
                      {t.predicate for t in self._triples})

    def history_of(
        self, subject: str, predicate: str | None = None
    ) -> list[TemporalTriple]:
        """All facts about ``subject`` (optionally one predicate), by time."""
        sid = self.dictionary.lookup(subject)
        if sid is None:
            return []
        pid = None
        if predicate is not None:
            pid = self.dictionary.lookup(predicate)
            if pid is None:
                return []
        hits = [
            t
            for t in self._triples
            if t.subject == sid and (pid is None or t.predicate == pid)
        ]
        hits.sort(key=lambda t: (t.predicate, t.period.start))
        return [self.decode(t) for t in hits]

    def validity(
        self, subject: str, predicate: str, object: str
    ) -> PeriodSet:
        """Coalesced validity of a fact (the "when" query of Example 1)."""
        sid = self.dictionary.lookup(subject)
        pid = self.dictionary.lookup(predicate)
        oid = self.dictionary.lookup(object)
        if sid is None or pid is None or oid is None:
            return PeriodSet()
        return PeriodSet(
            t.period
            for t in self._triples
            if (t.subject, t.predicate, t.object) == (sid, pid, oid)
        )

    def coalesced(self) -> "TemporalGraph":
        """A copy with each fact's periods merged into maximal intervals.

        Transaction-time histories are non-overlapping by construction, but
        *valid-time* histories (Section 2.1: "our implementation remains
        effective for most valid-time histories") may assert overlapping or
        duplicate intervals for the same fact — e.g. annotations merged
        from several sources.  The MVBT requires disjoint intervals per
        key, so valid-time ingestion goes through this normalization.
        """
        periods: dict[tuple[int, int, int], list[Period]] = defaultdict(list)
        for triple in self._triples:
            periods[(triple.subject, triple.predicate, triple.object)].append(
                triple.period
            )
        out = TemporalGraph()
        decode = self.dictionary.decode
        for (sid, pid, oid), parts in periods.items():
            subject, predicate, object_ = decode(sid), decode(pid), decode(oid)
            for period in PeriodSet(parts):
                out.add(subject, predicate, object_, period.start, period.end)
        return out

    # ------------------------------------------------------------ statistics

    def predicate_counts(self) -> dict[int, int]:
        """Number of interval triples per predicate id."""
        counts: dict[int, int] = defaultdict(int)
        for t in self._triples:
            counts[t.predicate] += 1
        return dict(counts)

    def distinct_subjects(self) -> int:
        """Number of distinct subject ids."""
        return len({t.subject for t in self._triples})

    def raw_size(self) -> int:
        """Size of the raw data in bytes, counted as the flat N-Triples-like
        representation the paper compares index sizes against: the string
        terms plus two timestamps per fact."""
        decode = self.dictionary.decode
        size = 0
        for t in self._triples:
            size += len(decode(t.subject).encode())
            size += len(decode(t.predicate).encode())
            size += len(decode(t.object).encode())
            size += 2 * 8  # start / end timestamps
        return size

    def sorted_by(
        self, key: Callable[[EncodedTriple], tuple[Any, ...]]
    ) -> list[EncodedTriple]:
        """Triples sorted by an arbitrary key (used by bulk loaders)."""
        return sorted(self._triples, key=key)
