"""Temporal RDF graphs.

A :class:`TemporalGraph` is the logical container of a knowledge-base history:
a set of interval-encoded temporal triples over a shared dictionary.  It is
the common ingestion format consumed by the RDF-TX engine and by every
baseline, so all systems index exactly the same data.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Iterator

from .dictionary import Dictionary
from .time import NOW, Period, PeriodSet
from .triple import EncodedTriple, TemporalTriple


class TemporalGraph:
    """An in-memory set of temporal RDF triples with dictionary encoding."""

    def __init__(self) -> None:
        self.dictionary = Dictionary()
        self._triples: list[EncodedTriple] = []

    # ------------------------------------------------------------------ load

    def add(
        self,
        subject: str,
        predicate: str,
        object: str,
        start: int,
        end: int = NOW,
    ) -> EncodedTriple:
        """Add one interval-encoded fact ``(s, p, o)[start, end)``."""
        encoded = EncodedTriple(
            self.dictionary.encode(subject),
            self.dictionary.encode(predicate),
            self.dictionary.encode(object),
            Period(start, end),
        )
        self._triples.append(encoded)
        return encoded

    def add_triple(self, triple: TemporalTriple) -> EncodedTriple:
        """Add a :class:`TemporalTriple`."""
        return self.add(
            triple.subject,
            triple.predicate,
            triple.object,
            triple.period.start,
            triple.period.end,
        )

    def extend(self, triples: Iterable[TemporalTriple]) -> None:
        """Bulk-add temporal triples."""
        for triple in triples:
            self.add_triple(triple)

    # ----------------------------------------------------------------- views

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[EncodedTriple]:
        return iter(self._triples)

    def decode(self, encoded: EncodedTriple) -> TemporalTriple:
        """Decode an encoded triple back to its string form."""
        decode = self.dictionary.decode
        return TemporalTriple(
            decode(encoded.subject),
            decode(encoded.predicate),
            decode(encoded.object),
            encoded.period,
        )

    def triples(self) -> Iterator[TemporalTriple]:
        """Iterate decoded temporal triples."""
        return (self.decode(t) for t in self._triples)

    def history_of(
        self, subject: str, predicate: str | None = None
    ) -> list[TemporalTriple]:
        """All facts about ``subject`` (optionally one predicate), by time."""
        sid = self.dictionary.lookup(subject)
        if sid is None:
            return []
        pid = None
        if predicate is not None:
            pid = self.dictionary.lookup(predicate)
            if pid is None:
                return []
        hits = [
            t
            for t in self._triples
            if t.subject == sid and (pid is None or t.predicate == pid)
        ]
        hits.sort(key=lambda t: (t.predicate, t.period.start))
        return [self.decode(t) for t in hits]

    def validity(
        self, subject: str, predicate: str, object: str
    ) -> PeriodSet:
        """Coalesced validity of a fact (the "when" query of Example 1)."""
        ids = tuple(
            self.dictionary.lookup(term) for term in (subject, predicate, object)
        )
        if any(i is None for i in ids):
            return PeriodSet()
        sid, pid, oid = ids
        return PeriodSet(
            t.period
            for t in self._triples
            if (t.subject, t.predicate, t.object) == (sid, pid, oid)
        )

    def coalesced(self) -> "TemporalGraph":
        """A copy with each fact's periods merged into maximal intervals.

        Transaction-time histories are non-overlapping by construction, but
        *valid-time* histories (Section 2.1: "our implementation remains
        effective for most valid-time histories") may assert overlapping or
        duplicate intervals for the same fact — e.g. annotations merged
        from several sources.  The MVBT requires disjoint intervals per
        key, so valid-time ingestion goes through this normalization.
        """
        from collections import defaultdict

        periods: dict[tuple, list[Period]] = defaultdict(list)
        for triple in self._triples:
            periods[(triple.subject, triple.predicate, triple.object)].append(
                triple.period
            )
        out = TemporalGraph()
        decode = self.dictionary.decode
        for (sid, pid, oid), parts in periods.items():
            subject, predicate, object_ = decode(sid), decode(pid), decode(oid)
            for period in PeriodSet(parts):
                out.add(subject, predicate, object_, period.start, period.end)
        return out

    # ------------------------------------------------------------ statistics

    def predicate_counts(self) -> dict[int, int]:
        """Number of interval triples per predicate id."""
        counts: dict[int, int] = defaultdict(int)
        for t in self._triples:
            counts[t.predicate] += 1
        return dict(counts)

    def distinct_subjects(self) -> int:
        """Number of distinct subject ids."""
        return len({t.subject for t in self._triples})

    def raw_size(self) -> int:
        """Size of the raw data in bytes, counted as the flat N-Triples-like
        representation the paper compares index sizes against: the string
        terms plus two timestamps per fact."""
        import sys

        decode = self.dictionary.decode
        size = 0
        for t in self._triples:
            size += len(decode(t.subject).encode())
            size += len(decode(t.predicate).encode())
            size += len(decode(t.object).encode())
            size += 2 * 8  # start / end timestamps
        return size

    def sorted_by(
        self, key: Callable[[EncodedTriple], tuple]
    ) -> list[EncodedTriple]:
        """Triples sorted by an arbitrary key (used by bulk loaders)."""
        return sorted(self._triples, key=key)
