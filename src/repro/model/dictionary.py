"""Dictionary encoding of RDF terms (Section 4.1.2).

RDF-TX replaces string literals/URIs with integer ids before insertion into
the MVBT indices; this both shrinks the index and avoids slow string
comparisons.  The mapping is kept in memory for updates and for decoding query
results.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class DictionaryError(KeyError):
    """Raised when decoding an unknown id or term."""


class Dictionary:
    """A bidirectional string <-> integer id mapping.

    Ids are dense and start at 1; id 0 is reserved as the minimum of the key
    domain (the paper's ``_`` extremum) so that prefix range queries can use
    ``0`` and ``max_id + 1`` as open bounds.
    """

    #: Reserved id representing the bottom of the term domain.
    MIN_ID = 0

    def __init__(self) -> None:
        self._term_to_id: dict[str, int] = {}
        self._id_to_term: list[str | None] = [None]  # index 0 reserved

    def encode(self, term: str) -> int:
        """Return the id for ``term``, assigning a fresh one if unseen."""
        found = self._term_to_id.get(term)
        if found is not None:
            return found
        new_id = len(self._id_to_term)
        self._term_to_id[term] = new_id
        self._id_to_term.append(term)
        return new_id

    def encode_many(self, terms: Iterable[str]) -> list[int]:
        """Encode an iterable of terms, preserving order."""
        return [self.encode(t) for t in terms]

    def lookup(self, term: str) -> int | None:
        """The id for ``term`` if already assigned, else ``None``."""
        return self._term_to_id.get(term)

    def decode(self, term_id: int) -> str:
        """Return the term for an assigned id."""
        if 1 <= term_id < len(self._id_to_term):
            term = self._id_to_term[term_id]
            if term is not None:
                return term
        raise DictionaryError(f"unknown dictionary id: {term_id}")

    @property
    def max_id(self) -> int:
        """Largest assigned id (0 when empty)."""
        return len(self._id_to_term) - 1

    @property
    def upper_bound(self) -> int:
        """An id strictly greater than every assigned id (the ``∞`` extremum)."""
        return len(self._id_to_term)

    def __len__(self) -> int:
        return len(self._term_to_id)

    def __contains__(self, term: object) -> bool:
        return term in self._term_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._term_to_id)

    def sizeof(self) -> int:
        """Storage-layout footprint in bytes (for Figure 8).

        Counted as a string heap plus one hash slot and one offset entry per
        term — the same layout-byte accounting every index in this repo
        uses, so size ratios stay meaningful (Python object headers would
        drown every structure in constant overhead).
        """
        size = 0
        for term in self._term_to_id:
            size += len(term.encode()) + 24
        return size
