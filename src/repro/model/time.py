"""Temporal domain for RDF-TX.

The paper (Section 3.1) uses a discrete, point-based time domain whose minimum
unit is a *chronon*; throughout the paper the chronon is one DAY.  We represent
chronons as integers counting days since the epoch 1970-01-01.  The special
timestamp ``now`` of transaction-time databases is modelled by the sentinel
:data:`NOW`, which compares greater than every concrete chronon.

At the logical (SPARQLT) level a temporal binding is a *set of chronons*; at
the physical level consecutive chronons are stored as half-open intervals
``[start, end)`` (:class:`Period`).  The user-facing rendering follows the
paper's closed notation ``[ts ... te]``.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

#: Sentinel chronon standing for the ever-moving current instant ("now").
#: It is strictly greater than any concrete day this library will encounter.
NOW: int = 2**31 - 1

#: Smallest chronon of the domain (the paper writes it as 0).
MIN_TIME: int = 0

_EPOCH = _dt.date(1970, 1, 1)


class TimeError(ValueError):
    """Raised for malformed chronons, dates, or periods."""


def date_to_chronon(value: _dt.date | str) -> int:
    """Convert a date (or ISO/US-formatted string) to a chronon.

    Accepts :class:`datetime.date`, ``YYYY-MM-DD``, and the paper's
    ``MM/DD/YYYY`` rendering.  The string ``"now"`` maps to :data:`NOW`.
    """
    if isinstance(value, _dt.date):
        return (value - _EPOCH).days
    text = value.strip()
    if text.lower() == "now":
        return NOW
    for fmt in ("%Y-%m-%d", "%m/%d/%Y"):
        try:
            return (_dt.datetime.strptime(text, fmt).date() - _EPOCH).days
        except ValueError:
            continue
    raise TimeError(f"unrecognized date literal: {value!r}")


def chronon_to_date(chronon: int) -> _dt.date:
    """Convert a concrete chronon back to a calendar date."""
    if chronon == NOW:
        raise TimeError("NOW has no calendar date")
    return _EPOCH + _dt.timedelta(days=chronon)


def format_chronon(chronon: int) -> str:
    """Render a chronon the way the paper prints timestamps."""
    if chronon == NOW:
        return "now"
    return chronon_to_date(chronon).strftime("%m/%d/%Y")


def year_of(chronon: int) -> int:
    """The calendar year containing ``chronon`` (SPARQLT ``YEAR``)."""
    return chronon_to_date(chronon).year


def month_of(chronon: int) -> int:
    """The calendar month (1-12) containing ``chronon`` (SPARQLT ``MONTH``)."""
    return chronon_to_date(chronon).month


def day_of(chronon: int) -> int:
    """The day of month containing ``chronon`` (SPARQLT ``DAY``)."""
    return chronon_to_date(chronon).day


def year_range(year: int) -> "Period":
    """The period covering one calendar year, e.g. for ``YEAR(?t) = 2013``."""
    start = date_to_chronon(_dt.date(year, 1, 1))
    end = date_to_chronon(_dt.date(year + 1, 1, 1))
    return Period(start, end)


def month_range(year: int, month: int) -> "Period":
    """The period covering one calendar month."""
    start = date_to_chronon(_dt.date(year, month, 1))
    if month == 12:
        end = date_to_chronon(_dt.date(year + 1, 1, 1))
    else:
        end = date_to_chronon(_dt.date(year, month + 1, 1))
    return Period(start, end)


@dataclass(frozen=True, order=True)
class Period:
    """A half-open interval ``[start, end)`` of chronons.

    ``end == NOW`` denotes a *live* period (the fact still holds).  A period
    is never empty: construction enforces ``start < end``.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if not (MIN_TIME <= self.start < self.end <= NOW):
            raise TimeError(f"invalid period [{self.start}, {self.end})")

    @classmethod
    def from_closed(cls, first: int, last: int) -> "Period":
        """Build from the paper's closed ``[ts ... te]`` notation.

        A closed period ending at ``now`` stays live (end stays :data:`NOW`);
        otherwise the half-open end is ``last + 1``.
        """
        end = NOW if last == NOW else last + 1
        return cls(first, end)

    @classmethod
    def point(cls, chronon: int) -> "Period":
        """The single-chronon period containing ``chronon``."""
        return cls(chronon, chronon + 1)

    @classmethod
    def always(cls) -> "Period":
        """The whole time domain ``[0, now]``."""
        return cls(MIN_TIME, NOW)

    @property
    def first(self) -> int:
        """First chronon of the period (SPARQLT ``TSTART``)."""
        return self.start

    @property
    def last(self) -> int:
        """Last chronon of the period (SPARQLT ``TEND``); ``NOW`` if live."""
        return NOW if self.is_live else self.end - 1

    @property
    def is_live(self) -> bool:
        """Whether the period extends to the current instant."""
        return self.end == NOW

    def length(self) -> int:
        """Number of chronons covered; live periods count up to ``NOW``."""
        return self.end - self.start

    def contains(self, chronon: int) -> bool:
        """Whether ``chronon`` falls inside the period."""
        return self.start <= chronon < self.end

    def overlaps(self, other: "Period") -> bool:
        """Whether the two periods share at least one chronon."""
        return self.start < other.end and other.start < self.end

    def meets(self, other: "Period") -> bool:
        """Allen's MEETS: this period ends exactly where ``other`` begins."""
        return self.end == other.start

    def intersect(self, other: "Period") -> "Period | None":
        """The common sub-period, or ``None`` when disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return Period(start, end)

    def __contains__(self, chronon: object) -> bool:
        return isinstance(chronon, int) and self.contains(chronon)

    def __str__(self) -> str:
        return f"[{format_chronon(self.first)} ... {format_chronon(self.last)}]"


class PeriodSet:
    """A coalesced, ordered set of disjoint periods.

    This is the value bound to a SPARQLT temporal variable: logically a set of
    chronons, physically kept as maximal disjoint intervals (the paper's
    "compact format").  Instances are immutable.
    """

    __slots__ = ("_periods",)

    def __init__(self, periods: Iterable[Period] = ()) -> None:
        self._periods: tuple[Period, ...] = tuple(_coalesce(periods))

    @classmethod
    def single(cls, period: Period) -> "PeriodSet":
        ps = cls.__new__(cls)
        ps._periods = (period,)
        return ps

    @classmethod
    def from_intervals(cls, bounds: "Iterable[tuple[int, int]]") -> "PeriodSet":
        """Build from raw half-open ``(start, end)`` pairs.

        Fast path for scan results: coalescing happens on plain integers
        and :class:`Period` objects are only constructed for the maximal
        periods.
        """
        ordered = sorted(bounds)
        merged: list[list[int]] = []
        for start, end in ordered:
            if merged and start <= merged[-1][1]:
                if end > merged[-1][1]:
                    merged[-1][1] = end
            else:
                merged.append([start, end])
        ps = cls.__new__(cls)
        ps._periods = tuple(Period(lo, hi) for lo, hi in merged)
        return ps

    @property
    def periods(self) -> tuple[Period, ...]:
        return self._periods

    @property
    def is_empty(self) -> bool:
        return not self._periods

    def first(self) -> int:
        """Earliest chronon (``TSTART`` over the whole set)."""
        if self.is_empty:
            raise TimeError("TSTART of empty period set")
        return self._periods[0].first

    def last(self) -> int:
        """Latest chronon (``TEND`` over the whole set)."""
        if self.is_empty:
            raise TimeError("TEND of empty period set")
        return self._periods[-1].last

    def max_length(self) -> int:
        """SPARQLT ``LENGTH``: duration of the longest maximal period."""
        if self.is_empty:
            return 0
        return max(p.length() for p in self._periods)

    def total_length(self) -> int:
        """SPARQLT ``TOTAL_LENGTH``: summed duration of all periods."""
        return sum(p.length() for p in self._periods)

    def intersect(self, other: "PeriodSet") -> "PeriodSet":
        """Chronon-set intersection (the temporal-join operation)."""
        out: list[Period] = []
        i = j = 0
        a, b = self._periods, other._periods
        while i < len(a) and j < len(b):
            common = a[i].intersect(b[j])
            if common is not None:
                out.append(common)
            if a[i].end <= b[j].end:
                i += 1
            else:
                j += 1
        result = PeriodSet.__new__(PeriodSet)
        result._periods = tuple(out)
        return result

    def restrict(self, window: Period) -> "PeriodSet":
        """Keep only the chronons falling inside ``window``."""
        return self.intersect(PeriodSet.single(window))

    def union(self, other: "PeriodSet") -> "PeriodSet":
        """Chronon-set union, re-coalesced."""
        return PeriodSet(self._periods + other._periods)

    def contains(self, chronon: int) -> bool:
        return any(p.contains(chronon) for p in self._periods)

    def __iter__(self) -> Iterator[Period]:
        return iter(self._periods)

    def __len__(self) -> int:
        return len(self._periods)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PeriodSet) and self._periods == other._periods

    def __hash__(self) -> int:
        return hash(self._periods)

    def __repr__(self) -> str:
        return "PeriodSet(" + ", ".join(str(p) for p in self._periods) + ")"


def _coalesce(periods: Iterable[Period]) -> Sequence[Period]:
    """Merge overlapping/adjacent periods into maximal disjoint ones."""
    ordered = sorted(periods, key=lambda p: (p.start, p.end))
    merged: list[Period] = []
    for period in ordered:
        if merged and period.start <= merged[-1].end:
            if period.end > merged[-1].end:
                merged[-1] = Period(merged[-1].start, period.end)
        else:
            merged.append(period)
    return merged
