"""Synthetic Wikipedia Infobox edit history (paper Section 7.1.1, Table 1).

The paper's Wikipedia benchmark has 38M temporal triples over 1.8M subjects
and ~3500 frequent predicates, with per-property update frequencies as in
Table 1 (e.g. a city's population value is updated ~7.16 times on average).
This generator reproduces those *distributional* properties at any scale:

* subjects belong to categories (Software / Player / Country / City / ...),
  each with a characteristic property set — this is exactly what makes
  characteristic sets effective;
* each volatile property is a chain of consecutive interval values whose
  length is geometrically distributed around the category's Table 1 mean;
* timestamps are transaction times spread over 2004-2015, giving the large
  number of distinct timestamps the paper calls out for Wikipedia.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..model.graph import TemporalGraph
from ..model.time import NOW, date_to_chronon

#: Transaction-time span of the synthetic edit history.
HISTORY_START = date_to_chronon("2004-01-01")
HISTORY_END = date_to_chronon("2015-12-31")


@dataclass(frozen=True)
class PropertySpec:
    """One infobox property: its name and mean number of updates."""

    name: str
    mean_updates: float
    value_pool: int = 0  # 0 = numeric values, else categorical pool size


@dataclass(frozen=True)
class CategorySpec:
    """An infobox category with its property set (a characteristic set)."""

    name: str
    weight: float
    properties: tuple[PropertySpec, ...]


#: Table 1 categories plus stable properties; means match the paper.
CATEGORIES: tuple[CategorySpec, ...] = (
    CategorySpec(
        "Software",
        0.2,
        (
            PropertySpec("release", 7.27),
            PropertySpec("developer", 1.3, value_pool=400),
            PropertySpec("license", 1.1, value_pool=20),
            PropertySpec("platform", 1.8, value_pool=30),
        ),
    ),
    CategorySpec(
        "Player",
        0.35,
        (
            PropertySpec("club", 5.85, value_pool=600),
            PropertySpec("position", 1.4, value_pool=15),
            PropertySpec("caps", 4.0),
            PropertySpec("goals", 4.5),
        ),
    ),
    CategorySpec(
        "Country",
        0.1,
        (
            PropertySpec("gdp", 11.78),
            PropertySpec("population", 8.5),
            PropertySpec("leader", 2.4, value_pool=800),
            PropertySpec("currency", 1.05, value_pool=40),
        ),
    ),
    CategorySpec(
        "City",
        0.35,
        (
            PropertySpec("population", 7.16),
            PropertySpec("mayor", 2.8, value_pool=900),
            PropertySpec("area", 1.6),
            PropertySpec("country", 1.1, value_pool=50),
        ),
    ),
)


@dataclass
class WikipediaDataset:
    """A generated history plus the metadata benchmarks need."""

    graph: TemporalGraph
    #: subject name -> category name
    category_of: dict[str, str] = field(default_factory=dict)
    #: (category, property) -> [number of versions per subject]
    version_counts: dict[tuple[str, str], list[int]] = field(
        default_factory=dict
    )


def generate(
    n_triples: int,
    seed: int = 0,
    extra_predicates: int = 0,
) -> WikipediaDataset:
    """Generate approximately ``n_triples`` temporal triples.

    ``extra_predicates`` appends rarely-used predicates to random subjects,
    mimicking the long predicate tail of the real dataset.
    """
    rng = random.Random(seed)
    dataset = WikipediaDataset(graph=TemporalGraph())
    weights = [c.weight for c in CATEGORIES]
    produced = 0
    serial = 0
    while produced < n_triples:
        category = rng.choices(CATEGORIES, weights=weights)[0]
        subject = f"{category.name}_{serial}"
        serial += 1
        dataset.category_of[subject] = category.name
        produced += _emit_subject(rng, dataset, subject, category)
        if extra_predicates and rng.random() < 0.05:
            predicate = f"rare_{rng.randrange(extra_predicates)}"
            start = rng.randint(HISTORY_START, HISTORY_END - 1)
            dataset.graph.add(subject, predicate, f"misc_{rng.randrange(50)}",
                              start, NOW)
            produced += 1
    return dataset


def _emit_subject(
    rng: random.Random,
    dataset: WikipediaDataset,
    subject: str,
    category: CategorySpec,
) -> int:
    """Emit the full edit history of one subject; returns # triples."""
    created = rng.randint(HISTORY_START, HISTORY_END - 400)
    produced = 0
    for prop in category.properties:
        versions = _geometric(rng, prop.mean_updates)
        counts = dataset.version_counts.setdefault(
            (category.name, prop.name), []
        )
        counts.append(versions)
        time = created + rng.randint(0, 60)
        span = max((HISTORY_END - time) // max(versions, 1), 2)
        for version in range(versions):
            if time >= HISTORY_END:
                break
            value = _value(rng, subject, prop, version)
            start = time
            if version == versions - 1 and rng.random() < 0.8:
                end = NOW  # current value still live
            else:
                end = min(start + rng.randint(1, span * 2 - 1), HISTORY_END)
            dataset.graph.add(subject, prop.name, value, start, end)
            produced += 1
            if end == NOW:
                break
            time = end  # consecutive transaction-time versions
    return produced


def _geometric(rng: random.Random, mean: float) -> int:
    """A geometric variate with the given mean, at least 1."""
    if mean <= 1:
        return 1
    p = 1.0 / mean
    count = 1
    while rng.random() > p and count < int(mean * 6):
        count += 1
    return count


def _value(
    rng: random.Random, subject: str, prop: PropertySpec, version: int
) -> str:
    if prop.value_pool:
        return f"{prop.name}_val_{rng.randrange(prop.value_pool)}"
    # Numeric property: monotone-ish drifting value, unique enough.
    base = abs(hash(subject + prop.name)) % 1_000_000
    return str(base + version * rng.randint(1, 500))


def table1_statistics(dataset: WikipediaDataset) -> dict[tuple[str, str], float]:
    """Average number of updates per (category, property) — Table 1.

    The paper counts *updates per value*, i.e. the number of versions each
    property went through.
    """
    return {
        key: sum(counts) / len(counts)
        for key, counts in sorted(dataset.version_counts.items())
        if counts
    }
