"""Synthetic dataset and query-workload generators (paper Section 7.1)."""

from . import govtrack, queries, wikipedia, yago
from .govtrack import GovTrackDataset
from .queries import complex_queries, join_queries, selection_queries
from .wikipedia import WikipediaDataset, table1_statistics
from .yago import YagoDataset

__all__ = [
    "GovTrackDataset",
    "WikipediaDataset",
    "YagoDataset",
    "complex_queries",
    "govtrack",
    "join_queries",
    "queries",
    "selection_queries",
    "table1_statistics",
    "wikipedia",
    "yago",
]
