"""Synthetic Yago2-style temporal knowledge base (paper Section 7.1.1).

Yago2 annotates facts extracted from Wikipedia/WordNet/GeoNames with time.
Compared to the Wikipedia edit history, a Yago2-like dataset has more
predicates, fewer updates per fact (valid-time annotations rather than edit
churn), and many eternal facts.  The paper reports its results on Yago2 are
"very similar to Wikipedia and GovTrack"; the generator exists so the full
benchmark matrix can be reproduced.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..model.graph import TemporalGraph
from ..model.time import NOW, date_to_chronon

# The chronon domain starts at 1970-01-01 (day 0), so the synthetic
# valid-time annotations start there too.
EPOCH = date_to_chronon("1970-01-01")
END = date_to_chronon("2015-12-31")

ENTITY_KINDS = {
    "person": (
        "bornIn", "livesIn", "worksAt", "hasWonPrize", "isMarriedTo",
        "graduatedFrom", "holdsPosition",
    ),
    "organization": (
        "locatedIn", "hasEmployee", "owns", "hasRevenue", "foundedBy",
    ),
    "place": (
        "hasPopulation", "hasMayor", "belongsTo", "hasArea",
    ),
}


@dataclass
class YagoDataset:
    graph: TemporalGraph


def generate(n_triples: int, seed: int = 0) -> YagoDataset:
    """Generate approximately ``n_triples`` Yago2-like temporal facts."""
    rng = random.Random(seed)
    dataset = YagoDataset(graph=TemporalGraph())
    kinds = list(ENTITY_KINDS)
    produced = 0
    serial = 0
    while produced < n_triples:
        kind = rng.choice(kinds)
        subject = f"{kind}_{serial}"
        serial += 1
        for predicate in ENTITY_KINDS[kind]:
            if rng.random() < 0.35:
                continue  # sparse facts
            versions = 1 if rng.random() < 0.7 else rng.randint(2, 4)
            time = rng.randint(EPOCH, END - 800)
            for version in range(versions):
                if time >= END:
                    break
                value = f"{predicate}_e{rng.randrange(3000)}"
                if version == versions - 1 and rng.random() < 0.6:
                    end = NOW
                else:
                    end = min(time + rng.randint(200, 4000), END)
                dataset.graph.add(subject, predicate, value, time, end)
                produced += 1
                if end == NOW:
                    break
                time = end
    return dataset
