"""SPARQLT query workload generators (paper Section 7.3).

Three query sets per dataset, mirroring the paper's experiment design:

* **selection** — single-pattern temporal selections (Examples 1-3 shapes);
* **join** — two-pattern temporal joins (Example 4 shape);
* **complex** — 25 queries built from 5 seed queries of 3 patterns each,
  incrementally extended one pattern at a time up to 7 patterns.

Queries are anchored to facts actually present in the graph so result sets
are non-trivial, and are returned as SPARQLT text.
"""

from __future__ import annotations

import random
from collections import defaultdict

from ..model.graph import TemporalGraph
from ..model.time import NOW, chronon_to_date, year_of


def _subject_predicates(graph: TemporalGraph) -> dict[int, list[int]]:
    """Subject id -> distinct predicate ids (in first-seen order)."""
    out: dict[int, list[int]] = defaultdict(list)
    for triple in graph:
        preds = out[triple.subject]
        if triple.predicate not in preds:
            preds.append(triple.predicate)
    return out


def _sample_year(graph: TemporalGraph, rng: random.Random) -> int:
    triple = rng.choice(list(graph)[: min(len(graph), 5000)])
    return year_of(triple.period.start)


def _date_str(chronon: int) -> str:
    return chronon_to_date(chronon).strftime("%Y-%m-%d")


def selection_queries(
    graph: TemporalGraph, count: int = 10, seed: int = 1
) -> list[str]:
    """Single-pattern temporal selection queries."""
    rng = random.Random(seed)
    triples = list(graph)
    decode = graph.dictionary.decode
    queries: list[str] = []
    shapes = ["when", "year", "before", "snapshot", "predicate"]
    while len(queries) < count:
        triple = rng.choice(triples)
        s = decode(triple.subject)
        p = decode(triple.predicate)
        o = decode(triple.object)
        year = year_of(triple.period.start)
        shape = shapes[len(queries) % len(shapes)]
        if shape == "when":
            queries.append(f"SELECT ?t {{{s} {p} {o} ?t}}")
        elif shape == "year":
            queries.append(
                f"SELECT ?o {{{s} {p} ?o ?t . FILTER(YEAR(?t) = {year})}}"
            )
        elif shape == "before":
            cutoff = _date_str(triple.period.start + 200)
            queries.append(
                f"SELECT ?o ?t {{{s} {p} ?o ?t . FILTER(?t <= {cutoff})}}"
            )
        elif shape == "snapshot":
            when = _date_str(triple.period.start)
            queries.append(f"SELECT ?o {{{s} {p} ?o {when}}}")
        else:  # predicate-bound pattern (P / PT)
            queries.append(
                f"SELECT ?s ?o {{?s {p} ?o ?t . FILTER(YEAR(?t) = {year})}}"
            )
    return queries


def join_queries(
    graph: TemporalGraph, count: int = 10, seed: int = 2
) -> list[str]:
    """Two-pattern temporal join queries (Example 4 shape)."""
    rng = random.Random(seed)
    decode = graph.dictionary.decode
    by_subject = _subject_predicates(graph)
    rich = [s for s, preds in by_subject.items() if len(preds) >= 2]
    queries: list[str] = []
    anchored = True
    while len(queries) < count and rich:
        subject = rng.choice(rich)
        p1, p2 = rng.sample(by_subject[subject], 2)
        p1n, p2n = decode(p1), decode(p2)
        if anchored:
            # Anchor one pattern on a constant object, as in Example 4.
            anchor = next(
                t for t in graph
                if t.subject == subject and t.predicate == p1
            )
            obj = decode(anchor.object)
            queries.append(
                f"SELECT ?s ?v ?t {{?s {p2n} ?v ?t . ?s {p1n} {obj} ?t}}"
            )
        else:
            year = _sample_year(graph, rng)
            queries.append(
                f"SELECT ?s ?v1 ?v2 {{?s {p1n} ?v1 ?t . ?s {p2n} ?v2 ?t . "
                f"FILTER(YEAR(?t) = {year})}}"
            )
        anchored = not anchored
    return queries


def complex_queries(
    graph: TemporalGraph,
    seeds: int = 5,
    max_patterns: int = 7,
    seed: int = 3,
) -> dict[int, list[str]]:
    """The paper's complex-query construction.

    Returns ``{pattern_count: [queries]}`` for pattern counts 3..max:
    ``seeds`` queries of 3 patterns are generated, then each is extended one
    pattern at a time (Section 7.3).
    """
    rng = random.Random(seed)
    decode = graph.dictionary.decode
    by_subject = _subject_predicates(graph)
    rich = [
        s for s, preds in by_subject.items() if len(preds) >= max_patterns
    ]
    if not rich:
        # Fall back to the richest subjects available.
        rich = sorted(
            by_subject, key=lambda s: len(by_subject[s]), reverse=True
        )[: seeds * 2]
    out: dict[int, list[str]] = {n: [] for n in range(3, max_patterns + 1)}
    for index in range(seeds):
        subject = rich[index % len(rich)]
        predicates = by_subject[subject][:max_patterns]
        if len(predicates) < max_patterns:
            predicates = (
                predicates * ((max_patterns // len(predicates)) + 1)
            )[:max_patterns]
        anchor = next(t for t in graph if t.subject == subject)
        year = year_of(anchor.period.start)
        for n in range(3, max_patterns + 1):
            patterns = " . ".join(
                f"?s {decode(p)} ?v{i} ?t"
                for i, p in enumerate(predicates[:n])
            )
            select = " ".join(f"?v{i}" for i in range(n))
            out[n].append(
                f"SELECT ?s {select} {{{patterns} . "
                f"FILTER(YEAR(?t) = {year})}}"
            )
    return out
