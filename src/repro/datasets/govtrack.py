"""Synthetic GovTrack history (paper Section 7.1.1).

The real GovTrack dataset has 20M historical records over 0.4M subjects and
only ~60 event predicates, with a *small* number of distinct time periods
(~10k) because events cluster on legislative session dates.  Those two
properties drive the paper's GovTrack observations: patterns like P/PT
return far more results than on Wikipedia, and the coarse time domain favors
systems with few distinct named graphs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..model.graph import TemporalGraph
from ..model.time import NOW, date_to_chronon

SESSION_START = date_to_chronon("1990-01-03")

#: The ~60 GovTrack event/relation predicates, grouped by entity kind.
CONGRESSMAN_PREDICATES = tuple(
    f"cm_{name}" for name in (
        "represents", "party", "committee", "sponsor", "cosponsor",
        "vote_yes", "vote_no", "vote_abstain", "term", "office",
        "chamber", "leadership", "caucus", "endorsement", "rating",
    )
)
BILL_PREDICATES = tuple(
    f"bill_{name}" for name in (
        "introduced", "status", "committee_referral", "amendment",
        "vote_result", "cbo_score", "related_to", "subject",
        "cosponsor_count", "title",
    )
)
COMMITTEE_PREDICATES = tuple(
    f"comm_{name}" for name in (
        "chair", "member", "jurisdiction", "subcommittee", "hearing",
    )
)


@dataclass
class GovTrackDataset:
    graph: TemporalGraph
    #: number of distinct chronons used (small by construction)
    session_dates: list[int] = field(default_factory=list)


def generate(n_triples: int, seed: int = 0,
             n_periods: int = 400) -> GovTrackDataset:
    """Generate approximately ``n_triples`` records over a coarse time grid.

    ``n_periods`` bounds the number of distinct timestamps (the paper notes
    ~10000 at full scale; scale it with the dataset).
    """
    rng = random.Random(seed)
    dataset = GovTrackDataset(graph=TemporalGraph())
    # Legislative session dates: multiples of weeks from the epoch.
    dates = sorted(
        rng.sample(
            range(SESSION_START, SESSION_START + 26 * 365, 7),
            min(n_periods, 26 * 52),
        )
    )
    dataset.session_dates = dates
    produced = 0
    serial = 0
    # ~50 records per subject at full scale (20M / 0.4M).  Subjects of one
    # kind share a handful of predicate-set *variants*: real entities of
    # the same kind use nearly identical predicate sets, which is exactly
    # why characteristic sets summarize well (Section 6.1).  Random
    # per-subject subsets would explode the number of characteristic sets.
    while produced < n_triples:
        kind = rng.random()
        if kind < 0.5:
            template = CONGRESSMAN_PREDICATES
            subject = f"congressman_{serial}"
            records = rng.randint(20, 80)
        elif kind < 0.9:
            template = BILL_PREDICATES
            subject = f"bill_{serial}"
            records = rng.randint(5, 40)
        else:
            template = COMMITTEE_PREDICATES
            subject = f"committee_{serial}"
            records = rng.randint(30, 120)
        variant = rng.randrange(4)
        # Variant k drops the k-th predicate (variant 0 keeps them all).
        predicates = tuple(
            p for i, p in enumerate(template) if variant == 0 or i != variant
        )
        serial += 1
        produced += _emit_subject(rng, dataset, subject, predicates, records, dates)
    return dataset


def _emit_subject(rng, dataset, subject, predicates, records, dates) -> int:
    produced = 0
    live: dict[tuple[str, str], int] = {}
    records = max(records, len(predicates))
    for index in range(records):
        # Cover every predicate of the variant once (so subjects of one
        # variant share a characteristic set), then draw randomly.
        if index < len(predicates):
            predicate = predicates[index]
        else:
            predicate = rng.choice(predicates)
        value = f"{predicate}_v{rng.randrange(200)}"
        start_idx = rng.randrange(len(dates) - 1)
        start = dates[start_idx]
        if rng.random() < 0.15:
            end = NOW
        else:
            end_idx = min(
                start_idx + rng.randint(1, 26), len(dates) - 1
            )
            end = dates[end_idx]
        key = (predicate, value)
        if key in live and live[key] > start:
            continue  # avoid overlapping duplicates of the same fact
        live[key] = end if end != NOW else 2**40
        dataset.graph.add(subject, predicate, value, start, end)
        produced += 1
    return produced
