"""Compressed MVSBT (Sections 6.2.2 - 6.3, Figures 6 and 7).

The CMVSBT estimates dominance sums (points with key <= k and time <= t)
with *sum-over-left* query semantics, exactly as Section 6.3 describes: a
query walks root to leaf and, in every node, accumulates the approximate
value of **all** entries whose time band contains ``t`` and whose key range
starts at or below ``k``; the entry containing the query point routes the
descent (and is the only one counted partially, by the coverage ratio).

This is what makes the structure *compressed*: a point's mass lives in
exactly one leaf entry per time band (where it was inserted) plus one index
entry per level (the child it descended through), so an insertion buffers
O(height) updates — there is no per-point fan-out to the right.

Entry state:

* **Leaf entry** ``<ks, ke, ts, te, km, tm, v, c>`` (the paper's layout):
  ``v`` is the *settled* mass — points of this key range whose times precede
  the band (every in-band query dominates them in time), spread over
  ``[ks, kb]``; ``c`` counts the *current* points, bounded by the corner
  ``(km, tm)``.  When ``c`` reaches ``cm``, the entry splits at the corner
  (Figure 6 / Figure 7) and the mass settles into the new band's entries.
* **Index entry** ``<ks, ke, ts, te, list, ptr, c>``: ``c`` is the settled
  subtree mass; ``list`` buffers the last inserted points exactly and is
  flushed into a vertical split when ``lm`` accumulate.  The closed lower
  band folds its list into a uniform in-band estimate (``cr``) instead of
  keeping it forever — with ``lm = 1`` the fold is exact because the single
  flushed point sits at the band edge.

With ``cm = lm = 1`` every split happens at a real point and estimates are
exact, the equivalence with the MVSBT that the paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .tree import INF


@dataclass
class CLeafEntry:
    """CMVSBT leaf entry; see module docstring for field semantics."""

    ks: float
    ke: float
    ts: float
    te: float
    km: float
    tm: float
    v: float = 0.0
    c: float = 0.0
    #: upper key bound of the settled mass ``v`` (for the containing-entry
    #: coverage ratio).
    kb: float = 0.0

    def covers(self, k: float, t: float) -> bool:
        return self.ks <= k < self.ke and self.ts <= t < self.te


@dataclass
class CIndexEntry:
    """CMVSBT index entry; see module docstring for field semantics."""

    ks: float
    ke: float
    ts: float
    te: float
    points: list[tuple[int, int, float]] = field(default_factory=list)
    child: "_CNode | None" = None
    c: float = 0.0
    #: mass folded out of a flushed list, uniform over this (closed) band.
    cr: float = 0.0

    def covers(self, k: float, t: float) -> bool:
        return self.ks <= k < self.ke and self.ts <= t < self.te


@dataclass
class _CNode:
    is_leaf: bool
    entries: list = field(default_factory=list)


class CMVSBT:
    """The compressed temporal aggregate index used as a histogram bucket
    structure.

    ``cm`` and ``lm`` are the leaf/index point thresholds; raising them
    coarsens the histogram (the engine raises them when the histogram
    exceeds its space budget, Section 6.2.2).
    """

    def __init__(self, cm: int = 8, lm: int = 8, node_capacity: int = 32) -> None:
        if cm < 1 or lm < 1:
            raise ValueError("cm and lm must be at least 1")
        self.cm = cm
        self.lm = lm
        self._capacity = node_capacity
        self._root = _CNode(is_leaf=True)
        self._root.entries.append(CLeafEntry(0, INF, 0, INF, km=0, tm=0))
        self._last_time = 0
        self._count = 0

    @property
    def point_count(self) -> int:
        return self._count

    # --------------------------------------------------------------- insert

    def insert(self, key: int, time: int, weight: float = 1.0) -> None:
        """Insert a point (nondecreasing time order)."""
        if time < self._last_time:
            raise ValueError(
                f"point at {time} after watermark {self._last_time}"
            )
        self._last_time = time
        self._count += 1
        node = self._root
        path = []
        while True:
            path.append(node)
            child = self._insert_into_node(node, key, time, weight)
            if child is None:
                break
            node = child
        for depth in range(len(path) - 1, -1, -1):
            if len(path[depth].entries) <= self._capacity:
                continue
            parent = path[depth - 1] if depth > 0 else None
            self._split_node(path[depth], parent)

    def _insert_into_node(
        self, node: _CNode, key: int, time: int, weight: float
    ) -> "_CNode | None":
        """Record the point in the containing entry; return the child to
        descend into (None at a leaf)."""
        for entry in node.entries:
            if entry.covers(key, time):
                if node.is_leaf:
                    fresh = self._leaf_entry_insert(entry, key, time, weight)
                    node.entries.extend(fresh)
                    return None
                child = entry.child
                self._index_entry_insert(node, entry, key, time, weight)
                return child
        return None

    def _leaf_entry_insert(
        self, entry: CLeafEntry, key: int, time: int, weight: float
    ) -> list[CLeafEntry]:
        """Figure 6, leafEntrySplit."""
        entry.c += weight
        if key > entry.km:
            entry.km = key
        entry.tm = max(entry.tm, time)
        if entry.c < self.cm:
            return []
        mass = entry.c
        rest = max(mass - weight, 0.0)
        fresh: list[CLeafEntry] = []
        tm_inner = entry.ts < entry.tm < entry.te
        km_inner = entry.ks < entry.km < entry.ke
        if tm_inner:
            settled = entry.v + mass  # everything precedes the new band
            if km_inner:
                # Three-way split around the corner (Figures 5 and 7): the
                # corner point settles exactly at km; the residual and the
                # previously settled mass split by the uniformity ratio.
                left_share = (
                    entry.v * self._kb_ratio(entry, entry.km) + rest / 2
                )
                fresh.append(
                    CLeafEntry(entry.ks, entry.km, entry.tm, entry.te,
                               km=entry.ks, tm=entry.tm,
                               v=left_share, kb=entry.km)
                )
                fresh.append(
                    CLeafEntry(entry.km, entry.ke, entry.tm, entry.te,
                               km=entry.km, tm=entry.tm,
                               v=settled - left_share, kb=entry.km)
                )
            else:
                fresh.append(
                    CLeafEntry(entry.ks, entry.ke, entry.tm, entry.te,
                               km=entry.ks, tm=entry.tm,
                               v=settled,
                               kb=max(entry.kb, min(entry.km, entry.ke)))
                )
            entry.te = entry.tm
            entry.c = rest
            return fresh
        # tm on the band border: split by key only (all current points share
        # one chronon).
        if km_inner:
            right_share = (
                entry.v * (1 - self._kb_ratio(entry, entry.km))
                + rest / 2
                + weight
            )
            fresh.append(
                CLeafEntry(entry.km, entry.ke, entry.ts, entry.te,
                           km=entry.km, tm=entry.ts,
                           v=right_share, kb=entry.km)
            )
            entry.v = entry.v + mass - right_share
            entry.kb = min(entry.kb, entry.km)
            entry.ke = entry.km
            entry.c = 0.0
            entry.km = entry.ks
            entry.tm = entry.ts
        else:
            # Degenerate: fold everything into the settled mass.
            entry.v += mass
            entry.kb = max(entry.kb, min(entry.km, entry.ke))
            entry.c = 0.0
            entry.km = entry.ks
            entry.tm = entry.ts
        return fresh

    @staticmethod
    def _kb_ratio(entry: CLeafEntry, key: float) -> float:
        """Fraction of the settled mass with keys at or below ``key``."""
        bound = entry.kb
        if bound <= entry.ks or key >= bound:
            return 1.0
        if key <= entry.ks:
            return 0.0
        return (key - entry.ks) / (bound - entry.ks)

    def _index_entry_insert(
        self, node: _CNode, entry: CIndexEntry, key: int, time: int,
        weight: float
    ) -> None:
        """Buffer the point on the routing entry (Figure 6, indexEntrySplit).

        The buffered list keeps entirely-left queries exact between
        flushes; when ``lm`` points accumulate, all summaries for this
        child are rebuilt from the child's *band profile* (the step
        function of its visible mass over time), which is how the index
        level stays both compressed and time-resolved.
        """
        entry.points.append((key, time, weight))
        if len(entry.points) >= self.lm:
            self._refresh_child_summaries(node, entry.child)

    @property
    def max_segments(self) -> int:
        """Band-profile segments per child summary, sized so one split's
        summaries (two children) cannot immediately overflow the parent."""
        return max(3, min(8, self._capacity // 8))

    def _refresh_child_summaries(self, node: _CNode, child: "_CNode") -> None:
        """Replace every summary entry for ``child`` with fresh profile
        segments (buffered lists reset)."""
        kept = []
        key_low = None
        key_high = None
        for entry in node.entries:
            if isinstance(entry, CIndexEntry) and entry.child is child:
                key_low = entry.ks if key_low is None else min(key_low, entry.ks)
                key_high = entry.ke if key_high is None else max(key_high, entry.ke)
            else:
                kept.append(entry)
        node.entries = kept
        node.entries.extend(
            self._profile_entries(child, key_low, key_high)
        )

    def _profile_entries(
        self, child: "_CNode", key_low: float, key_high: float
    ) -> list[CIndexEntry]:
        """Summary entries encoding the child's visible-mass profile.

        The visible mass at query time ``t`` is the sum over the child's
        band-matching entries of their full value; it is a piecewise-linear
        function of ``t`` (settled steps plus uniform ramps), encoded as
        one index entry per segment: ``c`` is the value at the segment
        start and ``cr`` the growth across it.
        """
        segments = self._band_profile(child)
        if len(segments) > self.max_segments:
            segments = self._quantize(segments)
        return [
            CIndexEntry(key_low, key_high, ts, te, points=[], child=child,
                        c=base, cr=growth)
            for ts, te, base, growth in segments
        ]

    @staticmethod
    def _band_profile(child: "_CNode") -> list[tuple]:
        """(ts, te, base, growth) segments of the child's visible mass."""
        cuts = {0.0, INF}
        for entry in child.entries:
            cuts.add(entry.ts)
            cuts.add(entry.te)
            if isinstance(entry, CLeafEntry):
                if entry.c and entry.ts < entry.tm < entry.te:
                    cuts.add(entry.tm)
            else:
                for _, t0, _ in entry.points:
                    cuts.add(float(t0))
        ordered = sorted(cuts)
        segments = []
        for lo, hi in zip(ordered, ordered[1:]):
            base = 0.0
            growth = 0.0
            for entry in child.entries:
                if entry.ts > lo or entry.te <= lo:
                    continue
                if isinstance(entry, CLeafEntry):
                    base += entry.v
                    if entry.c:
                        # Current points ramp up between ts and tm.
                        if entry.tm <= lo:
                            base += entry.c
                        elif entry.tm >= hi:
                            span = entry.tm - entry.ts
                            if span > 0:
                                base += entry.c * (lo - entry.ts) / span
                                growth += entry.c * (hi - lo) / span if hi != INF else 0.0
                        else:
                            span = entry.tm - entry.ts
                            if span > 0:
                                base += entry.c * (lo - entry.ts) / span
                            growth += entry.c  # finishes ramping inside
                else:
                    base += entry.c
                    if entry.cr and entry.te not in (INF,) and entry.te > entry.ts:
                        frac_lo = (lo - entry.ts) / (entry.te - entry.ts)
                        base += entry.cr * frac_lo
                        if hi != INF:
                            frac_hi = (hi - entry.ts) / (entry.te - entry.ts)
                            growth += entry.cr * (frac_hi - frac_lo)
                    for _, t0, w in entry.points:
                        if t0 <= lo:
                            base += w
            segments.append((lo, hi, base, growth))
        return segments

    def _quantize(self, segments: list[tuple]) -> list[tuple]:
        """Merge adjacent segments down to :attr:`max_segments`.

        A segment ``(lo, hi, base, growth)`` has value ``base`` at its start
        ramping to ``base + growth`` at its end.  Merging keeps the start
        value of the first and the end value of the second; the pair with
        the smallest introduced discontinuity is merged first, and the
        live (unbounded) tail segment is only merged when it is flat
        against its neighbour.
        """
        merged = list(segments)
        target = self.max_segments
        while len(merged) > target:
            best = None
            for i in range(len(merged) - 1):
                a, b = merged[i], merged[i + 1]
                if b[1] == INF and abs(b[2] - (a[2] + a[3])) > 1e-9:
                    continue  # keep the live tail faithful
                deviation = abs(b[2] - (a[2] + a[3]))
                if best is None or deviation < best[1]:
                    best = (i, deviation)
            if best is None:
                break
            i = best[0]
            a, b = merged[i], merged[i + 1]
            end_value = b[2] + b[3]
            merged[i : i + 2] = [
                (a[0], b[1], a[2], max(end_value - a[2], 0.0))
            ]
        return merged

    # ------------------------------------------------------------ structure

    def _split_node(self, node: _CNode, parent: "_CNode | None") -> None:
        boundary = self._split_boundary(node)
        if boundary is None:
            return
        left = _CNode(is_leaf=node.is_leaf)
        right = _CNode(is_leaf=node.is_leaf)
        for entry in node.entries:
            if entry.ke <= boundary:
                left.entries.append(entry)
            elif entry.ks >= boundary:
                right.entries.append(entry)
            else:
                if node.is_leaf:
                    right.entries.append(self._cut_entry(entry, boundary))
                    left.entries.append(entry)
                else:
                    # Index summaries straddle only when their child does;
                    # drop and re-profile below.
                    continue
        key_low = min(e.ks for e in node.entries)
        key_high = max(e.ke for e in node.entries)
        left_summaries = self._profile_entries(left, key_low, boundary)
        right_summaries = self._profile_entries(right, boundary, key_high)
        if parent is None:
            new_root = _CNode(is_leaf=False)
            new_root.entries = left_summaries + right_summaries
            self._root = new_root
            return
        parent.entries = [
            entry
            for entry in parent.entries
            if not (isinstance(entry, CIndexEntry) and entry.child is node)
        ]
        parent.entries.extend(left_summaries + right_summaries)

    @staticmethod
    def _cut_entry(entry: CLeafEntry, boundary: float) -> CLeafEntry:
        """Cut a straddling leaf rectangle at ``boundary``; masses split by
        the uniformity assumption along the key axis."""

        def fraction(bound: float) -> float:
            if bound <= entry.ks:
                return 1.0
            if boundary >= bound:
                return 1.0
            return (boundary - entry.ks) / (bound - entry.ks)

        frac_v = fraction(entry.kb)
        frac_c = fraction(entry.km)
        tail = CLeafEntry(
            boundary, entry.ke, entry.ts, entry.te,
            km=max(entry.km, boundary), tm=entry.tm,
            v=entry.v * (1 - frac_v), c=entry.c * (1 - frac_c),
            kb=max(entry.kb, boundary),
        )
        entry.ke = boundary
        entry.km = min(entry.km, boundary)
        entry.kb = min(entry.kb, boundary)
        entry.v = entry.v * frac_v
        entry.c = entry.c * frac_c
        return tail

    def _split_boundary(self, node: _CNode) -> float | None:
        if node.is_leaf:
            boundaries = sorted(
                {e.ks for e in node.entries} | {e.ke for e in node.entries}
            )
        else:
            boundaries = sorted({e.ks for e in node.entries})
        inner = [b for b in boundaries[1:-1] if b != INF]
        if not inner:
            return None
        return inner[len(inner) // 2]

    # ------------------------------------------------------------- estimate

    def estimate(self, key: int, time: int) -> float:
        """Approximate dominance sum at ``(key, time)`` — Section 6.3's
        sum-over-left walk."""
        if key < 0 or time < 0:
            return 0.0
        total = 0.0
        node = self._root
        while node is not None:
            descend = None
            for entry in node.entries:
                if entry.ts > time or entry.te <= time or entry.ks > key:
                    continue
                if node.is_leaf:
                    total += self._leaf_value(entry, key, time)
                elif entry.ke <= key:
                    # Entirely left: the whole subtree band counts.
                    total += self._index_value(entry, key, time)
                else:
                    # Containing entry: its mass is collected during the
                    # descent (the summary only serves entirely-left
                    # queries), so add nothing here.
                    descend = entry.child
            if node.is_leaf:
                return total
            node = descend
        return total

    def _leaf_value(self, entry: CLeafEntry, key: int, time: int) -> float:
        settled = entry.v
        if key < entry.kb:
            settled *= self._kb_ratio(entry, key)
        current = entry.c
        if current:
            if key < entry.km and entry.km > entry.ks:
                current *= (key - entry.ks) / (entry.km - entry.ks)
            elif key < entry.km:
                current = 0.0
            if time < entry.tm and entry.tm > entry.ts:
                current *= (time - entry.ts) / (entry.tm - entry.ts)
        return settled + current

    @staticmethod
    def _index_value(entry: CIndexEntry, key: int, time: int) -> float:
        total = entry.c
        if entry.cr and entry.te != INF and entry.te > entry.ts:
            total += entry.cr * (time - entry.ts) / (entry.te - entry.ts)
        total += sum(
            w for k0, t0, w in entry.points if k0 <= key and t0 <= time
        )
        return total

    # ----------------------------------------------------------------- size

    def iter_nodes(self) -> Iterator[_CNode]:
        stack = [self._root]
        seen = {id(self._root)}
        while stack:
            node = stack.pop()
            yield node
            if node.is_leaf:
                continue
            for entry in node.entries:
                if (
                    isinstance(entry, CIndexEntry)
                    and entry.child is not None
                    and id(entry.child) not in seen
                ):
                    seen.add(id(entry.child))
                    stack.append(entry.child)

    def entry_count(self) -> int:
        return sum(len(node.entries) for node in self.iter_nodes())

    def sizeof(self) -> int:
        """Storage-layout bytes: fixed fields per entry plus the transient
        index lists (bounded by ``lm`` each)."""
        total = 0
        for node in self.iter_nodes():
            for entry in node.entries:
                if isinstance(entry, CLeafEntry):
                    total += 9 * 8
                else:
                    total += 8 * 8 + 24 * len(entry.points)
        return total
