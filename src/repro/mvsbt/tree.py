"""MVSBT: the Multiversion SB-Tree temporal aggregate index (Section 6.2.1).

An MVSBT answers *dominance-sum* queries: given ``(k, t)``, the aggregate of
all data points with key <= k and timestamp <= t.  Every entry corresponds to
a rectangle in key-time space; the rectangles of one node are mutually
disjoint and cover the node's region.  A query walks root to leaf summing the
value of the containing entry at each level.

Insertion of a point ``p = (k, t, w)`` touches only the root-to-leaf path of
nodes whose rectangle contains ``p``:

* entries *fully covered* in the key dimension (``ks >= k``) and alive at
  ``t`` are split vertically at ``t`` — the upper part's value grows by ``w``
  (every query point in it dominates ``p``);
* the single *partly covered* entry containing ``p`` recurses into its child
  (index node) or is split into three (leaf node), exactly as in Figure 5.

Points must arrive in nondecreasing time order (transaction-time history).

Node overflow triggers a key split at an entry boundary; leaf entries that
straddle the boundary are cut in two (value preserved on both sides, which
keeps dominance sums exact).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

#: Upper extremum of the key and time dimensions.
INF = float("inf")


@dataclass
class AggEntry:
    """A leaf rectangle ``[ks, ke) x [ts, te)`` with aggregate value ``v``."""

    ks: float
    ke: float
    ts: float
    te: float
    v: float = 0.0

    def covers(self, k: float, t: float) -> bool:
        return self.ks <= k < self.ke and self.ts <= t < self.te


@dataclass
class AggIndexEntry:
    """An index rectangle with a child pointer.

    Vertical splits create several index entries over the same child; the
    child is descended through whichever entry contains the query point.
    """

    ks: float
    ke: float
    ts: float
    te: float
    child: "_AggNode"
    v: float = 0.0

    def covers(self, k: float, t: float) -> bool:
        return self.ks <= k < self.ke and self.ts <= t < self.te


@dataclass
class _AggNode:
    is_leaf: bool
    entries: list = field(default_factory=list)


class MVSBT:
    """An exact dominance-sum index over integer keys and chronons.

    ``query(k, t)`` returns the sum of weights of points ``(k0, t0)`` with
    ``k0 <= k`` and ``t0 <= t``.
    """

    def __init__(self, node_capacity: int = 32) -> None:
        if node_capacity < 4:
            raise ValueError("node capacity must be at least 4")
        self._capacity = node_capacity
        self._root = _AggNode(is_leaf=True)
        self._root.entries.append(AggEntry(0, INF, 0, INF, 0.0))
        self._last_time = 0
        self._count = 0

    @property
    def point_count(self) -> int:
        return self._count

    # --------------------------------------------------------------- insert

    def insert(self, key: int, time: int, weight: float = 1.0) -> None:
        """Insert a point; time must be nondecreasing across inserts."""
        if key < 0 or time < 0:
            raise ValueError("keys and times must be non-negative")
        if time < self._last_time:
            raise ValueError(
                f"point at {time} after watermark {self._last_time}"
            )
        self._last_time = time
        self._count += 1
        path: list[_AggNode] = []
        node = self._root
        while True:
            path.append(node)
            child = self._insert_into_node(node, key, time, weight)
            if child is None:
                break
            node = child
        # Handle overflow bottom-up.
        for depth in range(len(path) - 1, -1, -1):
            overflowing = path[depth]
            if len(overflowing.entries) <= self._capacity:
                continue
            parent = path[depth - 1] if depth > 0 else None
            self._split_node(overflowing, parent)

    def _insert_into_node(
        self, node: _AggNode, key: int, time: int, weight: float
    ) -> "_AggNode | None":
        """Apply vertical / three-way splits in ``node``; return the child to
        descend into (None at a leaf)."""
        descend: _AggNode | None = None
        fresh: list = []
        for entry in node.entries:
            if entry.ke <= key or entry.te <= time:
                continue
            if entry.ks >= key:
                # Fully covered: vertical split at `time`.
                fresh.extend(self._vertical_split(entry, time, weight))
            elif entry.covers(key, time):
                # The partly covered entry containing the point.
                if node.is_leaf:
                    fresh.extend(self._three_way_split(entry, key, time, weight))
                else:
                    descend = entry.child
        node.entries.extend(fresh)
        return descend

    @staticmethod
    def _vertical_split(entry, time: int, weight: float) -> list:
        """Split ``entry`` at ``time``; the upper part gains ``weight``."""
        if entry.ts == time:
            entry.v += weight
            return []
        upper_args = dict(ks=entry.ks, ke=entry.ke, ts=time, te=entry.te,
                          v=entry.v + weight)
        if isinstance(entry, AggIndexEntry):
            upper = AggIndexEntry(child=entry.child, **upper_args)
        else:
            upper = AggEntry(**upper_args)
        entry.te = time
        return [upper]

    @staticmethod
    def _three_way_split(
        entry: AggEntry, key: int, time: int, weight: float
    ) -> list[AggEntry]:
        """Figure 5: split a partly covered leaf entry at point ``(k, t)``."""
        fresh = [
            AggEntry(key, entry.ke, time, entry.te, entry.v + weight),
        ]
        if entry.ts < time:
            fresh.append(AggEntry(key, entry.ke, entry.ts, time, entry.v))
        # The original shrinks to the portion left of the key.
        entry.ke = key
        return fresh

    # ------------------------------------------------------------ structure

    def _split_node(self, node: _AggNode, parent: "_AggNode | None") -> None:
        boundary = self._split_boundary(node)
        if boundary is None:
            return  # Degenerate: all entries share one key range.
        left = _AggNode(is_leaf=node.is_leaf)
        right = _AggNode(is_leaf=node.is_leaf)
        for entry in node.entries:
            if entry.ke <= boundary:
                left.entries.append(entry)
            elif entry.ks >= boundary:
                right.entries.append(entry)
            else:
                # Cut a straddling leaf rectangle; both halves keep v, which
                # preserves the containing-entry sum for every query point.
                # Index entries are born at child-boundary keys, so one can
                # never straddle — reaching this branch on an index node
                # means the rectangle partition is already corrupt.
                if not node.is_leaf:
                    raise RuntimeError(
                        f"index entry straddles split boundary {boundary}: "
                        f"{entry}"
                    )
                tail = AggEntry(boundary, entry.ke, entry.ts, entry.te, entry.v)
                entry.ke = boundary
                left.entries.append(entry)
                right.entries.append(tail)
        key_low = min(e.ks for e in node.entries)
        key_high = max(e.ke for e in node.entries)
        left_entry = AggIndexEntry(key_low, boundary, 0, INF, left)
        right_entry = AggIndexEntry(boundary, key_high, 0, INF, right)
        if parent is None:
            new_root = _AggNode(is_leaf=False)
            new_root.entries = [left_entry, right_entry]
            self._root = new_root
            return
        # Replace the parent's index entries for `node` with ones for the
        # two halves, preserving each entry's time range and value.
        replacement: list = []
        for entry in parent.entries:
            if isinstance(entry, AggIndexEntry) and entry.child is node:
                for half, (lo, hi) in (
                    (left, (entry.ks, boundary)),
                    (right, (boundary, entry.ke)),
                ):
                    replacement.append(
                        AggIndexEntry(lo, hi, entry.ts, entry.te, half, entry.v)
                    )
            else:
                replacement.append(entry)
        parent.entries = replacement

    def _split_boundary(self, node: _AggNode) -> float | None:
        """A key boundary that balances the node's entries."""
        if node.is_leaf:
            boundaries = sorted(
                {e.ks for e in node.entries} | {e.ke for e in node.entries}
            )
        else:
            # Children partition the key space at clean boundaries.
            boundaries = sorted({e.ks for e in node.entries})
        inner = [b for b in boundaries[1:-1] if b != INF]
        if not inner:
            return None
        return inner[len(inner) // 2]

    # ---------------------------------------------------------------- query

    def query(self, key: int, time: int) -> float:
        """Dominance sum: total weight of points with key<=k and time<=t."""
        if key < 0 or time < 0:
            return 0.0
        total = 0.0
        node = self._root
        while True:
            containing = None
            for entry in node.entries:
                if entry.covers(key, time):
                    containing = entry
                    break
            if containing is None:
                return total
            total += containing.v
            if node.is_leaf:
                return total
            node = containing.child

    # ---------------------------------------------------------------- audit

    def iter_nodes(self) -> Iterator[_AggNode]:
        # Vertical splits create several index entries sharing one child, so
        # deduplicate by identity.
        stack = [self._root]
        seen = {id(self._root)}
        while stack:
            node = stack.pop()
            yield node
            if node.is_leaf:
                continue
            for entry in node.entries:
                if (
                    isinstance(entry, AggIndexEntry)
                    and id(entry.child) not in seen
                ):
                    seen.add(id(entry.child))
                    stack.append(entry.child)

    def entry_count(self) -> int:
        """Total entries across all nodes (storage proxy)."""
        return sum(len(n.entries) for n in self.iter_nodes())

    def check_invariants(self) -> None:
        """Rectangles within each node must be disjoint."""
        for node in self.iter_nodes():
            entries = node.entries
            for i, a in enumerate(entries):
                for b in entries[i + 1 :]:
                    overlap_k = a.ks < b.ke and b.ks < a.ke
                    overlap_t = a.ts < b.te and b.ts < a.te
                    assert not (overlap_k and overlap_t), (
                        f"overlapping rectangles: {a} / {b}"
                    )
