"""Temporal aggregate indexes and the temporal histogram (paper Section 6)."""

from .compressed import CIndexEntry, CLeafEntry, CMVSBT
from .histogram import CharacteristicSets, TemporalHistogram
from .tree import INF, MVSBT

__all__ = [
    "CIndexEntry",
    "CLeafEntry",
    "CMVSBT",
    "CharacteristicSets",
    "INF",
    "MVSBT",
    "TemporalHistogram",
]
