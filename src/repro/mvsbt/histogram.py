"""The temporal histogram of RDF-TX (Sections 6.2 - 6.3).

The histogram makes characteristic-set statistics *temporal*: for any time
window it estimates (i) the number of distinct subjects of a characteristic
set that are alive in the window and (ii) the number of occurrences of a
predicate within those subjects.  Each statistic needs two CMVSBTs — one
over the *start* points and one over the *end* points of the records — so the
histogram consists of four CMVSBTs plus the characteristic-set schema.

A range query over (key range, time window) reduces to four dominance
queries (Section 6.3)::

    Q(k1<k<=k2, [t1,t2)) = Qs(k2, t2-1) - Qe(k2, t1)
                         - Qs(k1, t2-1) + Qe(k1, t1)

``Qs(k, t)`` counts records with key <= k started at or before ``t``;
``Qe(k, t)`` counts those already ended by ``t`` (live records have no end
point and are never subtracted).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..model.graph import TemporalGraph
from ..model.time import NOW
from .compressed import CMVSBT


@dataclass
class CharacteristicSets:
    """Characteristic sets of a temporal RDF graph (Neumann & Moerkotte).

    ``SC(s) = {p | exists o, (s, p, o) in R}``, computed over the whole
    history: semantically similar subjects share the set regardless of when
    their facts held.
    """

    #: charset id -> frozenset of predicate ids
    sets: list[frozenset] = field(default_factory=list)
    #: subject id -> charset id
    of_subject: dict = field(default_factory=dict)
    #: predicate id -> charset ids whose set contains it
    with_predicate: dict = field(default_factory=dict)

    @classmethod
    def from_graph(cls, graph: TemporalGraph) -> "CharacteristicSets":
        predicates_of: dict[int, set[int]] = defaultdict(set)
        for triple in graph:
            predicates_of[triple.subject].add(triple.predicate)
        charsets = cls()
        index: dict[frozenset, int] = {}
        for subject, predicates in predicates_of.items():
            key = frozenset(predicates)
            cs_id = index.get(key)
            if cs_id is None:
                cs_id = len(charsets.sets)
                index[key] = cs_id
                charsets.sets.append(key)
                for predicate in key:
                    charsets.with_predicate.setdefault(predicate, []).append(
                        cs_id
                    )
            charsets.of_subject[subject] = cs_id
        return charsets

    def __len__(self) -> int:
        return len(self.sets)


class _StatPair:
    """A start/end CMVSBT pair answering windowed range counts."""

    def __init__(self, cm: int, lm: int) -> None:
        self.starts = CMVSBT(cm=cm, lm=lm)
        self.ends = CMVSBT(cm=cm, lm=lm)
        self._start_events: list[tuple[int, int, float]] = []
        self._end_events: list[tuple[int, int, float]] = []

    def add(self, key: int, start: int, end: int, weight: float = 1.0) -> None:
        self._start_events.append((start, key, weight))
        if end != NOW:
            self._end_events.append((end, key, weight))

    def seal(self) -> None:
        """Insert buffered events in time order (CMVSBT requirement)."""
        for events, tree in (
            (self._start_events, self.starts),
            (self._end_events, self.ends),
        ):
            events.sort(key=lambda e: e[0])
            for time, key, weight in events:
                tree.insert(key, time, weight)
        self._start_events = []
        self._end_events = []

    def count_alive(self, k1: int, k2: int, t1: int, t2: int) -> float:
        """Records with key in (k1, k2] whose interval intersects [t1, t2)."""
        if t1 >= t2 or k1 >= k2:
            return 0.0
        upper = min(t2 - 1, 2**31)
        started = self.starts.estimate(k2, upper) - self.starts.estimate(k1, upper)
        ended = self.ends.estimate(k2, t1) - self.ends.estimate(k1, t1)
        return max(started - ended, 0.0)

    def sizeof(self) -> int:
        return self.starts.sizeof() + self.ends.sizeof()


class TemporalHistogram:
    """Temporal statistics for the SPARQLT optimizer.

    Keys: the subject pair is keyed by charset id; the occurrence pair by
    the composite ``charset_id * stride + predicate_id``.  Non-temporal side
    tables (predicate/object frequencies) back the estimates the
    characteristic-set framework cannot express (O- and PO-bound patterns).

    ``budget_fraction`` bounds the histogram at that fraction of the raw data
    size; when exceeded, the CMVSBT thresholds double and the histogram is
    rebuilt coarser (equivalent to the paper's entry merging).
    """

    def __init__(
        self,
        cm: int = 8,
        lm: int = 8,
        budget_fraction: float = 0.10,
    ) -> None:
        self.cm = cm
        self.lm = lm
        self.budget_fraction = budget_fraction
        self.charsets = CharacteristicSets()
        self._subjects: _StatPair | None = None
        self._occurrences: _StatPair | None = None
        self._stride = 1
        self.total_triples = 0
        self.distinct_objects_of: dict[int, int] = {}
        self.object_frequency: dict[int, int] = {}
        self.predicate_frequency: dict[int, int] = {}

    # ---------------------------------------------------------------- build

    #: How many times the thresholds may double chasing the space budget.
    MAX_COARSENING_ROUNDS = 6

    def build(self, graph: TemporalGraph) -> None:
        """(Re)build the histogram from a temporal graph.

        The thresholds double (coarsening the histogram) until the space
        budget is met or :data:`MAX_COARSENING_ROUNDS` is exhausted — the
        schema and side tables put a floor under the size that small graphs
        cannot compress away.
        """
        raw = graph.raw_size()
        for _ in range(self.MAX_COARSENING_ROUNDS):
            self._build_once(graph)
            if raw == 0 or self.core_sizeof() <= self.budget_fraction * raw:
                return
            self.cm *= 2
            self.lm *= 2
        self._build_once(graph)

    def _build_once(self, graph: TemporalGraph) -> None:
        self.charsets = CharacteristicSets.from_graph(graph)
        max_pred = max(
            (t.predicate for t in graph), default=0
        )
        self._stride = max_pred + 2
        self._subjects = _StatPair(self.cm, self.lm)
        self._occurrences = _StatPair(self.cm, self.lm)
        self.total_triples = len(graph)

        lifetime: dict[int, list[int]] = {}
        objects_of: dict[int, set[int]] = defaultdict(set)
        self.object_frequency = defaultdict(int)
        self.predicate_frequency = defaultdict(int)
        for triple in graph:
            span = lifetime.get(triple.subject)
            if span is None:
                lifetime[triple.subject] = [triple.period.start, triple.period.end]
            else:
                span[0] = min(span[0], triple.period.start)
                span[1] = max(span[1], triple.period.end)
            charset_id = self.charsets.of_subject[triple.subject]
            self._occurrences.add(
                self._occ_key(charset_id, triple.predicate),
                triple.period.start,
                triple.period.end,
            )
            objects_of[triple.predicate].add(triple.object)
            self.object_frequency[triple.object] += 1
            self.predicate_frequency[triple.predicate] += 1
        for subject, (start, end) in lifetime.items():
            self._subjects.add(self.charsets.of_subject[subject], start, end)
        self._subjects.seal()
        self._occurrences.seal()
        self.distinct_objects_of = {
            pred: len(objs) for pred, objs in objects_of.items()
        }

    def _occ_key(self, charset_id: int, predicate_id: int) -> int:
        return charset_id * self._stride + predicate_id

    # ------------------------------------------------------------- estimate

    def subjects_alive(self, charset_id: int, t1: int, t2: int) -> float:
        """Estimated distinct subjects of a charset alive in [t1, t2)."""
        if self._subjects is None:
            return 0.0
        return self._subjects.count_alive(charset_id - 1, charset_id, t1, t2)

    def occurrences(
        self, charset_id: int, predicate_id: int, t1: int, t2: int
    ) -> float:
        """Estimated occurrences of a predicate within a charset's subjects
        alive in [t1, t2)."""
        if self._occurrences is None:
            return 0.0
        key = self._occ_key(charset_id, predicate_id)
        return self._occurrences.count_alive(key - 1, key, t1, t2)

    def predicate_occurrences(
        self, predicate_id: int, t1: int, t2: int
    ) -> float:
        """Estimated occurrences of a predicate (all charsets) in a window."""
        total = 0.0
        for charset_id in self.charsets.with_predicate.get(predicate_id, ()):
            total += self.occurrences(charset_id, predicate_id, t1, t2)
        return total

    def triples_alive(self, t1: int, t2: int) -> float:
        """Estimated total triples alive in a window (full-scan estimate)."""
        if self._occurrences is None:
            return 0.0
        top = (len(self.charsets.sets) + 1) * self._stride
        return self._occurrences.count_alive(-1, top, t1, t2)

    # ----------------------------------------------------------------- size

    def core_sizeof(self) -> int:
        """Size of the paper's temporal histogram proper: the four CMVSBTs
        plus the characteristic-set schema.  This is what the space budget
        governs (Section 6.2.2)."""
        total = 0
        if self._subjects is not None:
            total += self._subjects.sizeof()
        if self._occurrences is not None:
            total += self._occurrences.sizeof()
        total += 16 * sum(len(s) for s in self.charsets.sets)
        return total

    def sizeof(self) -> int:
        """Full footprint, including the non-temporal side tables that back
        the O/PO-pattern estimates."""
        return self.core_sizeof() + 16 * (
            len(self.distinct_objects_of)
            + len(self.object_frequency)
            + len(self.predicate_frequency)
        )
