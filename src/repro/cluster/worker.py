"""The shard / replica worker process.

One worker per topology member, started with the ``spawn`` context (a
fork would inherit the coordinator's thread-pool and lock state mid-use).
Each worker owns a private directory with a full
:class:`~repro.service.store.TemporalStore` — engine, WAL, snapshots —
and answers the :mod:`repro.cluster.protocol` ops on a loopback TCP
socket (``ThreadingTCPServer``: concurrent reads ride the store's
readers-writer lock exactly as in the single-process server).

Replicas additionally run a tail thread that polls the primary's
``wal_since`` op and applies shipped records through
:meth:`~repro.service.store.TemporalStore.apply_replicated`.  Two
recovery paths keep a follower convergent:

* **Resync** — on a replication gap (the primary checkpointed and
  truncated records the follower never saw), or on an explicit ``resync``
  op (bulk loads bypass the WAL entirely), the follower copies the
  primary's snapshot file and reopens over it.  The copy races only with
  the atomic snapshot rename, so it always sees a complete file.
* **Promote** — on a ``promote`` op the follower reads the *dead*
  primary's on-disk WAL directly (acknowledged appends are flushed to
  the OS before the ack, so they survive a SIGKILL), applies what it is
  missing, and flips role to ``shard``; subsequent updates route here.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import socket
import socketserver
import threading
import time as _time
from dataclasses import dataclass
from pathlib import Path

from ..model.time import TimeError
from ..mvbt.tree import DuplicateKeyError, TimeOrderError
from ..obs import events as _events
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..service.snapshot import is_snapshot
from ..service.store import StoreError, TemporalStore
from ..service.wal import read_records
from ..sparqlt.errors import SparqltError
from . import protocol
from .protocol import (
    KIND_BAD_REQUEST,
    KIND_CONFLICT_DUPLICATE,
    KIND_CONFLICT_MISSING,
    KIND_CONFLICT_TIME,
    KIND_INTERNAL,
    KIND_LAGGING,
    ProtocolError,
    recv_message,
    send_message,
)

_REQUESTS = _metrics.counter("cluster.worker.requests")
_REPLICATED = _metrics.counter("cluster.worker.replicated")
_REPLICATED_BYTES = _metrics.counter("cluster.worker.replicated_bytes")
_WAL_SHIPPED = _metrics.counter("cluster.worker.wal_shipped")
_WAL_SHIPPED_BYTES = _metrics.counter("cluster.worker.wal_shipped_bytes")
_RESYNCS = _metrics.counter("cluster.worker.resyncs")


@dataclass
class WorkerConfig:
    """Everything a spawned worker needs (must stay picklable)."""

    shard_id: int
    role: str  # "shard" | "replica"
    directory: str
    #: primary's (host, port) and directory — replicas only.
    primary_address: tuple[str, int] | None = None
    primary_directory: str | None = None
    replica_index: int = 0
    use_optimizer: bool = True
    group_size: int = 32
    fsync: bool = True
    query_cache_size: int | None = 256
    parallel: bool | None = None
    poll_interval: float = 0.05


class _WorkerState:
    def __init__(self, config: WorkerConfig) -> None:
        self.config = config
        self.role = config.role
        self.store: TemporalStore = _open_store(config)
        self.stopping = threading.Event()
        #: serializes resync/promote against each other (queries keep
        #: serving off whatever store object they already grabbed).
        self.maintenance = threading.Lock()
        #: replication-lag telemetry (replicas only; written by the tail
        #: thread, read lock-free by status/metrics ops).
        self.primary_head_lsn: int | None = None
        self.last_applied_stamp: float | None = None


def _event_fields(state: _WorkerState, **fields) -> dict:
    """Common correlation fields for worker-side events and log lines.

    Every structured line a worker emits carries ``shard_id``/``role``/
    ``pid`` plus the worker-local ``trace_id`` when the call happens
    under a traced RPC — the same id the coordinator records as
    ``remote_trace_id`` on the grafted span, so logs join stitched
    traces.
    """
    fields.update(
        shard_id=state.config.shard_id,
        role=state.role,
        pid=os.getpid(),
        trace_id=_trace.current_trace_id(),
    )
    return fields


def _replica_lag_seconds(state: _WorkerState) -> float | None:
    """Seconds this replica is behind its primary, or None if unknown.

    Zero when the last ``wal_since`` poll found us at the primary's head;
    otherwise the age of the newest shipped-record stamp we applied.
    Primaries report None.
    """
    if state.role != "replica":
        return None
    head = state.primary_head_lsn
    if head is None:
        return None
    if state.store.revision >= head:
        return 0.0
    stamp = state.last_applied_stamp
    if stamp is None:
        return None
    return max(0.0, _time.time() - stamp)


def _open_store(config: WorkerConfig) -> TemporalStore:
    return TemporalStore(
        config.directory,
        use_optimizer=config.use_optimizer,
        group_size=config.group_size,
        fsync=config.fsync,
        query_cache_size=config.query_cache_size,
        parallel=config.parallel,
    )


# -------------------------------------------------------------- replication


def _resync(state: _WorkerState) -> None:
    """Rebuild this follower from the primary's snapshot file.

    Used when WAL shipping cannot bridge the follower to the primary: a
    bulk load (which bypasses the WAL) or a replication gap (the primary
    truncated records at checkpoint).  ``save_snapshot`` publishes via an
    atomic rename, so the copy sees either the previous or the new
    snapshot, never a torn one — and a stale copy merely triggers one
    more resync round.
    """
    config = state.config
    with state.maintenance:
        state.store.close()
        own_snap = Path(config.directory) / TemporalStore.SNAPSHOT_NAME
        own_wal = Path(config.directory) / TemporalStore.WAL_NAME
        primary_snap = (
            Path(config.primary_directory) / TemporalStore.SNAPSHOT_NAME
            if config.primary_directory else None
        )
        if primary_snap is not None and primary_snap.exists():
            tmp = own_snap.with_name(own_snap.name + ".resync")
            shutil.copyfile(primary_snap, tmp)
            os.replace(tmp, own_snap)
        elif own_snap.exists():
            own_snap.unlink()
        if own_wal.exists():
            own_wal.unlink()
        state.store = _open_store(config)
        if _metrics.ENABLED:
            _RESYNCS.inc()
        _events.EVENTS.record(
            "cluster.event.resync",
            **_event_fields(state, revision=state.store.revision),
        )


def _tail_loop(state: _WorkerState) -> None:
    """Poll the primary for WAL records past our revision and apply them."""
    config = state.config
    while not state.stopping.is_set() and state.role == "replica":
        try:
            response = _point_rpc(
                config.primary_address,
                {"op": "wal_since", "lsn": state.store.revision},
            )
        except (OSError, ProtocolError):
            # Primary unreachable (dead, or not yet serving): keep
            # polling — promotion, if any, arrives from the coordinator.
            state.stopping.wait(config.poll_interval)
            continue
        encoded = response.get("records", []) if response.get("ok") else []
        records = [protocol.decode_wal_record(fields) for fields in encoded]
        stamps = response.get("stamps") or []
        if response.get("ok"):
            state.primary_head_lsn = response.get("head_lsn")
        applied = 0
        applied_bytes = 0
        for index, record in enumerate(records):
            if state.stopping.is_set() or state.role != "replica":
                break
            try:
                state.store.apply_replicated(record)
                applied += 1
            except StoreError as error:
                _events.EVENTS.record(
                    "cluster.event.replication_gap", level="warning",
                    **_event_fields(state, lsn=record.lsn,
                                    error=str(error)),
                )
                _resync(state)
                break
            except (DuplicateKeyError, TimeOrderError, KeyError,
                    ValueError) as error:
                # The record does not apply to our state: we diverged
                # (e.g. raced a bulk load).  Snap back to the primary's
                # snapshot rather than guessing.
                _events.EVENTS.record(
                    "cluster.event.diverged", level="warning",
                    **_event_fields(state, lsn=record.lsn,
                                    error=str(error)),
                )
                _resync(state)
                break
            stamp = stamps[index] if index < len(stamps) else None
            if stamp is not None:
                state.last_applied_stamp = stamp
            if _metrics.ENABLED:
                applied_bytes += len(json.dumps(encoded[index]))
        if applied and _metrics.ENABLED:
            _REPLICATED.inc(applied)
            _REPLICATED_BYTES.inc(applied_bytes)
        if not records:
            state.stopping.wait(config.poll_interval)


def _catch_up_from_wal(state: _WorkerState, wal_path: str) -> int:
    """Apply every record in ``wal_path`` past our revision; returns the
    count applied.  Raises :class:`StoreError` on a replication gap."""
    path = Path(wal_path)
    if not path.exists():
        return 0
    applied = 0
    for record in read_records(path):
        if record.lsn <= state.store.revision:
            continue
        state.store.apply_replicated(record)
        applied += 1
    return applied


def _promote(state: _WorkerState, wal_path: str | None) -> None:
    """Take over as primary: final catch-up from the dead primary's log,
    then flip role (which also stops the tail loop)."""
    for attempt in range(2):
        try:
            applied = (
                _catch_up_from_wal(state, wal_path) if wal_path else 0
            )
        except StoreError as error:
            if attempt:
                raise
            # Gap against the dead primary's log: its snapshot holds the
            # truncated prefix — resync onto it and replay once more.
            _events.EVENTS.record(
                "cluster.event.promote_gap", level="warning",
                **_event_fields(state, error=str(error)),
            )
            _resync(state)
            continue
        break
    state.role = "shard"
    _events.EVENTS.record(
        "cluster.event.promoted",
        **_event_fields(state, revision=state.store.revision,
                        caught_up=applied),
    )


# ------------------------------------------------------------------ op impl


def _op_ping(state: _WorkerState, payload: dict) -> dict:
    return {"ok": True}


def _op_status(state: _WorkerState, payload: dict) -> dict:
    store = state.store
    return {
        "ok": True,
        "role": state.role,
        "shard_id": state.config.shard_id,
        "revision": store.revision,
        "live_facts": store.live_facts,
        "horizon": store.engine.horizon,
        "pid": os.getpid(),
        "lag_seconds": _replica_lag_seconds(state),
    }


def _check_replica_fresh(state: _WorkerState, payload: dict) -> dict | None:
    if state.role != "replica":
        return None
    min_lsn = payload.get("min_lsn", 0)
    if state.store.revision < min_lsn:
        return {
            "ok": False,
            "error": (
                f"replica at LSN {state.store.revision}, "
                f"needs {min_lsn}"
            ),
            "kind": KIND_LAGGING,
        }
    return None


def _run_query(state: _WorkerState, payload: dict, query) -> dict:
    lagging = _check_replica_fresh(state, payload)
    if lagging is not None:
        return lagging
    store = state.store
    floor = payload.get("horizon", 0)
    if floor > store.engine.horizon_floor:
        # Monotonic: the cluster horizon only advances, so concurrent
        # raises from racing requests are order-independent.
        store.engine.horizon_floor = floor
    result = store.query(query)
    return {
        "ok": True,
        "variables": result.variables,
        "rows": [protocol.encode_row(row) for row in result.rows],
        "revision": result.revision,
    }


def _op_query(state: _WorkerState, payload: dict) -> dict:
    text = payload.get("text")
    if not isinstance(text, str) or not text.strip():
        raise ValueError("missing 'text' string")
    return _run_query(state, payload, text)


def _op_scan(state: _WorkerState, payload: dict) -> dict:
    query = protocol.decode_query(payload["query"])
    return _run_query(state, payload, query)


def _op_update(state: _WorkerState, payload: dict) -> dict:
    if state.role != "shard":
        raise StoreError("replica is read-only")
    op = payload.get("update")
    if op not in ("insert", "delete"):
        raise ValueError(f"bad update op: {op!r}")
    subject = payload["subject"]
    predicate = payload["predicate"]
    object_ = payload["object"]
    time = payload["time"]
    store = state.store
    if op == "insert":
        lsn = store.insert(subject, predicate, object_, time)
    else:
        lsn = store.delete(subject, predicate, object_, time)
    return {"ok": True, "lsn": lsn, "revision": store.revision}


def _op_load(state: _WorkerState, payload: dict) -> dict:
    from ..model.graph import TemporalGraph
    from ..model.time import NOW

    graph = TemporalGraph()
    for subject, predicate, object_, start, end in payload["rows"]:
        graph.add(subject, predicate, object_, start,
                  NOW if end is None else end)
    state.store.load_dataset(graph)
    return {"ok": True, "live_facts": state.store.live_facts,
            "horizon": state.store.engine.horizon}


def _op_wal_since(state: _WorkerState, payload: dict) -> dict:
    records = state.store.wal_since(payload.get("lsn", 0))
    encoded = [protocol.encode_wal_record(r) for r in records]
    if records and _metrics.ENABLED:
        _WAL_SHIPPED.inc(len(records))
        _WAL_SHIPPED_BYTES.inc(len(json.dumps(encoded)))
    # Stamps ride the shipping envelope, not the WAL format: each is the
    # wall-clock time the record became durable here (None once pruned
    # from the tracking window), and head_lsn lets a caught-up follower
    # report zero lag without any stamp arithmetic.
    return {
        "ok": True,
        "records": encoded,
        "stamps": [state.store.append_walltime(r.lsn) for r in records],
        "head_lsn": state.store.revision,
    }


def _op_resync(state: _WorkerState, payload: dict) -> dict:
    if state.role != "replica":
        raise StoreError("resync only applies to replicas")
    _resync(state)
    return {"ok": True, "revision": state.store.revision}


def _op_promote(state: _WorkerState, payload: dict) -> dict:
    if state.role != "replica":
        return {"ok": True, "revision": state.store.revision,
                "already": True}
    _promote(state, payload.get("wal_path"))
    return {"ok": True, "revision": state.store.revision}


def _op_checkpoint(state: _WorkerState, payload: dict) -> dict:
    state.store.checkpoint()
    return {"ok": True, "revision": state.store.revision}


def _op_refresh_stats(state: _WorkerState, payload: dict) -> dict:
    return {"ok": True, "refreshed": state.store.refresh_statistics()}


def _op_predicates(state: _WorkerState, payload: dict) -> dict:
    """This member's predicate inventory (coordinator bootstrap uses it
    to rebuild the planner's routing map over pre-existing data)."""
    return {"ok": True, "predicates": state.store.predicates()}


def _op_metrics(state: _WorkerState, payload: dict) -> dict:
    """This member's registry snapshot, for the federation collector.

    With observability off the registry holds stale pre-disable values;
    reporting ``enabled: false`` with empty metrics lets the coordinator
    skip this member instead of merging frozen series.
    """
    if not _metrics.ENABLED:
        return {
            "ok": True,
            "enabled": False,
            "metrics": {},
            "role": state.role,
            "revision": state.store.revision,
            "lag_seconds": _replica_lag_seconds(state),
        }
    return {
        "ok": True,
        "enabled": True,
        "metrics": _metrics.REGISTRY.snapshot(),
        "role": state.role,
        "revision": state.store.revision,
        "lag_seconds": _replica_lag_seconds(state),
    }


def _op_events(state: _WorkerState, payload: dict) -> dict:
    """This member's recent cluster events (ring contents, newest first)."""
    return {
        "ok": True,
        "events": _events.EVENTS.recent(payload.get("limit", 100)),
    }


def _op_shutdown(state: _WorkerState, payload: dict) -> dict:
    state.stopping.set()
    return {"ok": True}


_OPS = {
    "ping": _op_ping,
    "status": _op_status,
    "query": _op_query,
    "scan": _op_scan,
    "update": _op_update,
    "load": _op_load,
    "wal_since": _op_wal_since,
    "resync": _op_resync,
    "promote": _op_promote,
    "checkpoint": _op_checkpoint,
    "refresh_stats": _op_refresh_stats,
    "predicates": _op_predicates,
    "metrics": _op_metrics,
    "events": _op_events,
    "shutdown": _op_shutdown,
}


def _dispatch(state: _WorkerState, payload: dict) -> dict:
    recv_ts = _time.time()
    op = payload.get("op")
    if _metrics.ENABLED:
        _REQUESTS.inc()
    handler = _OPS.get(op)
    if handler is None:
        return {"ok": False, "error": f"unknown op: {op!r}",
                "kind": KIND_BAD_REQUEST}
    trace_id = payload.get("trace_id")
    if trace_id and _metrics.ENABLED:
        trace_cm = _trace.start_trace(
            f"cluster.{op}", shard=state.config.shard_id,
            upstream=trace_id,
        )
    else:
        trace_cm = contextlib.nullcontext()
    try:
        with trace_cm as opened:
            response = handler(state, payload)
        if isinstance(opened, _trace.Trace) and response.get("ok"):
            # The coordinator asked for tracing (it sent its trace id):
            # ride our finished, bounded span subtree back on the reply
            # so the coordinator can graft it under its cluster.rpc span.
            # Sampling mirrors the coordinator's by construction — an
            # unsampled request never carries a trace_id.
            response[protocol.TRACE_KEY] = protocol.encode_trace_envelope(
                opened, shard_id=state.config.shard_id, role=state.role,
                recv_ts=recv_ts, send_ts=_time.time(),
            )
        return response
    except (SparqltError, TimeError, ValueError) as error:
        return {"ok": False, "error": str(error), "kind": KIND_BAD_REQUEST}
    except DuplicateKeyError as error:
        return {"ok": False, "error": str(error),
                "kind": KIND_CONFLICT_DUPLICATE}
    except TimeOrderError as error:
        return {"ok": False, "error": str(error),
                "kind": KIND_CONFLICT_TIME}
    except KeyError as error:
        return {"ok": False, "error": str(error),
                "kind": KIND_CONFLICT_MISSING}
    except (StoreError, ProtocolError, OSError) as error:
        return {"ok": False, "error": str(error), "kind": KIND_INTERNAL}


class _Handler(socketserver.BaseRequestHandler):
    """One persistent connection: a loop of request/response frames."""

    server: "_WorkerServer"

    def handle(self) -> None:
        sock = self.request
        # Nagle + delayed ACK stalls small response frames by tens of
        # milliseconds per round trip; scatter RPCs are all small frames.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        while not self.server.state.stopping.is_set():
            try:
                payload = recv_message(sock)
            except (ProtocolError, OSError):
                return  # clean close or dead peer — either way, done
            response = _dispatch(self.server.state, payload)
            try:
                send_message(sock, response)
            except OSError:
                return
            if payload.get("op") == "shutdown":
                # Stop accepting *after* the ack is on the wire.
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
                return


class _WorkerServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, state: _WorkerState) -> None:
        super().__init__(address, handler)
        self.state = state


def _point_rpc(address: tuple[str, int], payload: dict,
               timeout: float = 5.0) -> dict:
    """One-shot RPC on a fresh connection (the tail loop's primitive —
    the coordinator uses pooled connections instead)."""
    with socket.create_connection(tuple(address), timeout=timeout) as sock:
        send_message(sock, payload)
        return recv_message(sock)


def worker_main(config: WorkerConfig, ready) -> None:
    """Process entry point (must be importable for the spawn context).

    Opens the store, starts the replica tail thread when applicable,
    binds a loopback socket on an ephemeral port, and reports
    ``{"port", "pid"}`` over the ``ready`` pipe before serving.
    """
    state = _WorkerState(config)
    if config.role == "replica":
        if (state.store.revision == 0 and state.store.live_facts == 0
                and config.primary_directory):
            primary_snap = (
                Path(config.primary_directory) / TemporalStore.SNAPSHOT_NAME
            )
            if primary_snap.exists() and is_snapshot(primary_snap):
                _resync(state)
        tail = threading.Thread(
            target=_tail_loop, args=(state,), daemon=True,
            name=f"repro-tail-{config.shard_id}",
        )
        tail.start()
    server = _WorkerServer(("127.0.0.1", 0), _Handler, state)
    ready.send({"port": server.server_address[1], "pid": os.getpid()})
    ready.close()
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        state.stopping.set()
        server.server_close()
        state.store.close()
