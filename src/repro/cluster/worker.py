"""The shard / replica worker process.

One worker per topology member, started with the ``spawn`` context (a
fork would inherit the coordinator's thread-pool and lock state mid-use).
Each worker owns a private directory with a full
:class:`~repro.service.store.TemporalStore` — engine, WAL, snapshots —
and answers the :mod:`repro.cluster.protocol` ops on a loopback TCP
socket (``ThreadingTCPServer``: concurrent reads ride the store's
readers-writer lock exactly as in the single-process server).

Replicas additionally run a tail thread that polls the primary's
``wal_since`` op and applies shipped records through
:meth:`~repro.service.store.TemporalStore.apply_replicated`.  Two
recovery paths keep a follower convergent:

* **Resync** — on a replication gap (the primary checkpointed and
  truncated records the follower never saw), or on an explicit ``resync``
  op (bulk loads bypass the WAL entirely), the follower copies the
  primary's snapshot file and reopens over it.  The copy races only with
  the atomic snapshot rename, so it always sees a complete file.
* **Promote** — on a ``promote`` op the follower reads the *dead*
  primary's on-disk WAL directly (acknowledged appends are flushed to
  the OS before the ack, so they survive a SIGKILL), applies what it is
  missing, and flips role to ``shard``; subsequent updates route here.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import socket
import socketserver
import threading
from dataclasses import dataclass
from pathlib import Path

from ..model.time import TimeError
from ..mvbt.tree import DuplicateKeyError, TimeOrderError
from ..obs import log as _obslog
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..service.snapshot import is_snapshot
from ..service.store import StoreError, TemporalStore
from ..service.wal import read_records
from ..sparqlt.errors import SparqltError
from . import protocol
from .protocol import (
    KIND_BAD_REQUEST,
    KIND_CONFLICT_DUPLICATE,
    KIND_CONFLICT_MISSING,
    KIND_CONFLICT_TIME,
    KIND_INTERNAL,
    KIND_LAGGING,
    ProtocolError,
    recv_message,
    send_message,
)

_REQUESTS = _metrics.counter("cluster.worker.requests")
_REPLICATED = _metrics.counter("cluster.worker.replicated")
_WAL_SHIPPED = _metrics.counter("cluster.worker.wal_shipped")
_RESYNCS = _metrics.counter("cluster.worker.resyncs")


@dataclass
class WorkerConfig:
    """Everything a spawned worker needs (must stay picklable)."""

    shard_id: int
    role: str  # "shard" | "replica"
    directory: str
    #: primary's (host, port) and directory — replicas only.
    primary_address: tuple[str, int] | None = None
    primary_directory: str | None = None
    replica_index: int = 0
    use_optimizer: bool = True
    group_size: int = 32
    fsync: bool = True
    query_cache_size: int | None = 256
    parallel: bool | None = None
    poll_interval: float = 0.05


class _WorkerState:
    def __init__(self, config: WorkerConfig) -> None:
        self.config = config
        self.role = config.role
        self.store: TemporalStore = _open_store(config)
        self.stopping = threading.Event()
        #: serializes resync/promote against each other (queries keep
        #: serving off whatever store object they already grabbed).
        self.maintenance = threading.Lock()


def _open_store(config: WorkerConfig) -> TemporalStore:
    return TemporalStore(
        config.directory,
        use_optimizer=config.use_optimizer,
        group_size=config.group_size,
        fsync=config.fsync,
        query_cache_size=config.query_cache_size,
        parallel=config.parallel,
    )


# -------------------------------------------------------------- replication


def _resync(state: _WorkerState) -> None:
    """Rebuild this follower from the primary's snapshot file.

    Used when WAL shipping cannot bridge the follower to the primary: a
    bulk load (which bypasses the WAL) or a replication gap (the primary
    truncated records at checkpoint).  ``save_snapshot`` publishes via an
    atomic rename, so the copy sees either the previous or the new
    snapshot, never a torn one — and a stale copy merely triggers one
    more resync round.
    """
    config = state.config
    with state.maintenance:
        state.store.close()
        own_snap = Path(config.directory) / TemporalStore.SNAPSHOT_NAME
        own_wal = Path(config.directory) / TemporalStore.WAL_NAME
        primary_snap = (
            Path(config.primary_directory) / TemporalStore.SNAPSHOT_NAME
            if config.primary_directory else None
        )
        if primary_snap is not None and primary_snap.exists():
            tmp = own_snap.with_name(own_snap.name + ".resync")
            shutil.copyfile(primary_snap, tmp)
            os.replace(tmp, own_snap)
        elif own_snap.exists():
            own_snap.unlink()
        if own_wal.exists():
            own_wal.unlink()
        state.store = _open_store(config)
        if _metrics.ENABLED:
            _RESYNCS.inc()
        _obslog.LOGGER.info(
            "cluster_resync", shard=config.shard_id,
            revision=state.store.revision,
        )


def _tail_loop(state: _WorkerState) -> None:
    """Poll the primary for WAL records past our revision and apply them."""
    config = state.config
    while not state.stopping.is_set() and state.role == "replica":
        try:
            response = _point_rpc(
                config.primary_address,
                {"op": "wal_since", "lsn": state.store.revision},
            )
        except (OSError, ProtocolError):
            # Primary unreachable (dead, or not yet serving): keep
            # polling — promotion, if any, arrives from the coordinator.
            state.stopping.wait(config.poll_interval)
            continue
        records = [
            protocol.decode_wal_record(fields)
            for fields in response.get("records", [])
        ] if response.get("ok") else []
        applied = 0
        for record in records:
            if state.stopping.is_set() or state.role != "replica":
                break
            try:
                state.store.apply_replicated(record)
                applied += 1
            except StoreError as error:
                _obslog.LOGGER.warning(
                    "cluster_replication_gap", shard=config.shard_id,
                    lsn=record.lsn, error=str(error),
                )
                _resync(state)
                break
            except (DuplicateKeyError, TimeOrderError, KeyError,
                    ValueError) as error:
                # The record does not apply to our state: we diverged
                # (e.g. raced a bulk load).  Snap back to the primary's
                # snapshot rather than guessing.
                _obslog.LOGGER.warning(
                    "cluster_replication_diverged", shard=config.shard_id,
                    lsn=record.lsn, error=str(error),
                )
                _resync(state)
                break
        if applied and _metrics.ENABLED:
            _REPLICATED.inc(applied)
        if not records:
            state.stopping.wait(config.poll_interval)


def _catch_up_from_wal(state: _WorkerState, wal_path: str) -> int:
    """Apply every record in ``wal_path`` past our revision; returns the
    count applied.  Raises :class:`StoreError` on a replication gap."""
    path = Path(wal_path)
    if not path.exists():
        return 0
    applied = 0
    for record in read_records(path):
        if record.lsn <= state.store.revision:
            continue
        state.store.apply_replicated(record)
        applied += 1
    return applied


def _promote(state: _WorkerState, wal_path: str | None) -> None:
    """Take over as primary: final catch-up from the dead primary's log,
    then flip role (which also stops the tail loop)."""
    for attempt in range(2):
        try:
            applied = (
                _catch_up_from_wal(state, wal_path) if wal_path else 0
            )
        except StoreError as error:
            if attempt:
                raise
            # Gap against the dead primary's log: its snapshot holds the
            # truncated prefix — resync onto it and replay once more.
            _obslog.LOGGER.warning(
                "cluster_promote_gap", shard=state.config.shard_id,
                error=str(error),
            )
            _resync(state)
            continue
        break
    state.role = "shard"
    _obslog.LOGGER.info(
        "cluster_promoted", shard=state.config.shard_id,
        revision=state.store.revision, caught_up=applied,
    )


# ------------------------------------------------------------------ op impl


def _op_ping(state: _WorkerState, payload: dict) -> dict:
    return {"ok": True}


def _op_status(state: _WorkerState, payload: dict) -> dict:
    store = state.store
    return {
        "ok": True,
        "role": state.role,
        "shard_id": state.config.shard_id,
        "revision": store.revision,
        "live_facts": store.live_facts,
        "horizon": store.engine.horizon,
        "pid": os.getpid(),
    }


def _check_replica_fresh(state: _WorkerState, payload: dict) -> dict | None:
    if state.role != "replica":
        return None
    min_lsn = payload.get("min_lsn", 0)
    if state.store.revision < min_lsn:
        return {
            "ok": False,
            "error": (
                f"replica at LSN {state.store.revision}, "
                f"needs {min_lsn}"
            ),
            "kind": KIND_LAGGING,
        }
    return None


def _run_query(state: _WorkerState, payload: dict, query) -> dict:
    lagging = _check_replica_fresh(state, payload)
    if lagging is not None:
        return lagging
    store = state.store
    floor = payload.get("horizon", 0)
    if floor > store.engine.horizon_floor:
        # Monotonic: the cluster horizon only advances, so concurrent
        # raises from racing requests are order-independent.
        store.engine.horizon_floor = floor
    result = store.query(query)
    return {
        "ok": True,
        "variables": result.variables,
        "rows": [protocol.encode_row(row) for row in result.rows],
        "revision": result.revision,
    }


def _op_query(state: _WorkerState, payload: dict) -> dict:
    text = payload.get("text")
    if not isinstance(text, str) or not text.strip():
        raise ValueError("missing 'text' string")
    return _run_query(state, payload, text)


def _op_scan(state: _WorkerState, payload: dict) -> dict:
    query = protocol.decode_query(payload["query"])
    return _run_query(state, payload, query)


def _op_update(state: _WorkerState, payload: dict) -> dict:
    if state.role != "shard":
        raise StoreError("replica is read-only")
    op = payload.get("update")
    if op not in ("insert", "delete"):
        raise ValueError(f"bad update op: {op!r}")
    subject = payload["subject"]
    predicate = payload["predicate"]
    object_ = payload["object"]
    time = payload["time"]
    store = state.store
    if op == "insert":
        lsn = store.insert(subject, predicate, object_, time)
    else:
        lsn = store.delete(subject, predicate, object_, time)
    return {"ok": True, "lsn": lsn, "revision": store.revision}


def _op_load(state: _WorkerState, payload: dict) -> dict:
    from ..model.graph import TemporalGraph
    from ..model.time import NOW

    graph = TemporalGraph()
    for subject, predicate, object_, start, end in payload["rows"]:
        graph.add(subject, predicate, object_, start,
                  NOW if end is None else end)
    state.store.load_dataset(graph)
    return {"ok": True, "live_facts": state.store.live_facts,
            "horizon": state.store.engine.horizon}


def _op_wal_since(state: _WorkerState, payload: dict) -> dict:
    records = state.store.wal_since(payload.get("lsn", 0))
    if records and _metrics.ENABLED:
        _WAL_SHIPPED.inc(len(records))
    return {
        "ok": True,
        "records": [protocol.encode_wal_record(r) for r in records],
    }


def _op_resync(state: _WorkerState, payload: dict) -> dict:
    if state.role != "replica":
        raise StoreError("resync only applies to replicas")
    _resync(state)
    return {"ok": True, "revision": state.store.revision}


def _op_promote(state: _WorkerState, payload: dict) -> dict:
    if state.role != "replica":
        return {"ok": True, "revision": state.store.revision,
                "already": True}
    _promote(state, payload.get("wal_path"))
    return {"ok": True, "revision": state.store.revision}


def _op_checkpoint(state: _WorkerState, payload: dict) -> dict:
    state.store.checkpoint()
    return {"ok": True, "revision": state.store.revision}


def _op_refresh_stats(state: _WorkerState, payload: dict) -> dict:
    return {"ok": True, "refreshed": state.store.refresh_statistics()}


def _op_predicates(state: _WorkerState, payload: dict) -> dict:
    """This member's predicate inventory (coordinator bootstrap uses it
    to rebuild the planner's routing map over pre-existing data)."""
    return {"ok": True, "predicates": state.store.predicates()}


def _op_metrics(state: _WorkerState, payload: dict) -> dict:
    return {"ok": True, "metrics": _metrics.REGISTRY.snapshot()}


def _op_shutdown(state: _WorkerState, payload: dict) -> dict:
    state.stopping.set()
    return {"ok": True}


_OPS = {
    "ping": _op_ping,
    "status": _op_status,
    "query": _op_query,
    "scan": _op_scan,
    "update": _op_update,
    "load": _op_load,
    "wal_since": _op_wal_since,
    "resync": _op_resync,
    "promote": _op_promote,
    "checkpoint": _op_checkpoint,
    "refresh_stats": _op_refresh_stats,
    "predicates": _op_predicates,
    "metrics": _op_metrics,
    "shutdown": _op_shutdown,
}


def _dispatch(state: _WorkerState, payload: dict) -> dict:
    op = payload.get("op")
    if _metrics.ENABLED:
        _REQUESTS.inc()
    handler = _OPS.get(op)
    if handler is None:
        return {"ok": False, "error": f"unknown op: {op!r}",
                "kind": KIND_BAD_REQUEST}
    trace_id = payload.get("trace_id")
    if trace_id and _metrics.ENABLED:
        trace_cm = _trace.start_trace(
            f"cluster.{op}", shard=state.config.shard_id,
            upstream=trace_id,
        )
    else:
        trace_cm = contextlib.nullcontext()
    try:
        with trace_cm:
            return handler(state, payload)
    except (SparqltError, TimeError, ValueError) as error:
        return {"ok": False, "error": str(error), "kind": KIND_BAD_REQUEST}
    except DuplicateKeyError as error:
        return {"ok": False, "error": str(error),
                "kind": KIND_CONFLICT_DUPLICATE}
    except TimeOrderError as error:
        return {"ok": False, "error": str(error),
                "kind": KIND_CONFLICT_TIME}
    except KeyError as error:
        return {"ok": False, "error": str(error),
                "kind": KIND_CONFLICT_MISSING}
    except (StoreError, ProtocolError, OSError) as error:
        return {"ok": False, "error": str(error), "kind": KIND_INTERNAL}


class _Handler(socketserver.BaseRequestHandler):
    """One persistent connection: a loop of request/response frames."""

    server: "_WorkerServer"

    def handle(self) -> None:
        sock = self.request
        # Nagle + delayed ACK stalls small response frames by tens of
        # milliseconds per round trip; scatter RPCs are all small frames.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        while not self.server.state.stopping.is_set():
            try:
                payload = recv_message(sock)
            except (ProtocolError, OSError):
                return  # clean close or dead peer — either way, done
            response = _dispatch(self.server.state, payload)
            try:
                send_message(sock, response)
            except OSError:
                return
            if payload.get("op") == "shutdown":
                # Stop accepting *after* the ack is on the wire.
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
                return


class _WorkerServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, state: _WorkerState) -> None:
        super().__init__(address, handler)
        self.state = state


def _point_rpc(address: tuple[str, int], payload: dict,
               timeout: float = 5.0) -> dict:
    """One-shot RPC on a fresh connection (the tail loop's primitive —
    the coordinator uses pooled connections instead)."""
    with socket.create_connection(tuple(address), timeout=timeout) as sock:
        send_message(sock, payload)
        return recv_message(sock)


def worker_main(config: WorkerConfig, ready) -> None:
    """Process entry point (must be importable for the spawn context).

    Opens the store, starts the replica tail thread when applicable,
    binds a loopback socket on an ephemeral port, and reports
    ``{"port", "pid"}`` over the ``ready`` pipe before serving.
    """
    state = _WorkerState(config)
    if config.role == "replica":
        if (state.store.revision == 0 and state.store.live_facts == 0
                and config.primary_directory):
            primary_snap = (
                Path(config.primary_directory) / TemporalStore.SNAPSHOT_NAME
            )
            if primary_snap.exists() and is_snapshot(primary_snap):
                _resync(state)
        tail = threading.Thread(
            target=_tail_loop, args=(state,), daemon=True,
            name=f"repro-tail-{config.shard_id}",
        )
        tail.start()
    server = _WorkerServer(("127.0.0.1", 0), _Handler, state)
    ready.send({"port": server.server_address[1], "pid": os.getpid()})
    ready.close()
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        state.stopping.set()
        server.server_close()
        state.store.close()
