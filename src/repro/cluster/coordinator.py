"""The cluster coordinator: spawn, route, gather, fail over.

:class:`ClusterStore` duck-types :class:`~repro.service.store.TemporalStore`
(``query`` / ``insert`` / ``delete`` / ``checkpoint`` / ``revision`` /
``live_facts`` / ``storage_report`` / ``close``), so the existing HTTP
server fronts a cluster without changing a single handler.

Topology: N shard primaries plus M replicas each, all spawned worker
processes (``spawn`` context — a fork would clone live thread-pool and
lock state) with directories laid out under the coordinator's own::

    dir/shard-0/            primary for shard 0
    dir/shard-0-replica-0/  its first follower
    dir/shard-1/            ...

Consistency model — single coordinator, single writer per shard:

* Writes route to the subject's owner shard; the **cluster revision
  watermark** is the sum of per-shard applied LSNs, bumped under the
  coordinator's writer lock, so it is monotonic and every read reports
  the watermark it executed under.
* A cluster-wide **time watermark** totally orders update chronons
  across shards (each shard alone would only enforce its local maximum,
  letting history interleave inconsistently between shards).
* Reads prefer a replica (round-robin) when one is attached, pinned by
  ``min_lsn`` — a follower still behind the shard's acked LSN refuses
  with ``lagging`` and the read falls back to the primary, so replica
  reads are never stale relative to acknowledged writes.
* On a dead primary (connection failure), the coordinator promotes the
  freshest replica — which performs final catch-up from the dead
  primary's on-disk WAL — reroutes, and retries the one failed call.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time as _time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from ..engine.engine import QueryResult
from ..model.time import MIN_TIME, NOW, TimeError
from ..mvbt.tree import DuplicateKeyError, TimeOrderError
from ..obs import events as _events
from ..obs import federation as _federation
from ..obs import log as _obslog
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..service.sanitizer import sanitized_lock
from ..service.store import StoreError, TemporalStore
from ..sparqlt.ast import Query
from ..sparqlt.parser import parse
from . import executor as _dist
from . import protocol
from .planner import ShardPlanner
from .protocol import (
    KIND_BAD_REQUEST,
    KIND_CONFLICT_DUPLICATE,
    KIND_CONFLICT_MISSING,
    KIND_CONFLICT_TIME,
    KIND_LAGGING,
    ProtocolError,
    recv_message,
    send_message,
)
from .worker import WorkerConfig, worker_main

_QUERIES = _metrics.counter("cluster.coordinator.queries")
_UPDATES = _metrics.counter("cluster.coordinator.updates")
_SINGLE_SHARD = _metrics.counter("cluster.coordinator.single_shard")
_SCATTER = _metrics.counter("cluster.coordinator.scatter_scans")
_FAILOVERS = _metrics.counter("cluster.coordinator.failovers")
_RPC_ERRORS = _metrics.counter("cluster.coordinator.rpc_errors")
_REPLICA_READS = _metrics.counter("cluster.coordinator.replica_reads")
_REPLICA_LAGGING = _metrics.counter("cluster.coordinator.replica_lagging")
_FEDERATION_PULLS = _metrics.counter("cluster.coordinator.federation_pulls")
_FEDERATION_ERRORS = _metrics.counter(
    "cluster.coordinator.federation_errors"
)
_WATERMARK = _metrics.gauge("cluster.coordinator.watermark")
_SHARDS_ALIVE = _metrics.gauge("cluster.coordinator.shards_alive")
_LAG_MAX_LSN = _metrics.gauge("cluster.lag.max_lsn")
_LAG_MAX_SECONDS = _metrics.gauge("cluster.lag.max_seconds")
_RPC_HIST = _metrics.histogram("cluster.coordinator.rpc_ms")

#: kind -> exception raised coordinator-side, mirroring the worker's
#: mapping so HTTP status codes (400/409) come out as in single-process.
_KIND_ERRORS = {
    KIND_BAD_REQUEST: ValueError,
    KIND_CONFLICT_DUPLICATE: DuplicateKeyError,
    KIND_CONFLICT_MISSING: KeyError,
    KIND_CONFLICT_TIME: TimeOrderError,
}


class ShardDown(StoreError):
    """A shard has no live primary and no promotable replica."""


class ReplicaLagging(Exception):
    """Internal: a replica refused a read pinned past its applied LSN."""


class ShardClient:
    """A pooled socket client for one worker process."""

    def __init__(self, address: tuple[str, int], pid: int,
                 directory: Path, timeout: float = 30.0) -> None:
        self.address = address
        self.pid = pid
        self.directory = directory
        self.timeout = timeout
        self._idle: list[socket.socket] = []
        #: guards only the free-list; never held across send/recv.
        self._lock = sanitized_lock(
            threading.Lock(), "cluster.client.pool", allow_blocking=False
        )
        self.alive = True

    def rpc(self, payload: dict, timeout: float | None = None) -> dict:
        """Send one request, raise the mapped exception on error replies.

        Connection-level failures (``OSError`` / :class:`ProtocolError`)
        propagate raw — the caller decides between retry, failover and
        surfacing.

        Trace stitching is centralized here: inside a live trace the
        request carries the coordinator's trace id (so the worker traces
        its side), and a span attachment riding a success reply is
        popped off the envelope and grafted under the caller's current
        span with the send/recv wall-clock stamps.
        """
        if _trace.active() and "trace_id" not in payload:
            payload = dict(payload)
            payload["trace_id"] = _trace.current_trace_id()
        sock = self._checkout()
        sent_ts = _time.time()
        try:
            if timeout is not None:
                sock.settimeout(timeout)
            send_message(sock, payload)
            response = recv_message(sock)
        except (OSError, ProtocolError):
            self._discard(sock)
            raise
        recv_ts = _time.time()
        if timeout is not None:
            sock.settimeout(self.timeout)
        self._checkin(sock)
        if response.get("ok"):
            attachment = response.pop(protocol.TRACE_KEY, None)
            if attachment is not None:
                _trace.graft_remote_trace(
                    attachment, sent_ts=sent_ts, recv_ts=recv_ts
                )
            return response
        kind = response.get("kind")
        message = response.get("error", "worker error")
        if kind == KIND_LAGGING:
            raise ReplicaLagging(message)
        raise _KIND_ERRORS.get(kind, StoreError)(message)

    def _checkout(self) -> socket.socket:
        with self._lock:
            if self._idle:
                return self._idle.pop()
        sock = socket.create_connection(self.address, timeout=self.timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            sock.close()
            raise
        return sock

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            self._idle.append(sock)

    def _discard(self, sock: socket.socket) -> None:
        try:
            sock.close()
        except OSError:
            pass  # already dead; nothing held open

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for sock in idle:
            self._discard(sock)
        self.alive = False


class _Member:
    """One shard's primary plus its surviving replicas."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.primary: ShardClient | None = None
        self.replicas: list[ShardClient] = []
        #: last LSN acknowledged by the primary (pins replica reads).
        self.acked_lsn = 0
        #: serializes promotion — concurrent readers may all observe the
        #: same dead primary, and exactly one of them must promote.
        #: Held across the promote RPC on purpose (allow_blocking).
        self.failover_lock = sanitized_lock(
            threading.Lock(), "cluster.member.failover", allow_blocking=True
        )
        self._rr = 0

    def next_replica(self) -> ShardClient | None:
        live = [r for r in self.replicas if r.alive]
        if not live:
            return None
        self._rr = (self._rr + 1) % len(live)
        return live[self._rr]


class ClusterStore:
    """Sharded, replicated drop-in for :class:`TemporalStore`.

    ``shards=1, replicas=0`` is a useful degenerate topology: every query
    takes the single-shard fast path, which is exactly how the golden
    tests pin 1-shard vs N-shard byte-identity.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        shards: int,
        replicas: int = 0,
        use_optimizer: bool = True,
        group_size: int = 32,
        fsync: bool = True,
        query_cache_size: int | None = 256,
        parallel: bool | None = None,
        rpc_timeout: float = 30.0,
        start_timeout: float = 60.0,
        metrics_refresh: float | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {replicas}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.planner = ShardPlanner(shards)
        self.replicas_per_shard = replicas
        self._rpc_timeout = rpc_timeout
        self._start_timeout = start_timeout
        self._worker_kwargs = dict(
            use_optimizer=use_optimizer,
            group_size=group_size,
            fsync=fsync,
            query_cache_size=query_cache_size,
            parallel=parallel,
        )
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: list = []
        self._members: list[_Member] = []
        #: serializes writes (and the watermark/time-watermark bumps).
        #: Shard RPCs run under it by design (allow_blocking).
        self._writer = sanitized_lock(
            threading.Lock(), "cluster.writer", allow_blocking=True
        )
        self._closed = False
        self._scatter_pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * shards),
            thread_name_prefix="repro-scatter",
        )
        #: guards only the federated-metrics cache; the member RPCs run
        #: outside it so a slow worker never blocks cache readers.
        self._federation_lock = sanitized_lock(
            threading.Lock(), "cluster.federation", allow_blocking=False
        )
        self._federation_cache: dict | None = None
        self._federation_ts = 0.0
        self._federation_stop = threading.Event()
        self._federation_thread: threading.Thread | None = None
        self._spawn_topology()
        self._bootstrap_watermarks()
        if metrics_refresh and metrics_refresh > 0:
            self._federation_thread = threading.Thread(
                target=self._federation_loop, args=(metrics_refresh,),
                name="repro-federation", daemon=True,
            )
            self._federation_thread.start()

    # ------------------------------------------------------------- topology

    def _shard_dir(self, shard_id: int) -> Path:
        return self.directory / f"shard-{shard_id}"

    def _replica_dir(self, shard_id: int, index: int) -> Path:
        return self.directory / f"shard-{shard_id}-replica-{index}"

    def _spawn_topology(self) -> None:
        for shard_id in range(self.planner.shards):
            member = _Member(shard_id)
            member.primary = self._spawn_worker(WorkerConfig(
                shard_id=shard_id, role="shard",
                directory=str(self._shard_dir(shard_id)),
                **self._worker_kwargs,
            ))
            self._members.append(member)
        for shard_id, member in enumerate(self._members):
            for index in range(self.replicas_per_shard):
                member.replicas.append(self._spawn_worker(WorkerConfig(
                    shard_id=shard_id, role="replica",
                    directory=str(self._replica_dir(shard_id, index)),
                    primary_address=member.primary.address,
                    primary_directory=str(self._shard_dir(shard_id)),
                    replica_index=index,
                    **self._worker_kwargs,
                )))
        if _metrics.ENABLED:
            _SHARDS_ALIVE.set(self.planner.shards)

    def _spawn_worker(self, config: WorkerConfig) -> ShardClient:
        parent, child = self._ctx.Pipe()
        try:
            proc = self._ctx.Process(
                target=worker_main, args=(config, child), daemon=True,
                name=f"repro-{config.role}-{config.shard_id}",
            )
            proc.start()
            if not parent.poll(self._start_timeout):
                proc.terminate()
                proc.join(timeout=2.0)
                raise StoreError(
                    f"worker for shard {config.shard_id} ({config.role}) "
                    f"did not report ready within {self._start_timeout}s"
                )
            info = parent.recv()
        finally:
            # Both pipe ends close on every exit: the worker holds its
            # own duplicate of ``child``, and ``parent`` has served its
            # one ready-handshake message.
            child.close()
            parent.close()
        self._procs.append(proc)
        return ShardClient(
            ("127.0.0.1", info["port"]), info["pid"],
            Path(config.directory), timeout=self._rpc_timeout,
        )

    def _bootstrap_watermarks(self) -> None:
        """Adopt revision/time state from pre-existing shard directories.

        Also rebuilds the planner's predicate map from shard-side
        inventories: a restarted coordinator starts with an incomplete
        map (which must broadcast), and only this rebuild makes
        predicate pruning sound again over pre-loaded data.
        """
        self._watermark = 0
        self._time_watermark = MIN_TIME
        self._horizon = 1
        inventories: list[list[str]] = []
        for member in self._members:
            status = member.primary.rpc({"op": "status"})
            member.acked_lsn = status["revision"]
            self._watermark += status["revision"]
            self._horizon = max(self._horizon, status["horizon"])
            inventories.append(
                member.primary.rpc({"op": "predicates"})["predicates"]
            )
        self.planner.rebuild_predicate_map(inventories)
        self._time_watermark = max(MIN_TIME, self._horizon - 1)
        if _metrics.ENABLED:
            _WATERMARK.set(self._watermark)

    # ------------------------------------------------------------- failover

    def _rpc_primary(self, member: _Member, payload: dict,
                     timeout: float | None = None) -> dict:
        """RPC to a shard's primary, promoting a replica on a dead one.

        Loops: each connection failure triggers one (double-checked)
        failover and a retry against whatever primary the member then
        has.  Termination is guaranteed because every failover that acts
        consumes a replica, and an exhausted member raises
        :class:`ShardDown`.
        """
        started = _time.perf_counter()
        attempt = 0
        try:
            while True:
                primary = member.primary
                name = "cluster.rpc" if attempt == 0 else "cluster.rpc.retry"
                try:
                    with _trace.span(name, shard=member.shard_id,
                                     op=payload.get("op")):
                        return primary.rpc(payload, timeout=timeout)
                except (OSError, ProtocolError) as error:
                    if _metrics.ENABLED:
                        _RPC_ERRORS.inc()
                    self._failover(member, primary, error)
                    attempt += 1
        finally:
            if _metrics.ENABLED:
                _RPC_HIST.observe(
                    (_time.perf_counter() - started) * 1000.0
                )

    def _failover(self, member: _Member, dead: ShardClient,
                  cause: Exception) -> None:
        """Promote a replica of ``member`` to primary (or give up).

        Double-checked under the member's failover lock: concurrent
        readers hitting the same dead primary all land here, but only
        the thread still seeing ``dead`` as the member's primary
        promotes — the rest return and retry against the fresh primary,
        instead of closing it and burning another replica.
        """
        with member.failover_lock:
            if member.primary is not dead:
                return  # another thread already promoted; just retry
            dead.close()
            wal_path = str(dead.directory / TemporalStore.WAL_NAME)
            _events.EVENTS.record(
                "cluster.event.failover", level="warning",
                shard_id=member.shard_id, cause=str(cause),
                dead_pid=dead.pid, trace_id=_trace.current_trace_id(),
            )
            while member.replicas:
                candidate = member.replicas.pop(0)
                try:
                    # Intentional hold: promotion must finish under the
                    # member lock or a concurrent writer could route to
                    # a half-promoted replica; bounded by the timeout.
                    response = candidate.rpc(  # repro-lint: disable=RL013
                        {"op": "promote", "wal_path": wal_path},
                        timeout=30.0,
                    )
                except (OSError, ProtocolError) as error:
                    _events.EVENTS.record(
                        "cluster.event.promote_failed", level="warning",
                        shard_id=member.shard_id, error=str(error),
                        dead_pid=candidate.pid,
                    )
                    candidate.close()
                    continue
                member.primary = candidate
                # The promoted primary may hold acknowledged writes the
                # dead one shipped but never reported; adopt its applied
                # LSN so replica pins and update recovery observe them.
                member.acked_lsn = max(
                    member.acked_lsn, response.get("revision", 0)
                )
                if _metrics.ENABLED:
                    _FAILOVERS.inc()
                _events.EVENTS.record(
                    "cluster.event.promoted", level="warning",
                    shard_id=member.shard_id, new_pid=candidate.pid,
                    acked_lsn=member.acked_lsn,
                )
                return
            if _metrics.ENABLED:
                _SHARDS_ALIVE.set(
                    sum(1 for m in self._members if m.primary.alive)
                )
            raise ShardDown(
                f"shard {member.shard_id} is down and no replica could "
                f"be promoted"
            ) from cause

    def _rpc_read(self, member: _Member, payload: dict) -> dict:
        """A read RPC: replica round-robin with primary fallback.

        ``min_lsn`` pins the read to the shard's acked LSN; a lagging
        follower refuses and the primary serves instead, so replica
        reads observe every acknowledged write.
        """
        payload = dict(payload)
        payload["min_lsn"] = member.acked_lsn
        replica = member.next_replica()
        if replica is not None:
            try:
                with _trace.span("cluster.rpc", shard=member.shard_id,
                                 op=payload.get("op"), role="replica"):
                    response = replica.rpc(payload)
                if _metrics.ENABLED:
                    _REPLICA_READS.inc()
                return response
            except ReplicaLagging:
                if _metrics.ENABLED:
                    _REPLICA_LAGGING.inc()
                _events.EVENTS.record(
                    "cluster.event.replica_lagging",
                    shard_id=member.shard_id, min_lsn=member.acked_lsn,
                    trace_id=_trace.current_trace_id(),
                )
            except (OSError, ProtocolError) as error:
                _events.EVENTS.record(
                    "cluster.event.member_dead", level="warning",
                    shard_id=member.shard_id, role="replica",
                    pid=replica.pid, error=str(error),
                    trace_id=_trace.current_trace_id(),
                )
                replica.close()
                member.replicas = [
                    r for r in member.replicas if r is not replica
                ]
        return self._rpc_primary(member, payload)

    # -------------------------------------------------------------- queries

    def query(self, text, profile: bool = False) -> QueryResult:
        """Evaluate a query across the cluster.

        Results are canonically sorted (see
        :func:`repro.cluster.executor.canonical_sort`) on both paths, so
        the same query over the same data is byte-identical regardless of
        shard count or which members served the scans.  ``profile`` is
        accepted for interface parity but profiles are per-process; the
        coordinator does not stitch shard-side operator trees.
        """
        if self._closed:
            raise StoreError("store is closed")
        if _metrics.ENABLED:
            _QUERIES.inc()
        with _trace.span("cluster.query"):
            query = parse(text) if isinstance(text, str) else text
            target = _dist.whole_query_shard(query, self.planner)
            if (target is not None and not isinstance(text, str)
                    and not query.is_simple):
                # encode_query carries only the simple conjunctive shape
                # (select/patterns/filters); forwarding a pre-parsed
                # UNION/OPTIONAL query would silently drop its group
                # algebra, so it goes through the distributed path.
                target = None
            watermark = self._watermark
            if target is not None:
                if _metrics.ENABLED:
                    _SINGLE_SHARD.inc()
                response = self._rpc_read(self._members[target], {
                    "op": "query",
                    "text": text if isinstance(text, str) else None,
                    "horizon": self._horizon,
                } if isinstance(text, str) else {
                    "op": "scan",
                    "query": protocol.encode_query(query),
                    "horizon": self._horizon,
                })
                rows = [
                    protocol.decode_row(row) for row in response["rows"]
                ]
                rows = _dist.canonical_sort(rows, response["variables"])
                result = QueryResult(
                    variables=response["variables"], rows=rows
                )
            else:
                rows = _dist.distributed_query(
                    query, self.planner, self._scatter_many, self._horizon
                )
                result = QueryResult(variables=query.select, rows=rows)
            result.revision = watermark
            return result

    def _scatter_many(
        self, requests: list[tuple[Query, list[int]]]
    ) -> list[list[dict]]:
        """Fan every (sub-query, shards) request out concurrently."""
        futures = []
        for sub, shard_ids in requests:
            if _metrics.ENABLED:
                _SCATTER.inc(len(shard_ids))
            payload = {
                "op": "scan",
                "query": protocol.encode_query(sub),
                "horizon": self._horizon,
            }
            futures.append([
                _trace.submit(
                    self._scatter_pool, self._rpc_read,
                    self._members[shard_id], payload,
                )
                for shard_id in shard_ids
            ])
        gathered: list[list[dict]] = []
        for group in futures:
            rows: list[dict] = []
            for future in group:
                response = future.result()
                rows.extend(
                    protocol.decode_row(row) for row in response["rows"]
                )
            gathered.append(rows)
        return gathered

    # -------------------------------------------------------------- updates

    def insert(self, subject: str, predicate: str, object: str,
               time: int) -> int:
        return self._update("insert", subject, predicate, object, time)

    def delete(self, subject: str, predicate: str, object: str,
               time: int) -> int:
        return self._update("delete", subject, predicate, object, time)

    def _update(self, op: str, subject: str, predicate: str, object: str,
                time: int) -> int:
        if self._closed:
            raise StoreError("store is closed")
        if not (MIN_TIME <= time < NOW):
            raise ValueError(
                f"update time {time!r} outside [{MIN_TIME}, NOW)"
            )
        with self._writer:
            # Cluster-wide time ordering: each shard alone only enforces
            # its local maximum, which would let per-shard histories
            # interleave chronons inconsistently.
            if time < self._time_watermark:
                raise TimeOrderError(
                    f"update at {time} before cluster watermark "
                    f"{self._time_watermark}"
                )
            shard_id = self.planner.note_write(subject, predicate)
            member = self._members[shard_id]
            # trace_id rides along inside ShardClient.rpc when tracing.
            payload = {
                "op": "update", "update": op, "subject": subject,
                "predicate": predicate, "object": object, "time": time,
            }
            acked_before = member.acked_lsn
            primary_before = member.primary
            try:
                # Intentional hold: the writer lock serialises updates
                # cluster-wide, so the shard RPC happens under it by
                # design; bounded by the per-RPC socket timeout.
                response = self._rpc_primary(member, payload)  # repro-lint: disable=RL013
            except (DuplicateKeyError, KeyError) as conflict:
                if member.primary is primary_before:
                    raise  # genuine conflict from a healthy primary
                # The old primary may have applied (and shipped) the
                # write before dying without replying; a conflict from
                # the retried RPC on the promoted primary can then be
                # the write itself.  Only its WAL can tell.
                # Intentional hold: recovery re-reads the shard WAL
                # under the same writer lock as the failed update.
                response = self._recover_update(  # repro-lint: disable=RL013
                    member, payload, acked_before)
                if response is None:
                    raise conflict
            member.acked_lsn = response["revision"]
            self._watermark += 1
            self._time_watermark = max(self._time_watermark, time)
            self._horizon = max(self._horizon, time + 1)
            if _metrics.ENABLED:
                _UPDATES.inc()
                _WATERMARK.set(self._watermark)
            return self._watermark

    def _recover_update(self, member: _Member, payload: dict,
                        acked_before: int) -> dict | None:
        """Decide whether a conflicting post-failover retry committed.

        The promoted primary caught up from the dead primary's WAL, so
        an update that was applied but never acknowledged appears in its
        log past the pre-write acked LSN.  Returns a synthesized success
        response when the exact record is found — the write committed,
        and surfacing a 409 would misreport it — or ``None`` for a
        genuine conflict.  A promoted primary that already checkpointed
        (truncating the record) conservatively reports the conflict.
        """
        wanted = (payload["update"], payload["subject"],
                  payload["predicate"], payload["object"],
                  payload["time"])
        try:
            shipped = self._rpc_primary(
                member, {"op": "wal_since", "lsn": acked_before}
            )
            status = self._rpc_primary(member, {"op": "status"})
        except StoreError:
            return None
        for fields in shipped.get("records", []):
            record = protocol.decode_wal_record(fields)
            if (record.op, record.subject, record.predicate,
                    record.object, record.time) == wanted:
                _events.EVENTS.record(
                    "cluster.event.update_recovered", level="warning",
                    shard_id=member.shard_id, lsn=record.lsn,
                    trace_id=_trace.current_trace_id(),
                )
                return {"ok": True, "lsn": record.lsn,
                        "revision": status["revision"]}
        return None

    # -------------------------------------------------------------- loading

    def load_dataset(self, graph) -> None:
        """Bulk-load an initial dataset: partition, load every primary
        (each checkpoints, making the load durable), then resync the
        replicas — bulk loads bypass the WAL, so followers must adopt the
        fresh snapshot rather than wait for records that will never ship.
        """
        if self._closed:
            raise StoreError("store is closed")
        with self._writer:
            parts = self.planner.partition(graph)
            for member, part in zip(self._members, parts):
                rows = [
                    (t.subject, t.predicate, t.object, t.period.start,
                     None if t.period.end == NOW else t.period.end)
                    for t in part.triples()
                ]
                # Intentional hold: bulk load is exclusive by contract;
                # the writer lock stays held across the shard RPCs.
                self._rpc_primary(  # repro-lint: disable=RL013
                    member, {"op": "load", "rows": rows}, timeout=300.0
                )
            for member in self._members:
                for replica in list(member.replicas):
                    try:
                        # Intentional hold: replicas resync from the
                        # just-loaded primary before writes resume.
                        replica.rpc(  # repro-lint: disable=RL013
                            {"op": "resync"}, timeout=300.0)
                    except (OSError, ProtocolError) as error:
                        _events.EVENTS.record(
                            "cluster.event.member_dead", level="warning",
                            shard_id=member.shard_id, role="replica",
                            pid=replica.pid, error=str(error),
                        )
                        replica.close()
                        member.replicas.remove(replica)
        self._bootstrap_watermarks()

    # ---------------------------------------------------------- maintenance

    def checkpoint(self) -> Path:
        """Checkpoint every member, waiting for replicas to catch up first.

        The primary's checkpoint truncates its WAL; a follower still
        missing truncated records would hit a replication gap and pay a
        full snapshot resync.  Waiting (bounded) for followers to reach
        the acked LSN makes the common case gap-free; a straggler past
        the bound resyncs, which is safe — just slower.
        """
        if self._closed:
            raise StoreError("store is closed")
        with self._writer:
            # Intentional holds below: checkpoint needs a write-quiesced
            # cluster, so the catch-up wait and the checkpoint RPCs all
            # run under the writer lock; each is deadline-bounded.
            for member in self._members:
                for replica in member.replicas:
                    self._wait_for_replica(member, replica)  # repro-lint: disable=RL013
                self._rpc_primary(member, {"op": "checkpoint"})  # repro-lint: disable=RL013
                for replica in member.replicas:
                    try:
                        replica.rpc({"op": "checkpoint"})  # repro-lint: disable=RL013
                    except (OSError, ProtocolError, StoreError) as error:
                        _obslog.LOGGER.warning(
                            "cluster_replica_checkpoint_failed",
                            shard=member.shard_id, error=str(error),
                        )
        return self.directory

    def _wait_for_replica(self, member: _Member, replica: ShardClient,
                          deadline: float = 5.0) -> None:
        waited = 0.0
        while waited < deadline:
            try:
                status = replica.rpc({"op": "status"})
            except (OSError, ProtocolError):
                return  # dead replica cannot catch up; checkpoint anyway
            if status["revision"] >= member.acked_lsn:
                return
            _time.sleep(0.05)
            waited += 0.05

    def refresh_statistics(self) -> bool:
        """Eagerly rebuild optimizer statistics on every primary.

        Dispatches the dedicated ``refresh_stats`` op — *not* a
        checkpoint: checkpoints truncate WALs and belong behind
        :meth:`checkpoint`'s replica catch-up wait.
        """
        if self._closed:
            raise StoreError("store is closed")
        refreshed = False
        for member in self._members:
            response = self._rpc_primary(member, {"op": "refresh_stats"})
            refreshed = bool(response.get("refreshed")) or refreshed
        return refreshed

    # ------------------------------------------------------------ reporting

    @property
    def revision(self) -> int:
        """The cluster watermark (total applied LSNs across shards)."""
        return self._watermark

    @property
    def live_facts(self) -> int:
        return sum(
            status["live_facts"] for status in self._primary_statuses()
        )

    @property
    def cached_results(self) -> int | None:
        return None

    def _primary_statuses(self) -> list[dict]:
        return [
            self._rpc_primary(member, {"op": "status"})
            for member in self._members
        ]

    def cluster_status(self) -> dict:
        """Per-member health: role, applied LSN, liveness, pid."""
        members = []
        for member in self._members:
            entry = {
                "shard": member.shard_id,
                "acked_lsn": member.acked_lsn,
            }
            try:
                status = member.primary.rpc({"op": "status"}, timeout=5.0)
                entry["primary"] = {
                    "role": status["role"], "pid": status["pid"],
                    "applied_lsn": status["revision"],
                    "live_facts": status["live_facts"], "alive": True,
                }
            except (OSError, ProtocolError) as error:
                entry["primary"] = {
                    "role": "shard", "pid": member.primary.pid,
                    "alive": False, "error": str(error),
                }
            entry["replicas"] = []
            for replica in member.replicas:
                try:
                    status = replica.rpc({"op": "status"}, timeout=5.0)
                    entry["replicas"].append({
                        "role": status["role"], "pid": status["pid"],
                        "applied_lsn": status["revision"], "alive": True,
                        "lag_lsn": max(
                            0, member.acked_lsn - status["revision"]
                        ),
                        "lag_seconds": status.get("lag_seconds"),
                    })
                except (OSError, ProtocolError) as error:
                    entry["replicas"].append({
                        "role": "replica", "pid": replica.pid,
                        "alive": False, "error": str(error),
                    })
            members.append(entry)
        return {
            "shards": self.planner.shards,
            "replicas_per_shard": self.replicas_per_shard,
            "watermark": self._watermark,
            "horizon": self._horizon,
            "members": members,
        }

    def storage_report(self) -> dict:
        """Cluster-shaped ``/debug/storage`` payload."""
        return {"cluster": self.cluster_status()}

    # ------------------------------------------------------------ federation

    def _member_rows(self) -> list[dict]:
        """One row per worker process, for metrics/event pulls."""
        rows = []
        for member in self._members:
            rows.append({
                "client": member.primary, "shard": member.shard_id,
                "role": "shard", "replica": None,
                "acked_lsn": member.acked_lsn,
            })
            for index, replica in enumerate(member.replicas):
                rows.append({
                    "client": replica, "shard": member.shard_id,
                    "role": "replica", "replica": index,
                    "acked_lsn": member.acked_lsn,
                })
        return rows

    def _pull_member(self, row: dict) -> dict:
        """Pull one member's registry snapshot (plus lag, for replicas).

        Never raises: a dead or unreachable member comes back as an
        ``alive: false`` entry so a single crashed worker cannot take
        down the whole ``/metrics?scope=cluster`` scrape.
        """
        client: ShardClient = row["client"]
        entry: dict = {
            "shard": row["shard"], "role": row["role"],
            "pid": client.pid, "alive": False, "enabled": False,
            "metrics": {},
        }
        if row["replica"] is not None:
            entry["replica"] = row["replica"]
        if not client.alive:
            return entry
        try:
            response = client.rpc({"op": "metrics"}, timeout=5.0)
        except (OSError, ProtocolError, StoreError) as error:
            if _metrics.ENABLED:
                _FEDERATION_ERRORS.inc()
            entry["error"] = str(error)
            return entry
        entry["alive"] = True
        entry["enabled"] = bool(response.get("enabled"))
        entry["metrics"] = response.get("metrics") or {}
        if row["role"] == "replica":
            applied = int(response.get("revision") or 0)
            entry["applied_lsn"] = applied
            entry["lag_lsn"] = max(0, row["acked_lsn"] - applied)
            entry["lag_seconds"] = response.get("lag_seconds")
        return entry

    def federated_metrics(self, max_age: float = 2.0,
                          force: bool = False) -> dict:
        """Pull and merge every member's metrics snapshot.

        Returns the federated shape ``/metrics?scope=cluster`` serves:
        ``members`` (one raw entry per process, coordinator first, with
        per-replica ``lag_lsn``/``lag_seconds``) and ``groups`` (one
        merged snapshot per ``(shard, role)`` label set — see
        :func:`repro.obs.federation.build_groups`).  Pulls within
        ``max_age`` seconds are served from cache unless ``force``;
        the background refresh loop (``metrics_refresh``) keeps the
        cache warm so scrapes are cheap.
        """
        if self._closed:
            raise StoreError("store is closed")
        if not force:
            with self._federation_lock:
                cached = self._federation_cache
                if (cached is not None
                        and _time.time() - self._federation_ts < max_age):
                    return cached
        if _metrics.ENABLED:
            _FEDERATION_PULLS.inc()
        members: list[dict] = [{
            "role": "coordinator", "pid": os.getpid(), "alive": True,
            "enabled": _metrics.ENABLED,
            "metrics": (
                _metrics.REGISTRY.snapshot() if _metrics.ENABLED else {}
            ),
        }]
        rows = self._member_rows()
        futures = [
            self._scatter_pool.submit(self._pull_member, row)
            for row in rows
        ]
        members.extend(future.result() for future in futures)
        lag_lsn = [
            entry["lag_lsn"] for entry in members
            if entry.get("lag_lsn") is not None
        ]
        lag_seconds = [
            entry["lag_seconds"] for entry in members
            if entry.get("lag_seconds") is not None
        ]
        if _metrics.ENABLED:
            _LAG_MAX_LSN.set(max(lag_lsn, default=0))
            _LAG_MAX_SECONDS.set(max(lag_seconds, default=0.0))
        federated = {
            "scope": "cluster",
            "collected_at": round(_time.time(), 3),
            "watermark": self._watermark,
            "members": members,
            "groups": _federation.build_groups(members),
        }
        with self._federation_lock:
            self._federation_cache = federated
            self._federation_ts = _time.time()
        return federated

    def _federation_loop(self, interval: float) -> None:
        while not self._federation_stop.wait(interval):
            if self._closed:
                return
            try:
                self.federated_metrics(force=True)
            except (StoreError, RuntimeError):
                # closed mid-refresh (RuntimeError: pool shut down)
                return

    def cluster_events(self, limit: int = 100) -> list[dict]:
        """Coordinator + member event rings merged, newest first."""
        if self._closed:
            raise StoreError("store is closed")
        events = list(_events.EVENTS.recent(limit))
        for row in self._member_rows():
            client: ShardClient = row["client"]
            if not client.alive:
                continue
            try:
                response = client.rpc(
                    {"op": "events", "limit": limit}, timeout=5.0
                )
            except (OSError, ProtocolError, StoreError):
                continue
            events.extend(response.get("events") or [])
        events.sort(key=lambda event: event.get("ts", 0.0), reverse=True)
        return events[:limit]

    # -------------------------------------------------------------- closing

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._federation_stop.set()
        if self._federation_thread is not None:
            self._federation_thread.join(timeout=2.0)
        self._scatter_pool.shutdown(wait=False)
        clients = []
        for member in self._members:
            clients.append(member.primary)
            clients.extend(member.replicas)
        for client in clients:
            if not client.alive:
                continue
            try:
                client.rpc({"op": "shutdown"}, timeout=5.0)
            except (OSError, ProtocolError) as error:
                _obslog.LOGGER.debug(
                    "cluster_shutdown_rpc_failed", error=str(error)
                )
            client.close()
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)

    def __enter__(self) -> "ClusterStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
