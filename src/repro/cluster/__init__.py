"""Sharded multi-process execution with WAL-shipped read replicas.

The single-process serving stack (:mod:`repro.service`) is GIL-bound: the
PR 4 thread-pool scans overlap I/O but not Python execution, so HTTP read
throughput tops out near one core.  This package scales *out* instead of
up, on one box or many:

* :mod:`repro.cluster.planner` — hash-partitions triples on subject
  across N shared-nothing shards (predicate fallback for unbound-subject
  patterns), deterministically (``crc32``, never the salted ``hash()``).
* :mod:`repro.cluster.worker` — one process per shard (and per replica),
  each running its own full :class:`~repro.service.store.TemporalStore`
  (engine + WAL + snapshots) behind a length-prefixed socket protocol.
* :mod:`repro.cluster.coordinator` — the router the HTTP server fronts:
  scatters pattern scans, gathers and joins partial bindings with the
  engine's own streaming operators, routes writes to the owning shard
  under a cluster-wide revision watermark, and promotes replicas when a
  shard dies.
* :mod:`repro.cluster.executor` — the distributed query algebra
  (single-shard fast path vs. per-pattern scatter/gather).

Replication ships WAL records from each primary to its followers
(:meth:`~repro.service.wal.WriteAheadLog.read_from` tailing); followers
serve revision-pinned reads and take over on worker death.
"""

from .coordinator import ClusterStore
from .planner import ShardPlanner, shard_of

__all__ = ["ClusterStore", "ShardPlanner", "shard_of"]
