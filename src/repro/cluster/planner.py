"""Shard assignment: who owns a triple, who can answer a pattern.

Triples are hash-partitioned on **subject**: the four MVBT indices all key
on whole (s, p, o) permutations, so any pattern with a bound subject is
answerable by exactly one shard, and every update — which names its full
triple — has exactly one owner.  The hash is ``zlib.crc32`` of the UTF-8
term, *never* Python's builtin ``hash()``: string hashing is salted per
process (PYTHONHASHSEED), and a shard map that moves between runs would
orphan every triple on restart.

Patterns with an unbound subject cannot be routed by subject; the planner
falls back to the **predicate map** built during partitioning (predicate
-> shards that hold at least one triple with it, maintained on writes).
A predicate-bound pattern then fans out only to the shards that can
possibly match; anything less constrained broadcasts to all shards —
always correct, since shards are disjoint by subject and partial results
union cleanly.
"""

from __future__ import annotations

import zlib

from ..model.graph import TemporalGraph
from ..sparqlt.ast import QuadPattern, TermConst


def shard_of(term: str, shards: int) -> int:
    """The shard owning subject ``term`` in an N-shard topology.

    Deterministic across processes, runs, and machines (crc32 of UTF-8).
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    return zlib.crc32(term.encode("utf-8")) % shards


class ShardPlanner:
    """Partitions datasets and routes patterns for an N-shard topology.

    Instances are plain picklable state (shard count + predicate map), so
    a coordinator restart — or a test pickling the planner — reproduces
    identical routing.
    """

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.shards = shards
        #: predicate -> sorted shard ids holding at least one such triple.
        self.predicate_map: dict[str, list[int]] = {}

    # ---------------------------------------------------------- partitioning

    def partition(self, graph: TemporalGraph) -> list[TemporalGraph]:
        """Split ``graph`` into one disjoint sub-graph per shard.

        Each sub-graph gets its own dictionary (shared-nothing: shard
        dictionaries encode only local terms, so ids differ per shard —
        which is why the coordinator joins on decoded strings).  The
        predicate map is rebuilt as a side effect.
        """
        parts = [TemporalGraph() for _ in range(self.shards)]
        predicate_shards: dict[str, set[int]] = {}
        for triple in graph.triples():
            shard = shard_of(triple.subject, self.shards)
            parts[shard].add(
                triple.subject, triple.predicate, triple.object,
                triple.period.start, triple.period.end,
            )
            predicate_shards.setdefault(triple.predicate, set()).add(shard)
        self.predicate_map = {
            predicate: sorted(owners)
            for predicate, owners in sorted(predicate_shards.items())
        }
        return parts

    def note_write(self, subject: str, predicate: str) -> int:
        """Record a write's predicate in the map; returns the owner shard."""
        shard = shard_of(subject, self.shards)
        owners = self.predicate_map.setdefault(predicate, [])
        if shard not in owners:
            owners.append(shard)
            owners.sort()
        return shard

    # --------------------------------------------------------------- routing

    def shards_for_pattern(self, pattern: QuadPattern) -> list[int]:
        """The shards that must be consulted for ``pattern``.

        Bound subject -> exactly its owner.  Unbound subject but bound
        predicate -> the predicate's known owners (possibly none).  The
        predicate map is only a *pruning* aid: when it has no entry for a
        bound predicate the pattern still broadcasts, because an empty
        map also arises from a coordinator restarted over pre-loaded
        shard directories, where routing must stay correct without it.
        """
        if isinstance(pattern.subject, TermConst):
            return [shard_of(pattern.subject.value, self.shards)]
        if isinstance(pattern.predicate, TermConst):
            owners = self.predicate_map.get(pattern.predicate.value)
            if owners is not None and self.predicate_map:
                return list(owners)
        return list(range(self.shards))

    def single_shard_for(self, patterns: list[QuadPattern]) -> int | None:
        """The one shard able to answer *all* patterns, or ``None``.

        This is the fast-path test: when every pattern's subject is a
        constant hashing to the same shard, the whole query (joins,
        filters, projection) runs there untouched.
        """
        target: int | None = None
        if not patterns:
            return None
        for pattern in patterns:
            if not isinstance(pattern.subject, TermConst):
                return None
            shard = shard_of(pattern.subject.value, self.shards)
            if target is None:
                target = shard
            elif shard != target:
                return None
        return target
