"""Shard assignment: who owns a triple, who can answer a pattern.

Triples are hash-partitioned on **subject**: the four MVBT indices all key
on whole (s, p, o) permutations, so any pattern with a bound subject is
answerable by exactly one shard, and every update — which names its full
triple — has exactly one owner.  The hash is ``zlib.crc32`` of the UTF-8
term, *never* Python's builtin ``hash()``: string hashing is salted per
process (PYTHONHASHSEED), and a shard map that moves between runs would
orphan every triple on restart.

Patterns with an unbound subject cannot be routed by subject; the planner
falls back to the **predicate map** (predicate -> shards that hold at
least one triple with it, maintained on writes).  Pruning by the map is
only sound while the map is **complete** — covering every triple the
cluster holds — which is true exactly when it was built by
:meth:`ShardPlanner.partition` (bulk load) or rebuilt from shard-side
inventories via :meth:`ShardPlanner.rebuild_predicate_map` (coordinator
bootstrap over pre-existing shard directories).  Before that,
``note_write`` entries are additive hints only: a restarted coordinator
that has observed one write of predicate P must not route P to that one
shard while pre-loaded P triples live elsewhere, so an incomplete map
broadcasts.  A predicate-bound pattern under a complete map fans out only
to the shards that can possibly match; anything less constrained
broadcasts to all shards — always correct, since shards are disjoint by
subject and partial results union cleanly.
"""

from __future__ import annotations

import zlib

from ..model.graph import TemporalGraph
from ..sparqlt.ast import QuadPattern, TermConst


def shard_of(term: str, shards: int) -> int:
    """The shard owning subject ``term`` in an N-shard topology.

    Deterministic across processes, runs, and machines (crc32 of UTF-8).
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    return zlib.crc32(term.encode("utf-8")) % shards


class ShardPlanner:
    """Partitions datasets and routes patterns for an N-shard topology.

    Instances are plain picklable state (shard count + predicate map), so
    a coordinator restart — or a test pickling the planner — reproduces
    identical routing.
    """

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.shards = shards
        #: predicate -> sorted shard ids holding at least one such triple.
        self.predicate_map: dict[str, list[int]] = {}
        #: True only while the map covers *every* triple in the cluster
        #: (set by :meth:`partition` / :meth:`rebuild_predicate_map`).
        #: A fresh planner over pre-existing shard directories starts
        #: incomplete, and an incomplete map must never prune.
        self.predicate_map_complete = False

    # ---------------------------------------------------------- partitioning

    def partition(self, graph: TemporalGraph) -> list[TemporalGraph]:
        """Split ``graph`` into one disjoint sub-graph per shard.

        Each sub-graph gets its own dictionary (shared-nothing: shard
        dictionaries encode only local terms, so ids differ per shard —
        which is why the coordinator joins on decoded strings).  The
        predicate map is rebuilt as a side effect.
        """
        parts = [TemporalGraph() for _ in range(self.shards)]
        predicate_shards: dict[str, set[int]] = {}
        for triple in graph.triples():
            shard = shard_of(triple.subject, self.shards)
            parts[shard].add(
                triple.subject, triple.predicate, triple.object,
                triple.period.start, triple.period.end,
            )
            predicate_shards.setdefault(triple.predicate, set()).add(shard)
        self.predicate_map = {
            predicate: sorted(owners)
            for predicate, owners in sorted(predicate_shards.items())
        }
        self.predicate_map_complete = True
        return parts

    def rebuild_predicate_map(self, inventories: list[list[str]]) -> None:
        """Rebuild the map from per-shard predicate inventories.

        ``inventories[shard]`` lists the distinct predicates that shard
        holds.  The coordinator calls this at bootstrap, so a restart
        over pre-existing shard directories regains a complete —
        pruning-capable — map instead of the incomplete one that
        ``note_write`` alone would accumulate.
        """
        if len(inventories) != self.shards:
            raise ValueError(
                f"expected {self.shards} inventories, "
                f"got {len(inventories)}"
            )
        predicate_shards: dict[str, set[int]] = {}
        for shard, predicates in enumerate(inventories):
            for predicate in predicates:
                predicate_shards.setdefault(predicate, set()).add(shard)
        self.predicate_map = {
            predicate: sorted(owners)
            for predicate, owners in sorted(predicate_shards.items())
        }
        self.predicate_map_complete = True

    def note_write(self, subject: str, predicate: str) -> int:
        """Record a write's predicate in the map; returns the owner shard.

        Entries are additive: they keep a complete map complete, and on
        an incomplete map they are inert hints (routing broadcasts until
        :meth:`partition` or :meth:`rebuild_predicate_map` runs).
        """
        shard = shard_of(subject, self.shards)
        owners = self.predicate_map.setdefault(predicate, [])
        if shard not in owners:
            owners.append(shard)
            owners.sort()
        return shard

    # --------------------------------------------------------------- routing

    def shards_for_pattern(self, pattern: QuadPattern) -> list[int]:
        """The shards that must be consulted for ``pattern``.

        Bound subject -> exactly its owner.  Unbound subject but bound
        predicate -> the predicate's known owners, but only while the
        map is complete: an incomplete map (coordinator restarted over
        pre-loaded shard directories, before ``rebuild_predicate_map``)
        may know only the shards written *since startup*, and pruning by
        it would silently drop pre-loaded triples on other shards — so
        it broadcasts instead.  A complete map with no entry for the
        predicate still broadcasts, which is always correct, just
        conservative.
        """
        if isinstance(pattern.subject, TermConst):
            return [shard_of(pattern.subject.value, self.shards)]
        if isinstance(pattern.predicate, TermConst) \
                and self.predicate_map_complete:
            owners = self.predicate_map.get(pattern.predicate.value)
            if owners is not None:
                return list(owners)
        return list(range(self.shards))

    def single_shard_for(self, patterns: list[QuadPattern]) -> int | None:
        """The one shard able to answer *all* patterns, or ``None``.

        This is the fast-path test: when every pattern's subject is a
        constant hashing to the same shard, the whole query (joins,
        filters, projection) runs there untouched.
        """
        target: int | None = None
        if not patterns:
            return None
        for pattern in patterns:
            if not isinstance(pattern.subject, TermConst):
                return None
            shard = shard_of(pattern.subject.value, self.shards)
            if target is None:
                target = shard
            elif shard != target:
                return None
        return target
