"""The coordinator <-> worker wire protocol.

Length-prefixed JSON frames over TCP: ``[u32 length][payload]`` where the
payload is one UTF-8 JSON object.  Requests carry an ``"op"`` plus
op-specific fields (and optionally the coordinator's ``trace_id`` so the
worker's spans join the request's trace); responses are
``{"ok": true, ...}`` or ``{"ok": false, "error": msg, "kind": k}``.
The ``kind`` maps a worker-side exception back to the coordinator-side
class, so HTTP status mapping (400/409) behaves exactly as in the
single-process server.

This module also carries the serialization helpers shared by both ends:
result rows (temporal bindings as ``[[start, end|null], ...]``, matching
the HTTP layer), WAL records, and parsed sub-query ASTs (the scatter path
ships single-pattern :class:`~repro.sparqlt.ast.Query` objects rather
than re-rendered text).
"""

from __future__ import annotations

import json
import os
import socket
import struct

from ..model.time import NOW, Period, PeriodSet
from ..service.sanitizer import check_blocking
from ..service.wal import WalRecord
from ..sparqlt.ast import (
    And,
    Compare,
    Expr,
    FuncCall,
    Literal,
    Not,
    Or,
    Query,
    QuadPattern,
    TermConst,
    TimeConst,
    Var,
)

_LEN = struct.Struct(">I")

#: Largest accepted frame (64 MiB), mirroring the HTTP body cap.
MAX_FRAME = 64 * 1024 * 1024

#: Error kinds a worker reports, mapped to exceptions coordinator-side.
KIND_BAD_REQUEST = "bad_request"
KIND_CONFLICT_DUPLICATE = "conflict_duplicate"
KIND_CONFLICT_MISSING = "conflict_missing"
KIND_CONFLICT_TIME = "conflict_time"
KIND_LAGGING = "lagging"
KIND_INTERNAL = "internal"


class ProtocolError(Exception):
    """A malformed or truncated frame on the cluster socket."""


def send_message(sock: socket.socket, payload: dict) -> None:
    """Write one length-prefixed JSON frame."""
    check_blocking("protocol.send_message")
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME:
        raise ProtocolError(f"frame too large: {len(data)} bytes")
    sock.sendall(_LEN.pack(len(data)) + data)


def recv_message(sock: socket.socket) -> dict:
    """Read one length-prefixed JSON frame (raises on EOF/truncation)."""
    check_blocking("protocol.recv_message")
    header = _recv_exact(sock, _LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame too large: {length} bytes")
    data = _recv_exact(sock, length)
    try:
        payload = json.loads(data)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"bad frame payload: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return payload


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ------------------------------------------------------------- result rows


def encode_value(value):
    """A binding value -> JSON: PeriodSets as ``[[start, end|null], ...]``."""
    if isinstance(value, PeriodSet):
        return [[p.start, None if p.end == NOW else p.end] for p in value]
    return value


def decode_value(value):
    """Inverse of :func:`encode_value` (lists become PeriodSets)."""
    if isinstance(value, list):
        return PeriodSet(
            Period(start, NOW if end is None else end)
            for start, end in value
        )
    return value


def encode_row(row: dict) -> dict:
    return {name: encode_value(value) for name, value in row.items()}


def decode_row(row: dict) -> dict:
    return {name: decode_value(value) for name, value in row.items()}


# --------------------------------------------------------- trace envelopes
#
# When a request payload carries the coordinator's ``trace_id``, the
# worker traces its side of the op and rides the finished, size-bounded
# span subtree back on the success response under ``TRACE_KEY``.  The
# coordinator pops the attachment off the reply before anything else
# sees it and grafts the subtree under its live ``cluster.rpc`` span
# (see :func:`repro.obs.trace.graft_remote_trace`), which uses the
# ``recv_ts``/``send_ts`` stamps for the per-hop clock-skew estimate.

#: Reserved response-envelope key carrying a worker's exported spans.
TRACE_KEY = "trace"


def encode_trace_envelope(trace, *, shard_id: int, role: str,
                          recv_ts: float, send_ts: float) -> dict:
    """Serialize a worker-side finished trace for the response envelope."""
    from ..obs import trace as _trace

    return {
        "trace_id": trace.trace_id,
        "shard_id": shard_id,
        "role": role,
        "pid": os.getpid(),
        "epoch": trace.epoch,
        "recv_ts": recv_ts,
        "send_ts": send_ts,
        "root": _trace.export_spans(trace.root),
    }


# ------------------------------------------------------------- WAL records


def encode_wal_record(record: WalRecord) -> list:
    return [record.lsn, record.op, record.subject, record.predicate,
            record.object, record.time]


def decode_wal_record(fields: list) -> WalRecord:
    lsn, op, subject, predicate, object_, time = fields
    return WalRecord(lsn, op, subject, predicate, object_, time)


# ---------------------------------------------------------- sub-query ASTs
#
# The scatter path ships *parsed* single-pattern sub-queries: re-rendering
# SPARQLT text would have to re-quote literals and re-format dates, and a
# round trip through the parser is both slower and a second place for the
# grammar to live.  Only the simple conjunctive shape is encoded — the
# coordinator handles UNION/OPTIONAL algebra itself and only ever scatters
# plain pattern + filter sub-queries.


def encode_query(query: Query) -> dict:
    return {
        "select": list(query.select),
        "patterns": [_encode_pattern(p) for p in query.patterns],
        "filters": [encode_expr(f) for f in query.filters],
    }


def decode_query(payload: dict) -> Query:
    return Query(
        select=list(payload["select"]),
        patterns=[_decode_pattern(p) for p in payload["patterns"]],
        filters=[decode_expr(f) for f in payload["filters"]],
    )


def _encode_pattern(pattern: QuadPattern) -> dict:
    return {
        "s": _encode_term(pattern.subject),
        "p": _encode_term(pattern.predicate),
        "o": _encode_term(pattern.object),
        "t": _encode_term(pattern.time),
    }


def _decode_pattern(payload: dict) -> QuadPattern:
    return QuadPattern(
        _decode_term(payload["s"]),
        _decode_term(payload["p"]),
        _decode_term(payload["o"]),
        _decode_term(payload["t"]),
    )


def _encode_term(term) -> dict:
    if isinstance(term, Var):
        return {"var": term.name}
    if isinstance(term, TermConst):
        return {"term": term.value}
    if isinstance(term, TimeConst):
        return {"time": term.chronon}
    raise ProtocolError(f"unencodable pattern term: {term!r}")


def _decode_term(payload: dict):
    if "var" in payload:
        return Var(payload["var"])
    if "term" in payload:
        return TermConst(payload["term"])
    if "time" in payload:
        return TimeConst(payload["time"])
    raise ProtocolError(f"undecodable pattern term: {payload!r}")


def encode_expr(expr: Expr) -> dict:
    if isinstance(expr, Var):
        return {"k": "var", "name": expr.name}
    if isinstance(expr, Literal):
        return {"k": "lit", "value": expr.value, "kind": expr.kind}
    if isinstance(expr, FuncCall):
        return {"k": "func", "name": expr.name,
                "arg": encode_expr(expr.arg)}
    if isinstance(expr, Compare):
        return {"k": "cmp", "op": expr.op,
                "left": encode_expr(expr.left),
                "right": encode_expr(expr.right)}
    if isinstance(expr, And):
        return {"k": "and", "left": encode_expr(expr.left),
                "right": encode_expr(expr.right)}
    if isinstance(expr, Or):
        return {"k": "or", "left": encode_expr(expr.left),
                "right": encode_expr(expr.right)}
    if isinstance(expr, Not):
        return {"k": "not", "operand": encode_expr(expr.operand)}
    raise ProtocolError(f"unencodable filter expression: {expr!r}")


def decode_expr(payload: dict) -> Expr:
    kind = payload.get("k")
    if kind == "var":
        return Var(payload["name"])
    if kind == "lit":
        return Literal(payload["value"], payload["kind"])
    if kind == "func":
        return FuncCall(payload["name"], decode_expr(payload["arg"]))
    if kind == "cmp":
        return Compare(payload["op"], decode_expr(payload["left"]),
                       decode_expr(payload["right"]))
    if kind == "and":
        return And(decode_expr(payload["left"]),
                   decode_expr(payload["right"]))
    if kind == "or":
        return Or(decode_expr(payload["left"]),
                  decode_expr(payload["right"]))
    if kind == "not":
        return Not(decode_expr(payload["operand"]))
    raise ProtocolError(f"undecodable filter expression: {payload!r}")
