"""Distributed query evaluation: scatter pattern scans, join at the top.

Two plans exist, chosen per query:

* **Single-shard fast path** — every pattern's subject is a constant
  hashing to one shard, so the whole query text is forwarded there and
  evaluated by that shard's full engine (plan cache, optimizer, parallel
  scans included).  Point lookups and per-entity histories — the dominant
  serving shapes — never pay scatter/gather.
* **Scatter/gather** — each pattern becomes a single-pattern sub-query
  (filters fully covered by the pattern's variables ride along, so time
  windows still push into the shard-side scans) fanned out to the shards
  :meth:`~repro.cluster.planner.ShardPlanner.shards_for_pattern` names.
  Shards return *decoded* bindings — per-shard dictionaries assign
  different ids to the same term, so string equality is the only join key
  that means anything across shards.  The coordinator then reuses the
  engine's own streaming operators (:func:`hash_join_rows`,
  :func:`left_outer_join_rows`, :func:`nested_loop_product`,
  :func:`apply_filters`): they treat ``int`` values as the only encoded
  kind, so string-valued rows flow through them untouched and the
  dictionary argument is never consulted.

Results are canonically sorted on the projected bindings before they
leave the coordinator — per-shard dictionary ids make engine row order a
topology artifact, and byte-identical results across 1-, 2- and 4-shard
deployments are part of the contract (the golden-file test pins it).
"""

from __future__ import annotations

import json
from typing import Callable

from ..engine.operators import (
    Row,
    apply_filters,
    hash_join_rows,
    left_outer_join_rows,
    nested_loop_product,
    project,
)
from ..obs import trace as _trace
from ..sparqlt.ast import (
    GroupGraphPattern,
    QuadPattern,
    Query,
    expr_variables,
)
from ..sparqlt.errors import EvaluationError
from .planner import ShardPlanner
from .protocol import encode_value

#: The coordinator-provided fan-out hook: evaluates each (sub-query,
#: shard ids) request — concurrently where it can — and returns the
#: unioned, decoded rows per request, in request order.
ScatterMany = Callable[[list[tuple[Query, list[int]]]], list[list[Row]]]


def collect_patterns(group: GroupGraphPattern) -> list[QuadPattern]:
    """Every quad pattern in the group, including UNION/OPTIONAL bodies."""
    out = list(group.patterns)
    for branches in group.unions:
        for branch in branches:
            out.extend(collect_patterns(branch))
    for optional in group.optionals:
        out.extend(collect_patterns(optional))
    return out


def whole_query_shard(query: Query, planner: ShardPlanner) -> int | None:
    """The one shard that can run ``query`` in full, or ``None``."""
    return planner.single_shard_for(collect_patterns(query.group))


def scatter_order(patterns: list[QuadPattern]) -> list[int]:
    """Join order for scattered patterns (no optimizer statistics here).

    Mirrors :func:`repro.engine.executor.default_order`'s shape: start
    from the most constant-bound pattern, then keep appending the most
    bound pattern *connected* to what is already joined, avoiding cross
    products when the query graph allows it.  Ties break on pattern
    position, keeping the order — and therefore the scatter requests —
    deterministic.
    """

    def selectivity(index: int) -> tuple[int, int]:
        return (-len(patterns[index].constant_positions()), index)

    remaining = set(range(len(patterns)))
    order: list[int] = []
    bound: set[str] = set()
    while remaining:
        if order:
            connected = [
                i for i in remaining if patterns[i].variables() & bound
            ]
            pool = connected or sorted(remaining)
        else:
            pool = sorted(remaining)
        best = min(pool, key=selectivity)
        order.append(best)
        remaining.discard(best)
        bound |= patterns[best].variables()
    return order


def distributed_rows(
    group: GroupGraphPattern,
    planner: ShardPlanner,
    scatter_many: ScatterMany,
    horizon: int,
) -> list[Row]:
    """Evaluate a group against the shards; returns unprojected rows.

    The algebra mirrors :func:`repro.engine.executor.execute_group`: base
    patterns join first, UNION branches concatenate then join in, each
    OPTIONAL left-outer-joins, and the group's filters run last over the
    combined rows — tolerantly, because a filter over a variable an
    OPTIONAL left unbound rejects just that row (SPARQL error semantics).
    Filters fully covered by a single pattern additionally ride along
    with its sub-query, so shards prune before shipping.
    """
    conjuncts = group.filter_conjuncts()
    # Conjuncts whose variables are bound by exactly ONE base pattern
    # (and by no union/optional) are fully settled shard-side: every
    # joined row descends from rows that already passed — and were
    # already clipped by — them, so re-running them coordinator-side is
    # pure waste.  Multi-binder conjuncts must re-run at the top:
    # temporal variables join by *intersection*, so a shard-side pass on
    # one pattern's binding says nothing about the joined binding.
    binders: dict[str, int] = {}
    for pattern in group.patterns:
        for name in pattern.variables():
            binders[name] = binders.get(name, 0) + 1
    for branches in group.unions:
        for branch in branches:
            for name in branch.variables():
                binders[name] = binders.get(name, 0) + 1
    for optional in group.optionals:
        for name in optional.variables():
            binders[name] = binders.get(name, 0) + 1
    settled: set[int] = set()
    rows: list[Row] | None = None
    bound: set[str] = set()

    if group.patterns:
        order = scatter_order(group.patterns)
        requests: list[tuple[Query, list[int]]] = []
        for index in order:
            pattern = group.patterns[index]
            covered = [
                c for c in conjuncts
                if expr_variables(c) <= pattern.variables()
            ]
            settled.update(
                id(c) for c in covered
                if all(binders[name] == 1 for name in expr_variables(c))
            )
            sub = Query(
                select=sorted(pattern.variables()),
                patterns=[pattern],
                filters=covered,
            )
            requests.append((sub, planner.shards_for_pattern(pattern)))
        with _trace.span("cluster.scatter", requests=len(requests)):
            partials = scatter_many(requests)
        for index, partial in zip(order, partials):
            pattern_vars = group.patterns[index].variables()
            if rows is None:
                rows = partial
            else:
                shared = bound & pattern_vars
                if shared:
                    rows = list(hash_join_rows(rows, partial, shared))
                else:
                    rows = list(nested_loop_product(rows, partial))
            bound |= pattern_vars
            if not rows:
                return []

    for branches in group.unions:
        union_rows: list[Row] = []
        union_vars: set[str] = set()
        for branch in branches:
            union_rows.extend(
                distributed_rows(branch, planner, scatter_many, horizon)
            )
            union_vars |= branch.variables()
        if rows is None:
            rows = union_rows
        else:
            shared = bound & union_vars
            if shared:
                rows = list(hash_join_rows(rows, union_rows, shared))
            else:
                rows = list(nested_loop_product(rows, union_rows))
        bound |= union_vars
        if not rows:
            return []

    for optional in group.optionals:
        optional_rows = distributed_rows(
            optional, planner, scatter_many, horizon
        )
        shared = bound & optional.variables()
        rows = list(
            left_outer_join_rows(rows or [], optional_rows, shared)
        )
        bound |= optional.variables()

    if rows is None:
        return []
    residual = [c for c in conjuncts if id(c) not in settled]
    if residual:
        surviving = []
        for row in rows:
            try:
                kept = list(apply_filters([row], residual, None, horizon))
            except EvaluationError:
                continue
            surviving.extend(kept)
        rows = surviving
    return rows


def distributed_query(
    query: Query,
    planner: ShardPlanner,
    scatter_many: ScatterMany,
    horizon: int,
) -> list[Row]:
    """Full scatter-path evaluation: group algebra, project, canonical
    sort."""
    with _trace.span("cluster.distributed"):
        rows = distributed_rows(query.group, planner, scatter_many, horizon)
        with _trace.span("cluster.gather", rows=len(rows)):
            return canonical_sort(
                project(rows, query.select, None), query.select
            )


def canonical_sort(rows: list[Row], variables: list[str]) -> list[Row]:
    """Topology-independent total order on projected rows.

    Keyed on the JSON encoding of each projected value (strings, nulls
    for unbound OPTIONAL slots, interval lists for temporal bindings) —
    the same encoding the HTTP layer emits, so equal serialized results
    sort identically no matter which shard produced which row.
    """

    def key(row: Row) -> str:
        return json.dumps(
            [encode_value(row.get(name)) for name in variables]
        )

    return sorted(rows, key=key)
