"""Command-line interface for RDF-TX.

Subcommands::

    repro-tx info DATASET.tnq              dataset statistics
    repro-tx query DATASET.tnq 'SELECT …'  run a SPARQLT query
    repro-tx shell DATASET.tnq             interactive SPARQLT shell
    repro-tx stats DATASET.tnq             metrics registry report
    repro-tx generate KIND N OUT.tnq       write a synthetic dataset

``query --analyze`` prints an EXPLAIN ANALYZE-style operator tree with
estimated vs. actual rows and per-operator timings; ``stats`` renders the
global metrics registry (``repro.obs``) after loading and optionally
querying.  ``REPRO_OBS=0`` disables all instrumentation.

``DATASET`` files use the temporal N-Quads format (see ``repro.io``);
``.gz`` paths are compressed transparently.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import io as tio
from .engine import RDFTX
from .model.time import format_chronon
from .optimizer import Optimizer
from .sparqlt import SparqltError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tx",
        description="RDF-TX: query the history of RDF knowledge bases",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="dataset statistics")
    info.add_argument("dataset")

    query = sub.add_parser("query", help="run one SPARQLT query")
    query.add_argument("dataset")
    query.add_argument("sparqlt", help="the SPARQLT query text")
    query.add_argument("--explain", action="store_true",
                       help="print the query plan")
    query.add_argument("--analyze", action="store_true",
                       help="profile the execution: print the operator tree "
                            "with estimated/actual rows and timings")
    query.add_argument("--no-optimizer", action="store_true",
                       help="disable the cost-based optimizer")
    query.add_argument("--time", action="store_true",
                       help="print execution time")

    shell = sub.add_parser("shell", help="interactive SPARQLT shell")
    shell.add_argument("dataset")
    shell.add_argument("--no-optimizer", action="store_true")
    shell.add_argument("--time", action="store_true",
                       help="print per-statement execution time")

    stats = sub.add_parser(
        "stats",
        help="load a dataset (optionally run queries) and print the "
             "global metrics registry",
    )
    stats.add_argument("dataset")
    stats.add_argument("--sparqlt", action="append", default=[],
                       metavar="QUERY",
                       help="run a query before reporting (repeatable)")
    stats.add_argument("--json", action="store_true",
                       help="JSON instead of text rendering")
    stats.add_argument("--no-optimizer", action="store_true")

    generate = sub.add_parser("generate", help="write a synthetic dataset")
    generate.add_argument("kind", choices=("wikipedia", "govtrack", "yago"))
    generate.add_argument("triples", type=int)
    generate.add_argument("output")
    generate.add_argument("--seed", type=int, default=0)

    return parser


def _load_engine(path: str, use_optimizer: bool) -> RDFTX:
    graph = tio.load_graph(path)
    optimizer = Optimizer() if use_optimizer else None
    engine = RDFTX.from_graph(graph, optimizer=optimizer)
    engine._graph = graph  # kept for info reporting
    return engine


def cmd_info(args) -> int:
    graph = tio.load_graph(args.dataset)
    engine = RDFTX.from_graph(graph)
    predicates = graph.predicate_counts()
    starts = [t.period.start for t in graph]
    print(f"triples:        {len(graph)}")
    print(f"subjects:       {graph.distinct_subjects()}")
    print(f"predicates:     {len(predicates)}")
    if starts:
        print(f"history:        {format_chronon(min(starts))} .. "
              f"{format_chronon(engine.horizon - 1)}")
    live = sum(1 for t in graph if t.period.is_live)
    print(f"live facts:     {live}")
    print(f"raw size:       {graph.raw_size()} bytes")
    print(f"index size:     {engine.sizeof()} bytes (4 compressed MVBT "
          f"+ dictionary)")
    return 0


def cmd_query(args) -> int:
    engine = _load_engine(args.dataset, not args.no_optimizer)
    try:
        if args.explain:
            print(engine.explain(args.sparqlt))
            print()
        start = time.perf_counter()
        result = engine.query(args.sparqlt, profile=args.analyze)
        elapsed = (time.perf_counter() - start) * 1000
    except SparqltError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(result.to_table())
    print(f"\n{len(result)} row(s)", end="")
    if args.time:
        print(f" in {elapsed:.2f} ms", end="")
    print()
    if args.analyze:
        print()
        if result.profile is not None:
            print(result.profile.render())
        else:
            from .obs import metrics as _obs_metrics

            reason = ("REPRO_OBS=0" if not _obs_metrics.ENABLED
                      else "no profile recorded")
            print(f"(profiling disabled: {reason})")
    return 0


def cmd_stats(args) -> int:
    from .obs import REGISTRY

    engine = _load_engine(args.dataset, not args.no_optimizer)
    for text in args.sparqlt:
        try:
            engine.query(text)
        except SparqltError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    print(REGISTRY.render_json() if args.json else REGISTRY.render_text())
    return 0


def cmd_shell(args) -> int:
    from .obs import metrics as _obs_metrics

    engine = _load_engine(args.dataset, not args.no_optimizer)
    print(f"RDF-TX shell — {args.dataset} loaded "
          f"({sum(t.live_records for t in engine.indexes.values()) // 4} "
          f"live facts). Type .help for commands.")
    explain = False
    analyze = False
    timing = args.time
    buffer: list[str] = []
    while True:
        prompt = "... " if buffer else "tx> "
        try:
            line = input(prompt)
        except EOFError:
            print()
            return 0
        stripped = line.strip()
        if not buffer and stripped.startswith("."):
            if stripped in (".quit", ".exit"):
                return 0
            if stripped == ".help":
                print(".quit        leave the shell\n"
                      ".explain     toggle plan printing\n"
                      ".time        toggle per-statement timing\n"
                      ".analyze     toggle operator profiles "
                      "(EXPLAIN ANALYZE)\n"
                      "end a query with an empty line or ';'")
            elif stripped == ".explain":
                explain = not explain
                print(f"explain {'on' if explain else 'off'}")
            elif stripped == ".time":
                timing = not timing
                print(f"timing {'on' if timing else 'off'}")
            elif stripped == ".analyze":
                analyze = not analyze
                if analyze and not _obs_metrics.ENABLED:
                    print("analyze on (but REPRO_OBS=0: profiles disabled)")
                else:
                    print(f"analyze {'on' if analyze else 'off'}")
            else:
                print(f"unknown command {stripped!r}")
            continue
        if stripped.endswith(";"):
            buffer.append(stripped[:-1])
        elif stripped:
            buffer.append(stripped)
            continue
        if not buffer:
            continue
        text = " ".join(buffer)
        buffer = []
        try:
            if explain:
                print(engine.explain(text))
            start = time.perf_counter()
            result = engine.query(text, profile=analyze)
            elapsed = (time.perf_counter() - start) * 1000
            print(result.to_table())
            summary = f"{len(result)} row(s)"
            if timing:
                summary += f" in {elapsed:.2f} ms"
            print(summary)
            if analyze and result.profile is not None:
                print(result.profile.render())
        except SparqltError as error:
            print(f"error: {error}")


def cmd_generate(args) -> int:
    from .datasets import govtrack, wikipedia, yago

    if args.kind == "wikipedia":
        graph = wikipedia.generate(args.triples, seed=args.seed).graph
    elif args.kind == "govtrack":
        graph = govtrack.generate(args.triples, seed=args.seed).graph
    else:
        graph = yago.generate(args.triples, seed=args.seed).graph
    count = tio.dump_graph(graph, args.output)
    print(f"wrote {count} triples to {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "info": cmd_info,
        "query": cmd_query,
        "shell": cmd_shell,
        "stats": cmd_stats,
        "generate": cmd_generate,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error,
        # but keep Python from flushing to the dead pipe at shutdown.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
