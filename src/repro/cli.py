"""Command-line interface for RDF-TX.

Subcommands::

    repro-tx info DATASET.tnq              dataset statistics
    repro-tx query DATASET.tnq 'SELECT …'  run a SPARQLT query
    repro-tx shell DATASET.tnq             interactive SPARQLT shell
    repro-tx stats DATASET.tnq             metrics registry report
    repro-tx generate KIND N OUT.tnq       write a synthetic dataset
    repro-tx snapshot DATASET.tnq OUT      compile a dataset to a snapshot
    repro-tx serve DIR                     durable HTTP SPARQLT endpoint
    repro-tx cluster-status URL            cluster topology and health
    repro-tx doctor TARGET                 storage health report
    repro-tx lint [PATHS…]                 project-specific static analysis

``query --analyze`` prints an EXPLAIN ANALYZE-style operator tree with
estimated vs. actual rows and per-operator timings; ``stats`` renders the
global metrics registry (``repro.obs``) after loading and optionally
querying.  ``REPRO_OBS=0`` disables all instrumentation.

``DATASET`` files use the temporal N-Quads format (see ``repro.io``);
``.gz`` paths are compressed transparently.  Every command that takes a
``DATASET`` also accepts a binary snapshot (``repro-tx snapshot``, or a
``store.snap`` from a serve directory) — detected by magic bytes, loading
in milliseconds instead of re-running parse + bulk load + compression.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import io as tio
from .engine import RDFTX
from .model.time import format_chronon
from .optimizer import Optimizer
from .sparqlt import SparqltError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tx",
        description="RDF-TX: query the history of RDF knowledge bases",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="dataset statistics")
    info.add_argument("dataset")

    query = sub.add_parser("query", help="run one SPARQLT query")
    query.add_argument("dataset")
    query.add_argument("sparqlt", help="the SPARQLT query text")
    query.add_argument("--explain", action="store_true",
                       help="print the query plan")
    query.add_argument("--analyze", action="store_true",
                       help="profile the execution: print the operator tree "
                            "with estimated/actual rows and timings")
    query.add_argument("--no-optimizer", action="store_true",
                       help="disable the cost-based optimizer")
    query.add_argument("--time", action="store_true",
                       help="print execution time")
    query.add_argument("--parallel", action="store_true",
                       help="dispatch pattern scans on a thread pool "
                            "(same as REPRO_PARALLEL=1)")

    shell = sub.add_parser("shell", help="interactive SPARQLT shell")
    shell.add_argument("dataset")
    shell.add_argument("--no-optimizer", action="store_true")
    shell.add_argument("--time", action="store_true",
                       help="print per-statement execution time")
    shell.add_argument("--parallel", action="store_true",
                       help="dispatch pattern scans on a thread pool")

    stats = sub.add_parser(
        "stats",
        help="load a dataset (optionally run queries) and print the "
             "global metrics registry",
    )
    stats.add_argument("dataset")
    stats.add_argument("--sparqlt", action="append", default=[],
                       metavar="QUERY",
                       help="run a query before reporting (repeatable)")
    stats.add_argument("--prometheus", action="store_true",
                       help="render in Prometheus text exposition format")
    stats.add_argument("--json", action="store_true",
                       help="JSON instead of text rendering")
    stats.add_argument("--no-optimizer", action="store_true")
    stats.add_argument("--parallel", action="store_true",
                       help="dispatch pattern scans on a thread pool")
    stats.add_argument("--workload", action="store_true",
                       help="also print the per-shape workload table "
                            "(query fingerprints)")

    generate = sub.add_parser("generate", help="write a synthetic dataset")
    generate.add_argument("kind", choices=("wikipedia", "govtrack", "yago"))
    generate.add_argument("triples", type=int)
    generate.add_argument("output")
    generate.add_argument("--seed", type=int, default=0)

    snapshot = sub.add_parser(
        "snapshot",
        help="compile a dataset into a binary snapshot (fast reload)",
    )
    snapshot.add_argument("dataset")
    snapshot.add_argument("output")
    snapshot.add_argument("--no-optimizer", action="store_true")

    serve = sub.add_parser(
        "serve",
        help="serve a store directory over HTTP (WAL + snapshots)",
    )
    serve.add_argument("directory",
                       help="store directory (created if missing)")
    serve.add_argument("--data", metavar="DATASET",
                       help="bulk-load this dataset into an empty store "
                            "(temporal N-Quads or snapshot)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8094)
    serve.add_argument("--workers", type=int, default=8,
                       help="max in-flight requests (excess gets 503)")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       help="per-request deadline in seconds (504 past it)")
    serve.add_argument("--group-commit", type=int, default=32,
                       metavar="N", help="fsync the WAL every N updates")
    serve.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N",
                       help="auto-checkpoint every N updates")
    serve.add_argument("--no-fsync", action="store_true",
                       help="never fsync the WAL (faster; loses machine-"
                            "crash durability, keeps process-kill safety)")
    serve.add_argument("--no-optimizer", action="store_true")
    serve.add_argument("--query-cache", type=int, default=256, metavar="N",
                       help="revision-tagged result-cache capacity "
                            "(0 disables; default 256)")
    serve.add_argument("--parallel", action="store_true",
                       help="dispatch pattern scans on a thread pool "
                            "(same as REPRO_PARALLEL=1)")
    serve.add_argument("--trace-sample", type=float, default=1.0,
                       metavar="RATE",
                       help="fraction of POST requests recording a full "
                            "trace (0..1; default 1.0)")
    serve.add_argument("--slow-ms", type=float, default=None,
                       metavar="MS",
                       help="log the full span tree of requests slower "
                            "than MS milliseconds (default: off)")
    serve.add_argument("--trace-buffer", type=int, default=128,
                       metavar="N",
                       help="recent traces kept for /debug/traces "
                            "(default 128)")
    serve.add_argument("--stats-refresh-qerror", type=float, default=None,
                       metavar="Q",
                       help="rebuild optimizer statistics when the "
                            "sampled median q-error sustains at or above "
                            "Q (default: off)")
    serve.add_argument("--log-level", default="warning",
                       choices=("debug", "info", "warning", "error"),
                       help="structured-log threshold; 'info' turns on "
                            "per-request access lines (default: warning)")
    serve.add_argument("--shards", type=int, default=0, metavar="N",
                       help="run a sharded cluster of N worker processes "
                            "behind the HTTP endpoint (0 = single-process "
                            "standalone store; default 0)")
    serve.add_argument("--replicas", type=int, default=0, metavar="M",
                       help="WAL-shipped read replicas per shard "
                            "(requires --shards; default 0)")
    serve.add_argument("--metrics-refresh", type=float, default=0.0,
                       metavar="SECS",
                       help="background federated-metrics pull interval "
                            "for /metrics?scope=cluster (requires "
                            "--shards; 0 = pull on demand; default 0)")

    cluster_status = sub.add_parser(
        "cluster-status",
        help="topology and per-member health of a running cluster "
             "(reads /healthz)",
    )
    cluster_status.add_argument(
        "url", nargs="?", default="http://127.0.0.1:8094",
        help="base URL of the serving endpoint "
             "(default http://127.0.0.1:8094)")
    cluster_status.add_argument("--json", action="store_true",
                                help="emit the raw /healthz payload")
    cluster_status.add_argument(
        "--metrics", action="store_true",
        help="also pull /metrics?scope=cluster and print per-member "
             "request counts and replica lag")

    doctor = sub.add_parser(
        "doctor",
        help="storage health report: MVBT depth/fill/compression, "
             "dictionary, WAL, caches — with anomaly warnings",
    )
    doctor.add_argument("target",
                        help="a dataset file, snapshot, or serve directory")
    doctor.add_argument("--json", action="store_true",
                        help="emit the raw report as JSON")

    from .lint import checker as _lint_checker

    lint = sub.add_parser(
        "lint",
        help="project-specific static analysis (lock discipline, MVBT "
             "invariants, metrics hygiene)",
    )
    _lint_checker.build_parser(lint)

    return parser


def _load_engine(path: str, use_optimizer: bool) -> RDFTX:
    """Build an engine from ``path`` — a dataset file or a snapshot.

    Snapshots (detected by magic bytes) skip the parse + bulk-load +
    compress pipeline entirely.
    """
    from .service.snapshot import is_snapshot, load_snapshot

    if is_snapshot(path):
        engine, _ = load_snapshot(path, use_optimizer=use_optimizer)
        return engine
    graph = tio.load_graph(path)
    optimizer = Optimizer() if use_optimizer else None
    engine = RDFTX.from_graph(graph, optimizer=optimizer)
    engine._graph = graph  # kept for info reporting
    return engine


def cmd_info(args) -> int:
    engine = _load_engine(args.dataset, use_optimizer=False)
    graph = engine._graph
    predicates = graph.predicate_counts()
    starts = [t.period.start for t in graph]
    print(f"triples:        {len(graph)}")
    print(f"subjects:       {graph.distinct_subjects()}")
    print(f"predicates:     {len(predicates)}")
    if starts:
        print(f"history:        {format_chronon(min(starts))} .. "
              f"{format_chronon(engine.horizon - 1)}")
    live = sum(1 for t in graph if t.period.is_live)
    print(f"live facts:     {live}")
    print(f"raw size:       {graph.raw_size()} bytes")
    print(f"index size:     {engine.sizeof()} bytes (4 compressed MVBT "
          f"+ dictionary)")
    return 0


def cmd_query(args) -> int:
    engine = _load_engine(args.dataset, not args.no_optimizer)
    if args.parallel:
        engine.parallel = True
    try:
        if args.explain:
            print(engine.explain(args.sparqlt))
            print()
        start = time.perf_counter()
        result = engine.query(args.sparqlt, profile=args.analyze)
        elapsed = (time.perf_counter() - start) * 1000
    except SparqltError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(result.to_table())
    print(f"\n{len(result)} row(s)", end="")
    if args.time:
        print(f" in {elapsed:.2f} ms", end="")
    print()
    if args.analyze:
        print()
        if result.profile is not None:
            print(result.profile.render())
        else:
            from .obs import metrics as _obs_metrics

            reason = ("REPRO_OBS=0" if not _obs_metrics.ENABLED
                      else "no profile recorded")
            print(f"(profiling disabled: {reason})")
    return 0


def cmd_stats(args) -> int:
    from .obs import REGISTRY
    from .obs import metrics as _obs_metrics

    if not _obs_metrics.ENABLED:
        # Nothing would be recorded: loading and querying with the kill
        # switch on produces an all-zero report, which reads like a bug.
        print("observability is disabled (REPRO_OBS=0): no metrics to "
              "report; unset REPRO_OBS to collect them")
        return 0
    engine = _load_engine(args.dataset, not args.no_optimizer)
    if args.parallel:
        engine.parallel = True
    for text in args.sparqlt:
        try:
            engine.query(text)
        except SparqltError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    if args.prometheus:
        print(REGISTRY.render_prometheus(), end="")
    elif args.json:
        print(REGISTRY.render_json())
    else:
        print(REGISTRY.render_text())
    if args.workload:
        from .obs import workload as _workload

        print()
        print(_workload.WORKLOAD.render_text())
    return 0


def cmd_shell(args) -> int:
    from .obs import metrics as _obs_metrics

    engine = _load_engine(args.dataset, not args.no_optimizer)
    if args.parallel:
        engine.parallel = True
    print(f"RDF-TX shell — {args.dataset} loaded "
          f"({sum(t.live_records for t in engine.indexes.values()) // 4} "
          f"live facts). Type .help for commands.")
    explain = False
    analyze = False
    timing = args.time
    buffer: list[str] = []
    while True:
        prompt = "... " if buffer else "tx> "
        try:
            line = input(prompt)
        except EOFError:
            print()
            return 0
        stripped = line.strip()
        if not buffer and stripped.startswith("."):
            if stripped in (".quit", ".exit"):
                return 0
            if stripped == ".help":
                print(".quit        leave the shell\n"
                      ".explain     toggle plan printing\n"
                      ".time        toggle per-statement timing\n"
                      ".analyze     toggle operator profiles "
                      "(EXPLAIN ANALYZE)\n"
                      "end a query with an empty line or ';'")
            elif stripped == ".explain":
                explain = not explain
                print(f"explain {'on' if explain else 'off'}")
            elif stripped == ".time":
                timing = not timing
                print(f"timing {'on' if timing else 'off'}")
            elif stripped == ".analyze":
                analyze = not analyze
                if analyze and not _obs_metrics.ENABLED:
                    print("analyze on (but REPRO_OBS=0: profiles disabled)")
                else:
                    print(f"analyze {'on' if analyze else 'off'}")
            else:
                print(f"unknown command {stripped!r}")
            continue
        if stripped.endswith(";"):
            buffer.append(stripped[:-1])
        elif stripped:
            buffer.append(stripped)
            continue
        if not buffer:
            continue
        text = " ".join(buffer)
        buffer = []
        try:
            if explain:
                print(engine.explain(text))
            start = time.perf_counter()
            result = engine.query(text, profile=analyze)
            elapsed = (time.perf_counter() - start) * 1000
            print(result.to_table())
            summary = f"{len(result)} row(s)"
            if timing:
                summary += f" in {elapsed:.2f} ms"
            print(summary)
            if analyze and result.profile is not None:
                print(result.profile.render())
        except SparqltError as error:
            print(f"error: {error}")


def cmd_generate(args) -> int:
    from .datasets import govtrack, wikipedia, yago

    if args.kind == "wikipedia":
        graph = wikipedia.generate(args.triples, seed=args.seed).graph
    elif args.kind == "govtrack":
        graph = govtrack.generate(args.triples, seed=args.seed).graph
    else:
        graph = yago.generate(args.triples, seed=args.seed).graph
    count = tio.dump_graph(graph, args.output)
    print(f"wrote {count} triples to {args.output}")
    return 0


def cmd_snapshot(args) -> int:
    from .service.snapshot import save_snapshot

    start = time.perf_counter()
    engine = _load_engine(args.dataset, not args.no_optimizer)
    built = time.perf_counter()
    path = save_snapshot(engine, args.output)
    saved = time.perf_counter()
    size = path.stat().st_size
    print(f"wrote {path} ({size} bytes): "
          f"build {1000 * (built - start):.0f} ms, "
          f"serialize {1000 * (saved - built):.0f} ms")
    return 0


def cmd_serve(args) -> int:
    from .obs import log as _obslog
    from .service.server import serve
    from .service.store import TemporalStore

    _obslog.set_level(args.log_level)
    if args.replicas and not args.shards:
        print("error: --replicas requires --shards", file=sys.stderr)
        return 1
    if args.shards:
        return _serve_cluster(args)
    store = TemporalStore(
        args.directory,
        use_optimizer=not args.no_optimizer,
        group_size=args.group_commit,
        fsync=not args.no_fsync,
        checkpoint_every=args.checkpoint_every,
        query_cache_size=args.query_cache or None,
        parallel=True if args.parallel else None,
        stats_refresh_qerror=args.stats_refresh_qerror,
    )
    try:
        if args.data:
            if store.revision != 0 or store.live_facts != 0:
                print(f"error: --data given but {args.directory} is not "
                      f"empty (revision {store.revision})", file=sys.stderr)
                return 1
            print(f"loading {args.data} ...")
            # Adopt a pre-built engine (dataset or snapshot), then
            # checkpoint so the store directory is self-contained.
            store.engine = _load_engine(args.data, not args.no_optimizer)
            if args.parallel:
                store.engine.parallel = True
            store.checkpoint()
            print(f"loaded {store.live_facts} live facts")
        service = serve(
            store, host=args.host, port=args.port,
            max_inflight=args.workers,
            request_timeout=args.request_timeout,
            trace_sample=args.trace_sample,
            slow_ms=args.slow_ms,
            trace_capacity=args.trace_buffer,
        )
        print(f"serving {args.directory} on http://{args.host}:"
              f"{service.port} (revision {store.revision}, "
              f"{store.live_facts} live facts)")
        try:
            service.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down")
        finally:
            service.shutdown()
    finally:
        store.close()
    return 0


def _serve_cluster(args) -> int:
    """``serve --shards N [--replicas M]``: coordinator + worker fleet."""
    from .cluster import ClusterStore
    from .service.server import serve
    from .service.snapshot import is_snapshot

    store = ClusterStore(
        args.directory,
        shards=args.shards,
        replicas=args.replicas,
        use_optimizer=not args.no_optimizer,
        group_size=args.group_commit,
        fsync=not args.no_fsync,
        query_cache_size=args.query_cache or None,
        parallel=True if args.parallel else None,
        metrics_refresh=args.metrics_refresh or None,
    )
    try:
        if args.data:
            if is_snapshot(args.data):
                # Snapshots hold one process's compressed indexes; a
                # cluster load needs raw triples to partition by subject.
                print("error: --data with --shards needs a temporal "
                      "N-Quads dataset, not a snapshot", file=sys.stderr)
                return 1
            if store.revision != 0:
                print(f"error: --data given but {args.directory} is not "
                      f"empty (revision {store.revision})", file=sys.stderr)
                return 1
            print(f"loading {args.data} ...")
            store.load_dataset(tio.load_graph(args.data))
            print(f"loaded {store.live_facts} live facts across "
                  f"{args.shards} shard(s)")
        service = serve(
            store, host=args.host, port=args.port,
            max_inflight=args.workers,
            request_timeout=args.request_timeout,
            trace_sample=args.trace_sample,
            slow_ms=args.slow_ms,
            trace_capacity=args.trace_buffer,
            role="coordinator",
        )
        print(f"serving {args.directory} on http://{args.host}:"
              f"{service.port} ({args.shards} shard(s), "
              f"{args.replicas} replica(s) each, "
              f"watermark {store.revision})")
        try:
            service.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down")
        finally:
            service.shutdown()
    finally:
        store.close()
    return 0


def cmd_cluster_status(args) -> int:
    import json as _json
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + "/healthz"
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            payload = _json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as error:
        print(f"error: cannot read {url}: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(payload, indent=2))
        return 0
    role = payload.get("role", "standalone")
    print(f"role:      {role}")
    print(f"revision:  {payload.get('revision')}")
    print(f"live:      {payload.get('live_facts')}")
    cluster = payload.get("cluster")
    if cluster is None:
        print("(not a cluster coordinator: no topology section)")
        return 0
    print(f"shards:    {cluster['shards']} "
          f"(+{cluster['replicas_per_shard']} replica(s) each)")
    print(f"watermark: {cluster['watermark']}")
    for member in cluster["members"]:
        primary = member["primary"]
        state = "up" if primary.get("alive") else "DOWN"
        line = (f"  shard {member['shard']}: primary pid "
                f"{primary.get('pid')} {state}")
        if primary.get("alive"):
            line += (f", lsn {primary.get('applied_lsn')}, "
                     f"{primary.get('live_facts')} live")
        print(line)
        for index, replica in enumerate(member["replicas"]):
            state = "up" if replica.get("alive") else "DOWN"
            line = f"    replica {index}: pid {replica.get('pid')} {state}"
            if replica.get("alive"):
                line += f", lsn {replica.get('applied_lsn')}"
                lag_lsn = replica.get("lag_lsn")
                if lag_lsn:
                    line += f", lag {lag_lsn} lsn"
                    lag_seconds = replica.get("lag_seconds")
                    if lag_seconds is not None:
                        line += f" ({lag_seconds:.3f}s behind)"
            print(line)
    if args.metrics:
        return _print_cluster_metrics(args.url)
    return 0


def _print_cluster_metrics(base_url: str) -> int:
    """``cluster-status --metrics``: federated per-group counters + lag."""
    import json as _json
    import urllib.error
    import urllib.request

    url = base_url.rstrip("/") + "/metrics?scope=cluster"
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            federated = _json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as error:
        print(f"error: cannot read {url}: {error}", file=sys.stderr)
        return 1
    print("\nfederated metrics "
          f"(watermark {federated.get('watermark')}):")
    for group in federated.get("groups", []):
        labels = group.get("labels", {})
        name = ",".join(
            f"{key}={value}" for key, value in sorted(labels.items())
        )
        metrics = group.get("metrics", {})
        counters = metrics.get("counters", {})
        requests = counters.get("cluster.worker.requests")
        replicated = counters.get("cluster.worker.replicated")
        line = f"  [{name or 'coordinator'}] x{group.get('members', 1)}"
        if requests is not None:
            line += f": {requests} requests"
        if replicated:
            line += f", {replicated} records replicated"
        print(line)
    for entry in federated.get("members", []):
        if entry.get("role") != "replica":
            continue
        lag = entry.get("lag_lsn")
        seconds = entry.get("lag_seconds")
        state = "up" if entry.get("alive") else "DOWN"
        line = (f"  replica shard={entry.get('shard')} "
                f"#{entry.get('replica')} pid {entry.get('pid')} {state}")
        if lag is not None:
            line += f": lag {lag} lsn"
        if seconds is not None:
            line += f", {seconds:.3f}s behind"
        print(line)
    return 0


def cmd_doctor(args) -> int:
    import json as _json
    from pathlib import Path

    from .obs import introspect as _introspect

    target = Path(args.target)
    if target.is_dir():
        from .service.store import TemporalStore

        # A serve directory: open it read-only-ish (no optimizer build —
        # the report does not need join ordering) and include WAL/cache
        # state alongside the engine walk.
        with TemporalStore(target, use_optimizer=False,
                           query_cache_size=None) as store:
            report = store.storage_report()
    else:
        engine = _load_engine(args.target, use_optimizer=False)
        report = _introspect.engine_report(engine)
    warnings = _introspect.find_anomalies(report)
    if args.json:
        report["warnings"] = warnings
        print(_json.dumps(report, indent=2))
        return 0
    print(_introspect.render_report(report))
    if warnings:
        print()
        for warning in warnings:
            print(f"warning: {warning}")
    else:
        print("\nno anomalies found")
    return 0


def cmd_lint(args) -> int:
    from .lint import checker as _lint_checker

    return _lint_checker.run_cli(args)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "info": cmd_info,
        "query": cmd_query,
        "shell": cmd_shell,
        "stats": cmd_stats,
        "generate": cmd_generate,
        "snapshot": cmd_snapshot,
        "serve": cmd_serve,
        "cluster-status": cmd_cluster_status,
        "doctor": cmd_doctor,
        "lint": cmd_lint,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error,
        # but keep Python from flushing to the dead pipe at shutdown.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
