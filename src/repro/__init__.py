"""repro — a reproduction of RDF-TX (EDBT 2016).

RDF-TX is a fast, user-friendly system for querying the history of RDF
knowledge bases: SPARQLT (a point-based temporal extension of SPARQL), an
in-memory query engine over compressed Multiversion B+ Trees, and a query
optimizer driven by temporal characteristic-set statistics.

Quickstart::

    from repro import RDFTX, TemporalGraph, date_to_chronon

    graph = TemporalGraph()
    graph.add("UC", "president", "Mark_Yudof",
              date_to_chronon("2008-06-16"), date_to_chronon("2013-09-30"))
    graph.add("UC", "president", "Janet_Napolitano",
              date_to_chronon("2013-09-30"))

    engine = RDFTX.from_graph(graph)
    result = engine.query("SELECT ?t {UC president Janet_Napolitano ?t}")
    print(result.to_table())
"""

from .engine import QueryResult, RDFTX
from .model import (
    NOW,
    Period,
    PeriodSet,
    TemporalGraph,
    TemporalTriple,
    Triple,
    date_to_chronon,
    format_chronon,
)
from .mvbt import MVBT, MVBTConfig
from .optimizer import Optimizer
from .sparqlt import SparqltError, parse

__version__ = "1.0.0"

__all__ = [
    "MVBT",
    "MVBTConfig",
    "NOW",
    "Optimizer",
    "Period",
    "PeriodSet",
    "QueryResult",
    "RDFTX",
    "SparqltError",
    "TemporalGraph",
    "TemporalTriple",
    "Triple",
    "date_to_chronon",
    "format_chronon",
    "parse",
]
