"""The Multiversion B+ Tree (Becker et al., VLDBJ 1996; paper Section 4.1).

An MVBT is a *forest*: a registry of root nodes, each valid over a temporal
partition (Figure 2(a)).  Entries are ``(key, start, end, payload)``;
insertions and logical deletions must arrive in nondecreasing time order
(transaction time).  Structure changes (Figure 2(c)):

* **Version split** — an overflowing or weak-version-underflowing node is
  killed and its live entries are copied into a fresh node.
* **Key split** — if the copy would violate the strong upper bound it is split
  by key into two nodes.
* **Merge** — if the copy would violate the strong lower bound, a live sibling
  is killed too and its live entries join the copy (with a key split if the
  union is too big: *merge & key split*).

New nodes carry backward links to the node(s) they were copied from; the
link-based range-interval scan (Section 5.2.1) rides these links.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Iterator

from ..model.time import MIN_TIME, NOW
from ..obs import metrics as _metrics
from .entry import IndexEntry, Key, LeafEntry, MIN_KEY
from .node import IndexNode, LeafNode, Node, live_partition

# Update-path instrumentation (no-ops under REPRO_OBS=0).
_INSERTS = _metrics.counter("mvbt.tree.inserts")
_DELETES = _metrics.counter("mvbt.tree.deletes")
_VERSION_SPLITS = _metrics.counter("mvbt.tree.version_splits")
_KEY_SPLITS = _metrics.counter("mvbt.tree.key_splits")
_MERGES = _metrics.counter("mvbt.tree.merges")


class MVBTError(Exception):
    """Base error for MVBT operations."""


class DuplicateKeyError(MVBTError):
    """An insert found the key already live at the current version."""


class TimeOrderError(MVBTError):
    """Operations must arrive in nondecreasing time order."""


@dataclass(frozen=True)
class MVBTConfig:
    """Structural parameters of the MVBT.

    ``block_capacity`` (b) bounds total entries per node; ``weak_min`` (d) is
    the weak-version condition; ``epsilon`` (e) widens the strong-version
    bounds ``[weak_min + epsilon, block_capacity - epsilon]`` so that at least
    ``epsilon`` operations separate consecutive structure changes of a node.
    """

    block_capacity: int = 16
    weak_min: int = 3
    epsilon: int = 3

    def __post_init__(self) -> None:
        b, d, e = self.block_capacity, self.weak_min, self.epsilon
        if not (d >= 2 and e >= 1):
            raise ValueError("weak_min >= 2 and epsilon >= 1 required")
        if self.strong_min >= self.strong_max:
            raise ValueError("strong bounds are empty")
        # A version split of an overflowing node yields at most b + 1 live
        # entries; after a key split each half must satisfy the strong
        # bounds.
        if (self.strong_max + 1) // 2 < self.strong_min:
            raise ValueError("key split could violate the strong lower bound")
        # A merge sees at most (strong_min - 1) + b live entries and must fit
        # in at most two nodes.
        if (d + e - 1 + b + 1) // 2 > self.strong_max:
            raise ValueError("merge & key split could overflow")

    @property
    def strong_min(self) -> int:
        return self.weak_min + self.epsilon

    @property
    def strong_max(self) -> int:
        return self.block_capacity - self.epsilon


class MVBT:
    """An in-memory Multiversion B+ Tree over tuple keys."""

    def __init__(self, config: MVBTConfig | None = None) -> None:
        self.config = config or MVBTConfig()
        first_root = LeafNode(MIN_KEY, MIN_TIME)
        #: Root registry: parallel arrays of start versions and root nodes.
        self._root_starts: list[int] = [MIN_TIME]
        self._roots: list[Node] = [first_root]
        self._now = MIN_TIME
        self._live_records = 0
        self._total_versions = 0

    # ------------------------------------------------------------ accessors

    @property
    def current_time(self) -> int:
        """Largest operation timestamp seen so far."""
        return self._now

    @property
    def live_records(self) -> int:
        """Number of keys live at the current version."""
        return self._live_records

    @property
    def total_versions(self) -> int:
        """Total number of entry versions ever inserted."""
        return self._total_versions

    @property
    def live_root(self) -> Node:
        return self._roots[-1]

    def root_for(self, chronon: int) -> Node:
        """The root of the temporal partition containing ``chronon``."""
        idx = bisect.bisect_right(self._root_starts, chronon) - 1
        return self._roots[max(idx, 0)]

    # ------------------------------------------------------------ mutations

    def insert(self, key: Key, time: int, payload: Any = None) -> None:
        """Insert ``key`` at version ``time`` (live until deleted)."""
        self._advance(time)
        path = self._descend(key)
        leaf: LeafNode = path[-1]
        if leaf.find_live(key) is not None:
            raise DuplicateKeyError(f"key already live: {key!r}")
        leaf.append(LeafEntry(key, time, NOW, payload))
        self._live_records += 1
        self._total_versions += 1
        if _metrics.ENABLED:
            _INSERTS.inc()
        if leaf.count > self.config.block_capacity:
            self._restructure(path, time)

    def delete(self, key: Key, time: int) -> None:
        """Logically delete ``key`` at version ``time``."""
        self._advance(time)
        path = self._descend(key)
        leaf: LeafNode = path[-1]
        if not leaf.end_live(key, time):
            raise KeyError(f"key not live: {key!r}")
        self._live_records -= 1
        if _metrics.ENABLED:
            _DELETES.inc()
        if len(path) > 1 and leaf.live_count < self.config.weak_min:
            self._restructure(path, time)

    def insert_interval(self, key: Key, start: int, end: int,
                        payload: Any = None) -> None:
        """Insert an interval-encoded record, i.e. an insert at ``start``
        followed by a delete at ``end`` — only valid when no operation with a
        later timestamp has happened yet (bulk loads use
        :func:`repro.mvbt.tree.bulk_load` which orders the events)."""
        self.insert(key, start, payload)
        if end != NOW:
            self.delete(key, end)

    def _advance(self, time: int) -> None:
        if time < self._now:
            raise TimeOrderError(
                f"operation at {time} after watermark {self._now}"
            )
        self._now = time

    # ------------------------------------------------------------- descent

    def _descend(self, key: Key) -> list[Node]:
        """Live path from the live root to the live leaf owning ``key``."""
        node = self.live_root
        path = [node]
        while not node.is_leaf:
            node = node.route(key, self._now)
            path.append(node)
        return path

    # --------------------------------------------------- structure changes

    def _restructure(self, path: list[Node], time: int) -> None:
        """Version split (+ key split / merge) of ``path[-1]``."""
        node = path[-1]
        parent: IndexNode | None = path[-2] if len(path) > 1 else None
        cfg = self.config

        donors: list[Node] = [node]
        live = self._snapshot_live(node, time)
        if parent is not None and len(live) < cfg.strong_min:
            sibling = self._find_live_sibling(parent, node)
            if sibling is not None:
                donors.append(sibling)
                live.extend(self._snapshot_live(sibling, time))

        live.sort(key=lambda e: e.key)
        key_low = min(d.key_low for d in donors)
        key_high = None
        if all(d.key_high is not None for d in donors):
            key_high = max(d.key_high for d in donors)
        new_nodes = self._build_nodes(node.is_leaf, live, key_low, time)
        if _metrics.ENABLED:
            _VERSION_SPLITS.inc()
            if len(donors) > 1:
                _MERGES.inc()
            if len(new_nodes) == 2:
                _KEY_SPLITS.inc()
        if len(new_nodes) == 2:
            new_nodes[0].key_high = new_nodes[1].key_low
            new_nodes[1].key_high = key_high
        elif new_nodes:
            new_nodes[0].key_high = key_high
        for donor in donors:
            donor.death = time
        for fresh in new_nodes:
            fresh.predecessors = list(donors)

        if parent is None:
            self._replace_root(new_nodes, time)
            return
        for donor in donors:
            parent.end_child(donor, time)
        for fresh in new_nodes:
            parent.append(IndexEntry(fresh.key_low, time, NOW, fresh))
        self._check_parent(path[:-1], time)

    def _snapshot_live(self, node: Node, time: int) -> list:
        """Copies of the live entries with start clamped to the split time
        never above the raw start (copies keep their raw start; the node
        lifetime clamping at read time reconstructs the pieces)."""
        copies = []
        for entry in node.live_entries():
            copy = entry.copy() if node.is_leaf else IndexEntry(
                entry.key, entry.start, entry.end, entry.child
            )
            copies.append(copy)
        return copies

    def _build_nodes(
        self, is_leaf: bool, live: list, key_low: Key, time: int
    ) -> list[Node]:
        """Pack sorted live entries into one or two strong-condition nodes."""
        cfg = self.config
        make = LeafNode if is_leaf else IndexNode
        if len(live) > cfg.strong_max:
            mid = len(live) // 2
            left = make(key_low, time)
            right = make(live[mid].key, time)
            for entry in live[:mid]:
                left.append(entry)
            for entry in live[mid:]:
                right.append(entry)
            return [left, right]
        fresh = make(key_low, time)
        for entry in live:
            fresh.append(entry)
        return [fresh]

    def _find_live_sibling(
        self, parent: IndexNode, node: Node
    ) -> Node | None:
        """The live child adjacent (by key region) to ``node``."""
        alive = live_partition(parent.entries(), self._now)
        idx = next(
            (i for i, e in enumerate(alive) if e.child is node), None
        )
        if idx is None:
            return None
        if idx > 0:
            return alive[idx - 1].child
        if idx + 1 < len(alive):
            return alive[idx + 1].child
        return None

    def _replace_root(self, new_nodes: list[Node], time: int) -> None:
        """Register the successor(s) of a split root (Figure 2(a))."""
        if not new_nodes:
            self._register_root(LeafNode(MIN_KEY, time), time)
            return
        if len(new_nodes) == 1:
            self._register_root(new_nodes[0], time)
            return
        new_root = IndexNode(MIN_KEY, time)
        first, second = new_nodes
        new_root.append(IndexEntry(MIN_KEY, time, NOW, first))
        new_root.append(IndexEntry(second.key_low, time, NOW, second))
        self._register_root(new_root, time)

    def _register_root(self, root: Node, time: int) -> None:
        root.key_low = MIN_KEY
        root.key_high = None
        if self._root_starts and self._root_starts[-1] == time:
            # Same-version re-split of the root: replace in place.
            self._roots[-1] = root
        else:
            self._root_starts.append(time)
            self._roots.append(root)

    def _check_parent(self, path: list[Node], time: int) -> None:
        """Propagate overflow/underflow upward after child replacement."""
        node = path[-1]
        cfg = self.config
        if node.count > cfg.block_capacity:
            self._restructure(path, time)
            return
        if len(path) > 1 and node.live_count < cfg.weak_min:
            self._restructure(path, time)
            return
        if (
            len(path) == 1
            and not node.is_leaf
            and node.live_count == 1
        ):
            # Height shrink: the single live child becomes the live root.
            # The old root is retired: its routing entry ends now (future
            # queries go straight to the child) and the node itself dies,
            # staying in the registry for historical descents only.
            child = node.live_entries()[0].child
            node.end_child(child, time)
            node.death = time
            self._register_root(child, time)

    # -------------------------------------------------------------- queries

    def iter_nodes(self) -> Iterator[Node]:
        """All nodes of the forest, depth-first, each exactly once."""
        seen: set[int] = set()
        stack: list[Node] = list(self._roots)
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            if not node.is_leaf:
                stack.extend(e.child for e in node.entries())

    def leaf_nodes(self) -> Iterator[LeafNode]:
        """All leaf nodes of the forest."""
        return (n for n in self.iter_nodes() if n.is_leaf)

    def compress(self) -> None:
        """Delta-compress every leaf node (Section 4.2)."""
        for leaf in self.leaf_nodes():
            leaf.compress()

    def decompress(self) -> None:
        """Expand every leaf back to the plain entry-list backend."""
        for leaf in self.leaf_nodes():
            leaf.decompress()

    def sizeof(self) -> int:
        """Storage-layout size of the whole forest in bytes."""
        return sum(node.sizeof() for node in self.iter_nodes())

    # -------------------------------------------------------- serialization

    def _all_nodes(self) -> list[Node]:
        """Every node of the forest, including nodes reachable only through
        backward (predecessor) links — same-version root replacement can
        drop a node from the registry while scans still ride its link."""
        seen: set[int] = set()
        out: list[Node] = []
        stack: list[Node] = list(self._roots)
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            out.append(node)
            if not node.is_leaf:
                stack.extend(e.child for e in node.entries())
            stack.extend(node.predecessors)
        return out

    def dump_state(self) -> dict:
        """Plain-data state of the whole forest (snapshot payloads).

        The node graph is flattened into a table indexed by dense ids so
        serialization never recurses through child or predecessor links.
        """
        nodes = self._all_nodes()
        node_ids = {id(n): i for i, n in enumerate(nodes)}
        cfg = self.config
        return {
            "config": (cfg.block_capacity, cfg.weak_min, cfg.epsilon),
            "now": self._now,
            "live_records": self._live_records,
            "total_versions": self._total_versions,
            "root_starts": list(self._root_starts),
            "roots": [node_ids[id(r)] for r in self._roots],
            "nodes": [n.dump_state(node_ids) for n in nodes],
        }

    @classmethod
    def load_state(cls, state: dict) -> "MVBT":
        """Rebuild a tree from :meth:`dump_state` output."""
        capacity, weak_min, epsilon = state["config"]
        tree = cls(MVBTConfig(capacity, weak_min, epsilon))
        shells = [Node.shell_from_state(s) for s in state["nodes"]]
        for node, node_state in zip(shells, state["nodes"]):
            node.restore_entries(node_state, shells)
            node.predecessors = [
                shells[i] for i in node_state["predecessors"]
            ]
        tree._root_starts = list(state["root_starts"])
        tree._roots = [shells[i] for i in state["roots"]]
        tree._now = state["now"]
        tree._live_records = state["live_records"]
        tree._total_versions = state["total_versions"]
        return tree

    # ----------------------------------------------------------------- audit

    def check_invariants(self) -> None:
        """Assert MVBT structural invariants (used by property tests)."""
        cfg = self.config
        roots = set(map(id, self._roots))
        for node in self.iter_nodes():
            # A node may gain up to two fresh routing entries from a child
            # merge-and-key-split before its own overflow restructure kills
            # it, so dead nodes can exceed the block capacity by two.
            limit = cfg.block_capacity if node.is_alive else cfg.block_capacity + 2
            assert node.count <= limit, (
                f"block overflow left unresolved: {node!r}"
            )
            live = node.live_count
            recount = len(node.live_entries())
            assert live == recount, f"live count drifted: {node!r}"
            if node.is_alive and id(node) not in roots:
                assert live >= cfg.weak_min, (
                    f"weak version condition violated: {node!r}"
                )
            if not node.is_leaf and node.is_alive:
                self._check_partition(node)

    def _check_partition(self, node: IndexNode) -> None:
        """Live routing entries must partition the key region."""
        alive = live_partition(node.entries(), self._now)
        keys = [e.key for e in alive]
        assert keys == sorted(set(keys)), f"routing keys collide: {node!r}"
        for entry in alive:
            assert entry.child.is_alive, (
                f"live entry points to dead child: {node!r}"
            )


def bulk_load(
    tree: MVBT,
    records: Iterator[tuple[Key, int, int]] | list[tuple[Key, int, int]],
) -> None:
    """Load interval-encoded records ``(key, start, end)`` into ``tree``.

    Each record is decomposed into an insert at ``start`` and (unless live)
    a delete at ``end``; the event stream is replayed in time order as the
    paper's transaction-time construction requires (Section 4.1.2).
    """
    events: list[tuple[int, int, Key]] = []
    for key, start, end in records:
        events.append((start, 0, key))
        if end != NOW:
            events.append((end, 1, key))
    # Deletes before inserts at the same chronon so a key can be replaced
    # within one chronon without tripping the duplicate check.
    events.sort(key=lambda e: (e[0], e[1] == 0))
    for time, kind, key in events:
        if kind == 0:
            tree.insert(key, time)
        else:
            tree.delete(key, time)
