"""Synchronized temporal join over two MVBT indices (Section 5.2.2).

The synchronized join of Zhang et al. (ICDE 2002) walks two MVBTs in
lock-step: it pairs up the leaves intersecting the right border of the query
region, joins them, and follows backward links of both sides.  It avoids
materializing either input, at the price of revisiting pages; RDF-TX adds a
record cache of recently visited leaves so each leaf's records are decoded
once (the optimization described at the end of Section 5.2.2).

The join condition here is the RDF-TX temporal-join primitive: equality on a
key component pair plus non-empty temporal intersection.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict, defaultdict
from typing import Callable, Iterator

from ..model.time import MIN_TIME, NOW, Period, PeriodSet
from .entry import Key, MIN_KEY
from .node import LeafNode
from .scan import MAX_KEY, _visit_leaves, range_interval_scan
from .tree import MVBT


def hash_join(
    left: Iterator[tuple[Key, Period, object]],
    right: Iterator[tuple[Key, Period, object]],
    left_key: Callable[[Key], object],
    right_key: Callable[[Key], object],
) -> Iterator[tuple[Key, Key, PeriodSet]]:
    """Temporal hash join of two scan streams.

    Builds a hash table on the left stream keyed by ``left_key`` (with
    per-record coalesced periods), then probes with the right stream one
    piece at a time: each right piece is intersected against its matching
    left records immediately, and the surviving intersection pieces are
    coalesced per ``(left_record_key, right_record_key)`` group.  Peak
    memory is the left table plus the join *output* — the right stream is
    never materialized.
    """
    table: dict[object, dict[Key, list[Period]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for key, period, _ in left:
        table[left_key(key)][key].append(period)
    coalesced: dict[object, dict[Key, PeriodSet]] = {
        join_key: {k: PeriodSet(parts) for k, parts in records.items()}
        for join_key, records in table.items()
    }
    pairs: dict[tuple[Key, Key], list[Period]] = {}
    for rkey, rperiod, _ in right:
        matches = coalesced.get(right_key(rkey))
        if not matches:
            continue
        piece = PeriodSet.single(rperiod)
        for lkey, lperiods in matches.items():
            common = lperiods.intersect(piece)
            if not common.is_empty:
                pairs.setdefault((lkey, rkey), []).extend(common)
    for (lkey, rkey), parts in pairs.items():
        yield lkey, rkey, PeriodSet(parts)


class _LeafCache:
    """Decoded-records LRU cache for synchronized join page visits.

    A hit promotes the leaf to most-recently-used, so the hot left page
    paired against a run of right pages stays resident for the whole run
    (FIFO eviction would rotate it out mid-join).  Entries key on the
    leaf's stable ``uid`` — ``id(leaf)`` can alias after a collected node's
    address is reused.
    """

    def __init__(self, capacity: int = 64) -> None:
        self._capacity = capacity
        self._cache: OrderedDict[int, list[tuple[Key, Period]]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def records(self, leaf: LeafNode) -> list[tuple[Key, Period]]:
        found = self._cache.get(leaf.uid)
        if found is not None:
            self.hits += 1
            self._cache.move_to_end(leaf.uid)
            return found
        self.misses += 1
        decoded = []
        for entry in leaf.entries():
            period = leaf.effective_period(entry.start, entry.end)
            if period is not None:
                decoded.append((entry.key, period))
        self._cache[leaf.uid] = decoded
        if len(self._cache) > self._capacity:
            self._cache.popitem(last=False)
        return decoded


def synchronized_join(
    left_tree: MVBT,
    right_tree: MVBT,
    left_key: Callable[[Key], object],
    right_key: Callable[[Key], object],
    key_low: Key = MIN_KEY,
    key_high: Key = MAX_KEY,
    t1: int = MIN_TIME,
    t2: int = NOW,
    cache_capacity: int = 64,
    right_key_low: Key | None = None,
    right_key_high: Key | None = None,
) -> Iterator[tuple[Key, Key, PeriodSet]]:
    """Cache-optimized synchronized join of two MVBTs over a query region.

    Used when a join input covers a large portion of its index (e.g. "all
    triples valid in a period"): instead of materializing both scans, leaves
    of both trees inside the region are paired and joined page-by-page, with
    recently decoded pages cached.  ``right_key_low/high`` override the key
    range on the right tree when the two patterns scan different regions.
    """
    r_low = key_low if right_key_low is None else right_key_low
    r_high = key_high if right_key_high is None else right_key_high
    border = min(t2 - 1, min(left_tree.current_time, right_tree.current_time))
    if border < MIN_TIME or t1 >= t2:
        return
    cache = _LeafCache(cache_capacity)
    left_leaves = list(
        _visit_leaves(left_tree, key_low, key_high, t1, t2, border)
    )
    # Right leaves sorted by lifetime start: the leaves overlapping one
    # left leaf's lifetime form the prefix with ``start < lleaf.death``
    # (found by bisect), which the pairing loop walks in lock-step instead
    # of rescanning all R pages for each of the L left pages.
    right_leaves = sorted(
        _visit_leaves(right_tree, r_low, r_high, t1, t2, border),
        key=lambda leaf: leaf.start,
    )
    right_starts = [leaf.start for leaf in right_leaves]
    # Pair pages whose lifetimes intersect; records within are then matched
    # on the join key and on temporal intersection.
    pieces: dict[tuple[Key, Key], list[Period]] = defaultdict(list)
    for lleaf in left_leaves:
        l_records = [
            (key, period)
            for key, period in cache.records(lleaf)
            if key_low <= key < key_high and period.start < t2 and t1 < period.end
        ]
        if not l_records:
            continue
        by_join: dict[object, list[tuple[Key, Period]]] = defaultdict(list)
        for key, period in l_records:
            by_join[left_key(key)].append((key, period))
        window_end = bisect_left(right_starts, lleaf.death)
        for rleaf in right_leaves[:window_end]:
            if rleaf.death <= lleaf.start:
                continue
            for rkey, rperiod in cache.records(rleaf):
                if not (r_low <= rkey < r_high):
                    continue
                if not (rperiod.start < t2 and t1 < rperiod.end):
                    continue
                for lkey, lperiod in by_join.get(right_key(rkey), ()):
                    common = lperiod.intersect(rperiod)
                    if common is not None:
                        pieces[(lkey, rkey)].append(common)
    for (lkey, rkey), parts in pieces.items():
        yield lkey, rkey, PeriodSet(parts)
