"""MVBT entries (Section 4.1.1).

An MVBT entry is ``(key, start version, end version, data value / pointer)``.
Keys are tuples of dictionary ids (3-tuples in the RDF-TX indices, but any
comparable tuple works).  ``end == NOW`` marks a *live* entry.

Key-domain sentinels: the empty tuple ``()`` compares below every nonempty
tuple of ints and serves as the lower extremum of the key space (the paper's
``_``); :data:`MAX_KEY_COMPONENT` bounds components from above (the ``∞``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, TypeAlias

from ..model.time import NOW

#: A key is any comparable tuple (3-tuples of dictionary ids in RDF-TX).
Key: TypeAlias = tuple[Any, ...]

#: Lower extremum of the key domain.
MIN_KEY: Key = ()

#: Upper bound usable as a key component (no dictionary id ever reaches it).
MAX_KEY_COMPONENT: int = 2**62


@dataclass
class LeafEntry:
    """A data entry in an MVBT leaf: the record ``key`` lives in
    ``[start, end)``; ``payload`` carries the record (often ``None`` because
    in RDF-TX the key *is* the encoded triple)."""

    __slots__ = ("key", "start", "end", "payload")

    key: Key
    start: int
    end: int
    payload: Any

    @property
    def is_live(self) -> bool:
        return self.end == NOW

    def alive_at(self, chronon: int) -> bool:
        return self.start <= chronon < self.end

    def overlaps(self, t1: int, t2: int) -> bool:
        """Whether the entry's lifetime intersects ``[t1, t2)``."""
        return self.start < t2 and t1 < self.end

    def copy(self) -> "LeafEntry":
        return LeafEntry(self.key, self.start, self.end, self.payload)


@dataclass
class IndexEntry:
    """A routing entry in an MVBT index node.

    ``key`` is the lower bound of the child's key region; the live index
    entries of a node partition its key region at every version in the node's
    lifetime.
    """

    __slots__ = ("key", "start", "end", "child")

    key: Key
    start: int
    end: int
    child: Any  # Node; typed loosely to avoid a circular import

    @property
    def is_live(self) -> bool:
        return self.end == NOW

    def alive_at(self, chronon: int) -> bool:
        return self.start <= chronon < self.end

    def overlaps(self, t1: int, t2: int) -> bool:
        return self.start < t2 and t1 < self.end
