"""Multiversion B+ Tree: the RDF-TX storage and index structure (Sec 4-5)."""

from .compression import CompressedLeafStore, CompressionError
from .entry import IndexEntry, LeafEntry, MAX_KEY_COMPONENT, MIN_KEY
from .join import hash_join, synchronized_join
from .node import IndexNode, LeafNode
from .scan import MAX_KEY, collect_validity, prefix_range, range_interval_scan, scan_pieces
from .tree import (
    DuplicateKeyError,
    MVBT,
    MVBTConfig,
    MVBTError,
    TimeOrderError,
    bulk_load,
)

__all__ = [
    "CompressedLeafStore",
    "CompressionError",
    "DuplicateKeyError",
    "IndexEntry",
    "IndexNode",
    "LeafEntry",
    "LeafNode",
    "MAX_KEY",
    "MAX_KEY_COMPONENT",
    "MIN_KEY",
    "MVBT",
    "MVBTConfig",
    "MVBTError",
    "TimeOrderError",
    "bulk_load",
    "collect_validity",
    "hash_join",
    "prefix_range",
    "range_interval_scan",
    "scan_pieces",
    "synchronized_join",
]
