"""Link-based range-interval scan on MVBT (Section 5.2.1, Figure 4).

A SPARQLT query pattern translates to a *query region*: a key range
``[key_low, key_high)`` crossed with a time range ``[t1, t2)``.  The scan

1. finds the leaves intersecting the **right border** of the region by a
   B+-tree-style descent at the latest query version,
2. follows **backward links** to every predecessor whose lifetime intersects
   the time range, and
3. emits the matching entries of all visited leaves.

Entries are clamped to each node's lifetime; a record that lived across
version splits is emitted as several contiguous pieces which the caller
coalesces into a :class:`~repro.model.time.PeriodSet`.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Iterator

from ..model.time import MIN_TIME, NOW, Period, PeriodSet
from ..obs import metrics as _metrics
from .entry import Key, MAX_KEY_COMPONENT, MIN_KEY
from .node import IndexNode, LeafNode, Node
from .tree import MVBT

#: Upper extremum usable as a key-range bound.
MAX_KEY: Key = (MAX_KEY_COMPONENT, MAX_KEY_COMPONENT, MAX_KEY_COMPONENT, MAX_KEY_COMPONENT)

# Scan instrumentation (REPRO_OBS=0 skips every update).  Counts are
# accumulated locally per scan and published once, so the per-entry hot
# loop stays untouched.
_SCANS = _metrics.counter("mvbt.scan.scans")
_LEAVES = _metrics.counter("mvbt.scan.leaves_visited")
_EXAMINED = _metrics.counter("mvbt.scan.entries_examined")
_PRUNED = _metrics.counter("mvbt.scan.entries_pruned")
_EMITTED = _metrics.counter("mvbt.scan.entries_emitted")


def prefix_range(prefix: tuple) -> tuple[Key, Key]:
    """The key range covering every key starting with ``prefix``.

    Tuple comparison makes ``prefix`` itself the tight lower bound and
    ``prefix + (MAX_KEY_COMPONENT,)`` an upper bound no real key reaches.
    """
    return tuple(prefix), tuple(prefix) + (MAX_KEY_COMPONENT,)


def query_leaves(
    tree: MVBT,
    key_low: Key = MIN_KEY,
    key_high: Key = MAX_KEY,
    t1: int = MIN_TIME,
    t2: int = NOW,
) -> list[LeafNode]:
    """The leaves a range-interval scan would visit, in visit order.

    This is the batch frontier of the parallel scanner
    (:mod:`repro.engine.parallel`): each returned leaf is an independent
    unit of decode work (:func:`scan_leaf_pieces`), and concatenating the
    per-leaf outputs in this list's order reproduces
    :func:`scan_pieces` exactly.
    """
    if key_low >= key_high or t1 >= t2:
        return []
    border = min(t2 - 1, tree.current_time)
    if border < MIN_TIME:
        return []
    return list(_visit_leaves(tree, key_low, key_high, t1, t2, border))


def scan_leaf_pieces(
    leaf: LeafNode,
    key_low: Key,
    key_high: Key,
    t1: int,
    t2: int,
    out: list[tuple[Key, int, int, Any]] | None = None,
) -> list[tuple[Key, int, int, Any]]:
    """One leaf's ``(key, start, end, payload)`` pieces inside the region.

    The per-leaf unit of :func:`scan_pieces` (hot loop of every query).
    Dispatches to :meth:`~repro.mvbt.node.LeafNode.scan_pieces`:
    compressed leaves evaluate the predicates directly over the packed
    byte buffer (no per-entry objects for filtered entries), plain and
    hot decoded leaves filter entry objects — identical output either
    way.  Appends into ``out`` when given so the serial scan keeps a
    single result list.  Publishes no metrics; batch callers aggregate.
    """
    if out is None:
        out = []
    return leaf.scan_pieces(key_low, key_high, t1, t2, out)


def publish_scan_counters(leaves: int, examined: int, emitted: int) -> None:
    """Publish one scan's aggregated counters (no-op under REPRO_OBS=0)."""
    if not _metrics.ENABLED:
        return
    _SCANS.inc()
    _LEAVES.inc(leaves)
    _EXAMINED.inc(examined)
    _EMITTED.inc(emitted)
    _PRUNED.inc(examined - emitted)


def scan_pieces(
    tree: MVBT,
    key_low: Key = MIN_KEY,
    key_high: Key = MAX_KEY,
    t1: int = MIN_TIME,
    t2: int = NOW,
) -> list[tuple[Key, int, int, Any]]:
    """The scan's fast path: ``(key, start, end, payload)`` integer pieces.

    Entry intervals are clamped to each node's lifetime inline; no Period
    objects are built (hot loop of every query).
    """
    if key_low >= key_high or t1 >= t2:
        return []
    border = min(t2 - 1, tree.current_time)
    if border < MIN_TIME:
        return []
    obs_on = _metrics.ENABLED
    leaves = examined = 0
    out: list[tuple[Key, int, int, Any]] = []
    for leaf in _visit_leaves(tree, key_low, key_high, t1, t2, border):
        if obs_on:
            leaves += 1
            examined += leaf.count
        scan_leaf_pieces(leaf, key_low, key_high, t1, t2, out)
    if obs_on:
        publish_scan_counters(leaves, examined, len(out))
    return out


def range_interval_scan(
    tree: MVBT,
    key_low: Key = MIN_KEY,
    key_high: Key = MAX_KEY,
    t1: int = MIN_TIME,
    t2: int = NOW,
) -> Iterator[tuple[Key, Period, Any]]:
    """Yield ``(key, effective_period, payload)`` pieces for every entry
    whose key falls in ``[key_low, key_high)`` and whose lifetime intersects
    ``[t1, t2)``."""
    for key, lo, hi, payload in scan_pieces(tree, key_low, key_high, t1, t2):
        yield key, Period(lo, hi), payload


def _visit_leaves(
    tree: MVBT,
    key_low: Key,
    key_high: Key,
    t1: int,
    t2: int,
    border: int,
) -> Iterator[LeafNode]:
    """Leaves intersecting the query region, border-first then backward."""
    queue: deque[Node] = deque()
    visited: set[int] = set()

    def push(node: Node) -> None:
        if id(node) not in visited:
            visited.add(id(node))
            queue.append(node)

    # Step 1: leaves crossing the right border of the region.
    root = tree.root_for(border)
    frontier: list[Node] = [root] if root.lifetime_overlaps(t1, t2) else []
    while frontier:
        node = frontier.pop()
        if node.is_leaf:
            push(node)
            continue
        frontier.extend(
            node.children_overlapping(key_low, key_high, border)
        )

    # Steps 2-3: follow backward links into the past.
    while queue:
        node = queue.popleft()
        # Same-chronon restructuring churn creates nodes with empty
        # lifetimes ([t, t)); every entry clamps to nothing, so skip the
        # scan — but still follow their links to reach earlier lineage.
        if node.is_leaf and node.start < node.death:
            yield node
        for pred in node.predecessors:
            # Key-region bounds survive splits, so predecessors entirely
            # outside the key range can be pruned on both sides; lifetimes
            # outside the time range are pruned exactly.
            if pred.key_low >= key_high:
                continue
            if pred.key_high is not None and pred.key_high <= key_low:
                continue
            if not pred.lifetime_overlaps(t1, t2):
                continue
            push(pred)


def collect_validity(
    tree: MVBT,
    key_low: Key = MIN_KEY,
    key_high: Key = MAX_KEY,
    t1: int = MIN_TIME,
    t2: int = NOW,
) -> dict[Key, PeriodSet]:
    """Coalesced validity periods per key inside the query region.

    This is the result shape of single-pattern matching: each matching key is
    mapped to the coalesced set of its (unclipped) validity periods that
    intersect the time range.
    """
    pieces: dict[Key, list[tuple[int, int]]] = defaultdict(list)
    for key, lo, hi, _ in scan_pieces(tree, key_low, key_high, t1, t2):
        pieces[key].append((lo, hi))
    return {
        key: PeriodSet.from_intervals(parts) for key, parts in pieces.items()
    }
