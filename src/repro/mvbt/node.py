"""MVBT nodes.

Nodes carry their own lifetime ``[start, death)``: a version split *kills* the
old node (sets ``death``) and copies its live entries into new nodes, leaving
the old entries untouched, exactly as in Becker et al.  Readers therefore
clamp every entry's raw interval to the node's lifetime (the *effective
period*) — the predecessor chain reconstructs full intervals across splits.

Leaf nodes have two interchangeable storage backends: a plain entry list and
the delta-compressed byte buffer of Section 4.2 (only leaves are compressed,
matching the paper's trade-off).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from ..model.time import NOW, Period
from .entry import IndexEntry, Key, LeafEntry

if TYPE_CHECKING:  # pragma: no cover
    from .compression import CompressedLeafStore

#: Process-wide node identities.  ``id(node)`` can alias once a node is
#: collected, so anything that outlives a node reference (decoded-record
#: caches, debug maps) keys on ``node.uid`` instead.  Never serialized:
#: snapshots rebuild the graph through dense table indices.
_NODE_UIDS = itertools.count(1)


class _NodeBase:
    """State shared by leaf and index nodes: lifetime, region, lineage."""

    def __init__(self, key_low: Key, start: int) -> None:
        #: Stable per-process identity (see :data:`_NODE_UIDS`).
        self.uid = next(_NODE_UIDS)
        #: Lower bound of the node's key region.
        self.key_low = key_low
        #: Upper bound of the node's key region (None = unbounded).  Kept so
        #: the link-based scan can prune predecessors on both key sides.
        self.key_high: Key | None = None
        #: First version of the node's lifetime.
        self.start = start
        #: Version at which the node was killed (NOW while alive).
        self.death = NOW
        #: Backward links to temporal predecessors (Sec 5.2.1, Fig 4).
        self.predecessors: list[_NodeBase] = []

    @property
    def is_alive(self) -> bool:
        return self.death == NOW

    def lifetime_overlaps(self, t1: int, t2: int) -> bool:
        """Whether the node's lifetime intersects ``[t1, t2)``."""
        return self.start < t2 and t1 < self.death

    def effective_period(self, start: int, end: int) -> Period | None:
        """Clamp a raw entry interval to this node's lifetime."""
        lo = max(start, self.start)
        hi = min(end, self.death)
        if lo >= hi:
            return None
        return Period(lo, hi)

    # -------------------------------------------------------- serialization

    def dump_state(self, node_ids: dict[int, int]) -> dict:
        """Plain-data state of this node; graph links become node ids.

        ``node_ids`` maps ``id(node)`` to a dense index assigned by
        :meth:`repro.mvbt.tree.MVBT.dump_state`; the flat representation
        keeps snapshot encoding iterative (predecessor chains can be long,
        so a naive recursive pickle of the object graph would blow the
        recursion limit).
        """
        return {
            "kind": "leaf" if self.is_leaf else "index",
            "key_low": self.key_low,
            "key_high": self.key_high,
            "start": self.start,
            "death": self.death,
            "predecessors": [node_ids[id(p)] for p in self.predecessors],
            **self._dump_entries(node_ids),
        }

    @staticmethod
    def shell_from_state(state: dict) -> "_NodeBase":
        """An empty node carrying the scalar state (entries/links later)."""
        cls = LeafNode if state["kind"] == "leaf" else IndexNode
        node = cls(state["key_low"], state["start"])
        node.key_high = state["key_high"]
        node.death = state["death"]
        return node


class LeafNode(_NodeBase):
    """An MVBT leaf holding data entries."""

    is_leaf = True

    def __init__(self, key_low: Key, start: int) -> None:
        super().__init__(key_low, start)
        self._entries: list[LeafEntry] | None = []
        self._store: "CompressedLeafStore | None" = None
        self._live_count = 0

    # -------------------------------------------------------------- storage

    @property
    def is_compressed(self) -> bool:
        return self._store is not None

    def compress(self) -> None:
        """Switch to the delta-compressed byte-buffer backend."""
        if self._store is not None:
            return
        from .compression import CompressedLeafStore

        self._store = CompressedLeafStore(self._entries or [])
        self._entries = None

    def decompress(self) -> None:
        """Switch back to the plain entry-list backend.

        Entries are copied out of the store's (frozen, possibly shared)
        decoded tuple: the list backend mutates entries in place on
        logical delete, which must not be visible through any previously
        handed-out tuple.
        """
        if self._store is None:
            return
        self._entries = [e.copy() for e in self._store.entries()]
        self._store.release_memo()
        self._store = None

    # --------------------------------------------------------------- access

    def entries(self) -> Iterator[LeafEntry]:
        """All entries in insertion (nondecreasing start-version) order.

        Treat yielded entries as read-only: compressed leaves yield from
        a decoded tuple that may be shared between readers.
        """
        if self._store is not None:
            return iter(self._store.entries())
        return iter(self._entries)

    def scan_pieces(
        self,
        key_low: Key,
        key_high: Key,
        t1: int,
        t2: int,
        out: list[tuple[Key, int, int, Any]],
    ) -> list[tuple[Key, int, int, Any]]:
        """Append this leaf's ``(key, lo, hi, payload)`` pieces inside the
        query region to ``out`` (the per-leaf unit of every scan).

        Compressed leaves evaluate the predicates directly over the
        packed byte buffer (:meth:`CompressedLeafStore.scan_packed`)
        unless the store's policy prefers the decoded form; plain leaves
        and hot decoded leaves run the same filter over entry objects.
        Entry intervals are clamped to the node's lifetime inline; the
        two paths emit identical pieces in identical order.
        """
        store = self._store
        node_start = self.start
        node_death = self.death
        if store is not None and store.wants_packed():
            return store.scan_packed(
                key_low, key_high, t1, t2, node_start, node_death, out
            )
        append = out.append
        for entry in self.entries():
            key = entry.key
            if key < key_low or key >= key_high:
                continue
            lo = entry.start
            if node_start > lo:
                lo = node_start
            hi = entry.end
            if node_death < hi:
                hi = node_death
            if lo >= hi or lo >= t2 or t1 >= hi:
                continue
            append((key, lo, hi, entry.payload))
        return out

    @property
    def count(self) -> int:
        if self._store is not None:
            return self._store.count
        return len(self._entries)

    @property
    def live_count(self) -> int:
        return self._live_count

    def live_entries(self) -> list[LeafEntry]:
        return [e for e in self.entries() if e.is_live]

    def find_live(self, key: Key) -> LeafEntry | None:
        """The live entry for ``key``, if any (keys unique per version)."""
        for entry in self.entries():
            if entry.is_live and entry.key == key:
                return entry
        return None

    # ------------------------------------------------------------- mutation

    def append(self, entry: LeafEntry) -> None:
        """Append a fresh entry (entries arrive in nondecreasing start)."""
        if self._store is not None:
            self._store.append(entry)
        else:
            self._entries.append(entry)
        if entry.is_live:
            self._live_count += 1

    def end_live(self, key: Key, end: int) -> bool:
        """Logically delete: set the end version of the live ``key`` entry."""
        if self._store is not None:
            done = self._store.end_live(key, end)
        else:
            done = False
            for entry in self._entries:
                if entry.is_live and entry.key == key:
                    entry.end = end
                    done = True
                    break
        if done:
            self._live_count -= 1
        return done

    def sizeof(self) -> int:
        """Storage-layout size in bytes (see ``repro.bench.sizing``)."""
        from .compression import STANDARD_ENTRY_BYTES, NODE_HEADER_BYTES

        if self._store is not None:
            return self._store.sizeof()
        return NODE_HEADER_BYTES + STANDARD_ENTRY_BYTES * len(self._entries)

    # -------------------------------------------------------- serialization

    def _dump_entries(self, node_ids: dict[int, int]) -> dict:
        if self._store is not None:
            # Compressed leaves ship their raw byte buffer: restore is
            # byte-identical and pays no re-encode.
            return {
                "store": self._store.to_state(),
                "live_count": self._live_count,
            }
        return {
            "entries": [
                (e.key, e.start, e.end, e.payload) for e in self._entries
            ],
        }

    def restore_entries(self, state: dict, nodes: list["_NodeBase"]) -> None:
        if "store" in state:
            from .compression import CompressedLeafStore

            self._store = CompressedLeafStore.from_state(state["store"])
            self._entries = None
            self._live_count = state["live_count"]
            return
        for key, start, end, payload in state["entries"]:
            self.append(LeafEntry(tuple(key), start, end, payload))

    def __repr__(self) -> str:
        state = "live" if self.is_alive else f"dead@{self.death}"
        return (
            f"<LeafNode key_low={self.key_low} [{self.start},{self.death}) "
            f"{self.count} entries ({self.live_count} live) {state}>"
        )


class IndexNode(_NodeBase):
    """An MVBT index (routing) node; never compressed."""

    is_leaf = False

    def __init__(self, key_low: Key, start: int) -> None:
        super().__init__(key_low, start)
        self._entries: list[IndexEntry] = []
        self._live_count = 0

    def entries(self) -> Iterator[IndexEntry]:
        return iter(self._entries)

    @property
    def count(self) -> int:
        return len(self._entries)

    @property
    def live_count(self) -> int:
        return self._live_count

    def live_entries(self) -> list[IndexEntry]:
        return [e for e in self._entries if e.is_live]

    def append(self, entry: IndexEntry) -> None:
        self._entries.append(entry)
        if entry.is_live:
            self._live_count += 1

    def end_child(self, child: _NodeBase, end: int) -> bool:
        """Kill the live routing entry pointing at ``child``."""
        for entry in self._entries:
            if entry.is_live and entry.child is child:
                entry.end = end
                self._live_count -= 1
                return True
        return False

    def route(self, key: Key, chronon: int) -> _NodeBase:
        """The child whose region contains ``key`` at version ``chronon``."""
        best: IndexEntry | None = None
        for entry in self._entries:
            if not entry.alive_at(chronon):
                continue
            if entry.key <= key and (best is None or entry.key > best.key):
                best = entry
        if best is None:
            raise LookupError(
                f"no route for key {key!r} at version {chronon}"
            )
        return best.child

    def children_overlapping(
        self, key_low: Key, key_high: Key, chronon: int
    ) -> list[_NodeBase]:
        """Children alive at ``chronon`` whose region intersects
        ``[key_low, key_high)``.

        The live entries at ``chronon`` partition the node's key region; each
        child's region is ``[entry.key, next_entry.key)``.
        """
        alive = sorted(
            (e for e in self._entries if e.alive_at(chronon)),
            key=lambda e: e.key,
        )
        out: list[_NodeBase] = []
        for idx, entry in enumerate(alive):
            upper = alive[idx + 1].key if idx + 1 < len(alive) else None
            if upper is not None and upper <= key_low:
                continue
            if entry.key >= key_high:
                break
            out.append(entry.child)
        return out

    def sizeof(self) -> int:
        from .compression import STANDARD_ENTRY_BYTES, NODE_HEADER_BYTES

        return NODE_HEADER_BYTES + STANDARD_ENTRY_BYTES * len(self._entries)

    # -------------------------------------------------------- serialization

    def _dump_entries(self, node_ids: dict[int, int]) -> dict:
        return {
            "entries": [
                (e.key, e.start, e.end, node_ids[id(e.child)])
                for e in self._entries
            ],
        }

    def restore_entries(self, state: dict, nodes: list["_NodeBase"]) -> None:
        for key, start, end, child_id in state["entries"]:
            self.append(IndexEntry(tuple(key), start, end, nodes[child_id]))

    def __repr__(self) -> str:
        state = "live" if self.is_alive else f"dead@{self.death}"
        return (
            f"<IndexNode key_low={self.key_low} [{self.start},{self.death}) "
            f"{self.count} entries ({self.live_count} live) {state}>"
        )


Node = _NodeBase


def live_partition(entries: Iterable[IndexEntry], chronon: int) -> list[IndexEntry]:
    """Live routing entries at ``chronon`` sorted by region lower bound."""
    return sorted((e for e in entries if e.alive_at(chronon)), key=lambda e: e.key)
