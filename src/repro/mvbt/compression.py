"""Delta compression of MVBT leaf nodes (Section 4.2, Figure 3(a)).

An uncompressed MVBT entry for temporal RDF holds five values
``(v1, v2, v3, ts, te)``.  The compressed store keeps per-node *base values*
(the minima at compression time) and encodes each entry as:

``[header][key block][time block]``

**Normal header** — 2 bytes::

    bit 15    H flag = 0 (normal)
    bits 14-13  l1   byte-length code of v1 delta   } 7-bit key payload
    bits 12-11  l2   byte-length code of v2 delta   }
    bits 10-9   l3   byte-length code of v3 delta   }
    bit  8      src1 v1 delta vs predecessor (1) or node minimum (0)
    bits 7-6    lts  byte-length code of ts delta   } 6-bit time payload
    bits 5-4    lte  byte-length code of te value   }
    bit  3      src2 (delta source flag of v2)
    bit  2      src3 (delta source flag of v3)
    bits 1-0    te flag: 0 = live (te empty), 1 = short interval
                (te stored as interval length), 2 = delta vs node min te

**Compact header** — 1 byte, used when the entry and its predecessor share
``v1``, both are live (te = now), and the remaining deltas are small — the
common case the paper observes in large datasets::

    bit 7     H flag = 1 (compact)
    bits 6-5  l2   byte-length code of v2 delta vs predecessor
    bits 4-3  l3   byte-length code of v3 delta vs predecessor
    bits 2-1  lts  byte-length code of ts delta vs predecessor
    bit 0     reserved

Byte-length codes map ``{0: 0, 1: 1, 2: 2, 3: 4}`` bytes; deltas are
zigzag-encoded so negative neighbour deltas stay compact.  ``ts`` is always a
delta against the node minimum in normal entries (entries arrive in
nondecreasing start order, so the *checkpoint* — the position and value of the
entry with the largest ts — lets appends encode without rescanning).

The packed buffer is also the **scan substrate**: :func:`scan_packed` walks
it directly, evaluating the key-range and clamped-interval predicates on the
running decoded state and materializing ``(key, lo, hi, payload)`` pieces
only for survivors — no per-entry objects, no full-leaf expansion.  Decoded
entry lists are kept only for *hot* leaves, under a process-wide budget (see
``docs/compression.md``); the ``REPRO_PACKED_SCAN`` switch selects adaptive
packed scanning (``1``/``auto``, the default), legacy decode-then-filter
(``0``), or always-packed (``2``/``force``) for A/B and identity runs.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Iterator

from ..model.time import NOW
from ..obs import metrics as _metrics
from .entry import Key, LeafEntry

# Decode instrumentation: a "page decode" is one cache-miss expansion of a
# compressed leaf buffer back into entries (no-ops under REPRO_OBS=0).
_PAGES_DECODED = _metrics.counter("mvbt.compression.leaves_decoded")
_ENTRIES_DECODED = _metrics.counter("mvbt.compression.entries_decoded")
_BYTES_DECODED = _metrics.counter("mvbt.compression.bytes_decoded")
# Packed-scan instrumentation: scans answered directly over the byte
# buffer, and the entries those scans filtered out without materializing.
_PACKED_SCANS = _metrics.counter("mvbt.compression.packed_scans")
_PACKED_SKIPPED = _metrics.counter("mvbt.compression.packed_entries_skipped")

#: Simulated storage-layout size of an uncompressed entry: five 64-bit values
#: plus a pointer/flag word (see DESIGN.md; Python heap sizes would distort
#: every ratio the paper reports).
STANDARD_ENTRY_BYTES = 48

#: Per-node header: lifetime, key_low, link and bookkeeping words.
NODE_HEADER_BYTES = 64

#: Interval lengths up to this bound use the "short interval" te rule.
SHORT_INTERVAL_LIMIT = 0xFFFF

_LEN_CODE_TO_BYTES = (0, 1, 2, 4)

# ------------------------------------------------------------ scan switch

#: ``REPRO_PACKED_SCAN`` modes: never scan packed (legacy decode-then-
#: filter), adaptive (packed unless the leaf is hot / already decoded),
#: always packed (ignore any decoded memo).
PACKED_OFF, PACKED_AUTO, PACKED_FORCE = 0, 1, 2


def _parse_packed_mode(raw: str | None) -> int:
    if raw is None:
        return PACKED_AUTO
    text = raw.strip().lower()
    if text in ("0", "false", "off", "no"):
        return PACKED_OFF
    if text in ("2", "force", "always"):
        return PACKED_FORCE
    # "", "1", "on", "auto", ...: packed scanning enabled, adaptive.
    return PACKED_AUTO


_PACKED_MODE = _parse_packed_mode(os.environ.get("REPRO_PACKED_SCAN"))


def packed_mode() -> int:
    """The active packed-scan mode (``PACKED_OFF/AUTO/FORCE``)."""
    return _PACKED_MODE


def set_packed_mode(mode: int) -> int:
    """Override the packed-scan mode at runtime; returns the previous one
    (tests and A/B benchmarks; servers set ``REPRO_PACKED_SCAN``)."""
    global _PACKED_MODE
    previous = _PACKED_MODE
    _PACKED_MODE = mode
    return previous


# ------------------------------------------------------------- memo policy

#: Default full decodes + packed scans of one leaf before it counts as
#: *hot* and may keep its decoded entry tuple resident
#: (``REPRO_LEAF_MEMO_HOT_USES``).  2 means: first touch scans packed
#: (cold leaves allocate nothing), second touch decodes and memoizes —
#: so repeat-scanned leaves reach the warm decoded path immediately
#: while single-touch leaves never expand.
HOT_USES = 2

#: Process-wide ceiling on decoded entries kept resident across all leaves
#: (``REPRO_LEAF_MEMO_ENTRIES``); cold or over-budget leaves always scan
#: packed and decode on demand.
_DEFAULT_MEMO_BUDGET = 1 << 18


def _parse_budget(raw: str | None, default: int) -> int:
    if raw is None:
        return default
    try:
        return max(int(raw.strip()), 0)
    except ValueError:
        return default


_MEMO_BUDGET = _parse_budget(
    os.environ.get("REPRO_LEAF_MEMO_ENTRIES"), _DEFAULT_MEMO_BUDGET
)
_HOT_USES = _parse_budget(
    os.environ.get("REPRO_LEAF_MEMO_HOT_USES"), HOT_USES
)
_memo_lock = threading.Lock()
_memo_entries = 0


def memo_entries() -> int:
    """Decoded entries currently held resident across all leaf memos."""
    return _memo_entries


def memo_budget() -> int:
    """The process-wide memo ceiling, in entries."""
    return _MEMO_BUDGET


def set_memo_policy(hot_uses: int | None = None,
                    budget: int | None = None) -> tuple[int, int]:
    """Override the hot threshold and/or budget; returns the previous pair
    (tests and the A/B benchmark; ``hot_uses=1, budget`` huge reproduces
    the legacy unconditional memo)."""
    global _HOT_USES, _MEMO_BUDGET
    previous = (_HOT_USES, _MEMO_BUDGET)
    if hot_uses is not None:
        _HOT_USES = hot_uses
    if budget is not None:
        _MEMO_BUDGET = budget
    return previous


class CompressionError(ValueError):
    """Raised when an entry cannot be delta-encoded."""


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _len_code(value: int) -> int:
    """Smallest byte-length code able to hold unsigned ``value``."""
    if value == 0:
        return 0
    if value < 1 << 8:
        return 1
    if value < 1 << 16:
        return 2
    if value < 1 << 32:
        return 3
    raise CompressionError(f"delta too large to encode: {value}")


def _emit(buf: bytearray, value: int, code: int) -> None:
    buf.extend(value.to_bytes(_LEN_CODE_TO_BYTES[code], "big"))


def _take(buf: bytes, pos: int, code: int) -> tuple[int, int]:
    width = _LEN_CODE_TO_BYTES[code]
    return int.from_bytes(buf[pos : pos + width], "big"), pos + width


def scan_packed(
    buf_view: "memoryview | bytes | bytearray",
    key_low: Key,
    key_high: Key,
    t1: int,
    t2: int,
    node_start: int,
    node_death: int,
    base_v: tuple[int, int, int] = (0, 0, 0),
    base_ts: int = 0,
    base_te: int = 0,
    out: list[tuple[Key, int, int, Any]] | None = None,
) -> list[tuple[Key, int, int, Any]]:
    """Range-interval scan directly over a packed leaf buffer.

    Walks the delta-encoded buffer once, maintaining the running decoded
    state ``(k1, k2, k3, ts)``, and evaluates the key-range predicate
    ``key_low <= key < key_high`` plus the lifetime-clamped interval
    predicate (``[start, end)`` clamped to ``[node_start, node_death)``
    must intersect ``[t1, t2)``) inline.  Only survivors materialize a
    ``(key, lo, hi, None)`` piece — filtered entries never become Python
    objects, which is what makes the packed buffer the operational form
    rather than a storage-only encoding (ROADMAP "scan-on-compressed").

    Emitted pieces are element-for-element identical, in identical order,
    to decoding the whole buffer and filtering (the legacy path); the
    hypothesis suite in ``tests/test_scan_packed.py`` pins this.
    """
    if out is None:
        out = []
    append = out.append
    buf = buf_view
    pos = 0
    size = len(buf)
    widths = _LEN_CODE_TO_BYTES
    base_v1, base_v2, base_v3 = base_v
    from_bytes = int.from_bytes
    k1 = k2 = k3 = start = 0
    examined = emitted = 0
    while pos < size:
        first = buf[pos]
        if first & 0x80:  # compact: shares v1, live, deltas vs prev
            pos += 1
            w = widths[(first >> 5) & 0x3]
            d2 = from_bytes(buf[pos : pos + w], "big")
            pos += w
            w = widths[(first >> 3) & 0x3]
            d3 = from_bytes(buf[pos : pos + w], "big")
            pos += w
            w = widths[(first >> 1) & 0x3]
            dts = from_bytes(buf[pos : pos + w], "big")
            pos += w
            k2 += (d2 >> 1) ^ -(d2 & 1)
            k3 += (d3 >> 1) ^ -(d3 & 1)
            start += (dts >> 1) ^ -(dts & 1)
            end = NOW
        else:
            header = (first << 8) | buf[pos + 1]
            pos += 2
            w = widths[(header >> 13) & 0x3]
            raw = from_bytes(buf[pos : pos + w], "big")
            pos += w
            d1 = (raw >> 1) ^ -(raw & 1)
            w = widths[(header >> 11) & 0x3]
            raw = from_bytes(buf[pos : pos + w], "big")
            pos += w
            d2 = (raw >> 1) ^ -(raw & 1)
            w = widths[(header >> 9) & 0x3]
            raw = from_bytes(buf[pos : pos + w], "big")
            pos += w
            d3 = (raw >> 1) ^ -(raw & 1)
            k1 = (k1 + d1) if header & 0x100 else base_v1 + d1
            k2 = (k2 + d2) if header & 0x8 else base_v2 + d2
            k3 = (k3 + d3) if header & 0x4 else base_v3 + d3
            w = widths[(header >> 6) & 0x3]
            start = base_ts + from_bytes(buf[pos : pos + w], "big")
            pos += w
            w = widths[(header >> 4) & 0x3]
            te_raw = from_bytes(buf[pos : pos + w], "big")
            pos += w
            te_flag = header & 0x3
            if te_flag == 0:
                end = NOW
            elif te_flag == 1:
                end = start + te_raw
            else:
                end = base_te + ((te_raw >> 1) ^ -(te_raw & 1))
        examined += 1
        # Clamp to the node lifetime, then test the query region.
        lo = start if start > node_start else node_start
        hi = end if end < node_death else node_death
        if lo >= hi or lo >= t2 or t1 >= hi:
            continue
        key = (k1, k2, k3)
        if key < key_low or key >= key_high:
            continue
        emitted += 1
        append((key, lo, hi, None))
    if _metrics.ENABLED:
        _PACKED_SCANS.inc()
        _PACKED_SKIPPED.inc(examined - emitted)
    return out


class CompressedLeafStore:
    """Byte-buffer backend of a compressed MVBT leaf."""

    __slots__ = (
        "_buf",
        "count",
        "_base_v",
        "_base_ts",
        "_base_te",
        "_checkpoint_ts",
        "_last_entry",
        "_decoded",
        "_uses",
        "_memo_charge",
    )

    def __init__(self, entries: list[LeafEntry]) -> None:
        for entry in entries:
            if entry.payload is not None:
                raise CompressionError("compressed leaves carry no payloads")
            if len(entry.key) != 3:
                raise CompressionError("compressed leaves need 3-part keys")
        self.count = 0
        if entries:
            self._base_v = (
                min(e.key[0] for e in entries),
                min(e.key[1] for e in entries),
                min(e.key[2] for e in entries),
            )
            self._base_ts = min(e.start for e in entries)
            finite = [e.end for e in entries if e.end != NOW]
            self._base_te = min(finite) if finite else 0
        else:
            self._base_v = (0, 0, 0)
            self._base_ts = 0
            self._base_te = 0
        self._buf = bytearray()
        self._last_entry: LeafEntry | None = None
        self._checkpoint_ts = self._base_ts
        self._decoded: tuple[LeafEntry, ...] | None = None
        self._uses = 0
        self._memo_charge = 0
        for entry in entries:
            self.append(entry)

    # --------------------------------------------------------------- encode

    def append(self, entry: LeafEntry) -> None:
        """Delta-encode ``entry`` against the checkpoint (last) entry."""
        if entry.payload is not None:
            raise CompressionError("compressed leaves carry no payloads")
        self._encode(self._buf, entry, self._last_entry)
        self._last_entry = entry.copy()
        self._checkpoint_ts = max(self._checkpoint_ts, entry.start)
        self.count += 1
        self._invalidate()

    def _encode(
        self, buf: bytearray, entry: LeafEntry, prev: LeafEntry | None
    ) -> None:
        ts_delta = entry.start - self._base_ts
        if ts_delta < 0:
            raise CompressionError("entries must arrive in nondecreasing ts")
        compact = (
            prev is not None
            and entry.key[0] == prev.key[0]
            and entry.end == NOW
            and prev.end == NOW
        )
        if compact:
            d2 = _zigzag(entry.key[1] - prev.key[1])
            d3 = _zigzag(entry.key[2] - prev.key[2])
            dts = _zigzag(entry.start - prev.start)
            l2, l3, lts = _len_code(d2), _len_code(d3), _len_code(dts)
            header = 0x80 | (l2 << 5) | (l3 << 3) | (lts << 1)
            buf.append(header)
            _emit(buf, d2, l2)
            _emit(buf, d3, l3)
            _emit(buf, dts, lts)
            return
        # Normal entry: per-value choice of delta source.
        deltas: list[int] = []
        sources: list[int] = []
        for i in range(3):
            vs_base = _zigzag(entry.key[i] - self._base_v[i])
            if prev is not None:
                vs_prev = _zigzag(entry.key[i] - prev.key[i])
                if _len_code(vs_prev) < _len_code(vs_base):
                    deltas.append(vs_prev)
                    sources.append(1)
                    continue
            deltas.append(vs_base)
            sources.append(0)
        lens = [_len_code(d) for d in deltas]
        if entry.end == NOW:
            te_flag, te_value = 0, 0
        elif entry.end - entry.start <= SHORT_INTERVAL_LIMIT:
            te_flag, te_value = 1, entry.end - entry.start
        else:
            te_flag, te_value = 2, _zigzag(entry.end - self._base_te)
        lts = _len_code(ts_delta)
        lte = _len_code(te_value)
        header = (
            (lens[0] << 13)
            | (lens[1] << 11)
            | (lens[2] << 9)
            | (sources[0] << 8)
            | (lts << 6)
            | (lte << 4)
            | (sources[1] << 3)
            | (sources[2] << 2)
            | te_flag
        )
        buf.extend(header.to_bytes(2, "big"))
        for delta, code in zip(deltas, lens):
            _emit(buf, delta, code)
        _emit(buf, ts_delta, lts)
        _emit(buf, te_value, lte)

    # --------------------------------------------------------------- decode

    def entries(self) -> tuple[LeafEntry, ...]:
        """Decode the whole buffer back into a **frozen** entry tuple.

        Callers must treat the returned tuple and the entries inside it as
        immutable: hot leaves hand out their memoized tuple directly, and
        mutating an element would corrupt every other reader (go through
        :meth:`append` / :meth:`end_live`; lint rule RL005 flags external
        mutation).

        The decoded form is memoized only for *hot* leaves (``HOT_USES``
        full decodes or packed scans) and only while the process-wide
        entry budget (``REPRO_LEAF_MEMO_ENTRIES``) has room — cold leaves
        decode on demand and scans run packed (:func:`scan_packed`), so a
        large mostly-cold index no longer keeps every leaf expanded into
        Python objects.  Reported index sizes are layout bytes and
        unaffected by the memo.
        """
        if self._decoded is not None:
            return self._decoded
        self._uses += 1
        out: list[LeafEntry] = []
        buf = self._buf
        pos = 0
        size = len(buf)
        widths = _LEN_CODE_TO_BYTES
        base_v1, base_v2, base_v3 = self._base_v
        base_ts = self._base_ts
        base_te = self._base_te
        from_bytes = int.from_bytes
        append = out.append
        k1 = k2 = k3 = start = 0
        while pos < size:
            first = buf[pos]
            if first & 0x80:  # compact: shares v1, live, deltas vs prev
                pos += 1
                w = widths[(first >> 5) & 0x3]
                d2 = from_bytes(buf[pos : pos + w], "big")
                pos += w
                w = widths[(first >> 3) & 0x3]
                d3 = from_bytes(buf[pos : pos + w], "big")
                pos += w
                w = widths[(first >> 1) & 0x3]
                dts = from_bytes(buf[pos : pos + w], "big")
                pos += w
                k2 += (d2 >> 1) ^ -(d2 & 1)
                k3 += (d3 >> 1) ^ -(d3 & 1)
                start += (dts >> 1) ^ -(dts & 1)
                entry = LeafEntry((k1, k2, k3), start, NOW, None)
            else:
                header = (first << 8) | buf[pos + 1]
                pos += 2
                values = []
                for code in (
                    (header >> 13) & 0x3,
                    (header >> 11) & 0x3,
                    (header >> 9) & 0x3,
                ):
                    w = widths[code]
                    raw = from_bytes(buf[pos : pos + w], "big")
                    pos += w
                    values.append((raw >> 1) ^ -(raw & 1))
                nk1 = (k1 + values[0]) if header & 0x100 else base_v1 + values[0]
                nk2 = (k2 + values[1]) if header & 0x8 else base_v2 + values[1]
                nk3 = (k3 + values[2]) if header & 0x4 else base_v3 + values[2]
                w = widths[(header >> 6) & 0x3]
                start = base_ts + from_bytes(buf[pos : pos + w], "big")
                pos += w
                w = widths[(header >> 4) & 0x3]
                te_raw = from_bytes(buf[pos : pos + w], "big")
                pos += w
                te_flag = header & 0x3
                if te_flag == 0:
                    end = NOW
                elif te_flag == 1:
                    end = start + te_raw
                else:
                    end = base_te + ((te_raw >> 1) ^ -(te_raw & 1))
                k1, k2, k3 = nk1, nk2, nk3
                entry = LeafEntry((k1, k2, k3), start, end, None)
            append(entry)
        decoded = tuple(out)
        if _metrics.ENABLED:
            _PAGES_DECODED.inc()
            _ENTRIES_DECODED.inc(len(out))
            _BYTES_DECODED.inc(size)
        self._maybe_memoize(decoded)
        return decoded

    def _maybe_memoize(self, decoded: tuple[LeafEntry, ...]) -> None:
        """Keep ``decoded`` resident iff the leaf is hot and the budget
        admits it.  The global accounting runs under a lock; the common
        (cold) path never takes it."""
        global _memo_entries
        if self._uses < _HOT_USES:
            return
        with _memo_lock:
            if self._decoded is not None:
                return
            if _memo_entries + self.count > _MEMO_BUDGET:
                return
            _memo_entries += self.count
            self._memo_charge = self.count
            self._decoded = decoded

    def _invalidate(self) -> None:
        """Drop the decoded memo (a mutation re-shaped the buffer)."""
        global _memo_entries
        if self._memo_charge:
            with _memo_lock:
                _memo_entries -= self._memo_charge
            self._memo_charge = 0
        self._decoded = None

    def release_memo(self) -> None:
        """Drop any resident decoded form and return its budget charge
        (callers that retire a store, e.g. ``LeafNode.decompress``)."""
        self._invalidate()

    def promotable(self) -> bool:
        """Whether the next full decode would memoize (hot + budget room).

        The impending use counts toward the threshold, so with
        ``HOT_USES = 2`` the first touch scans packed and the *second*
        decodes and memoizes — repeat-scanned leaves reach the warm
        decoded path without a third cold pass.  An unlocked pre-check —
        :meth:`_maybe_memoize` re-validates under the lock, so a lost
        race only costs one redundant decode.
        """
        return (
            self._uses + 1 >= _HOT_USES
            and _memo_entries + self.count <= _MEMO_BUDGET
        )

    # ----------------------------------------------------------------- scan

    def wants_packed(self) -> bool:
        """Whether a scan of this leaf should run over the packed buffer.

        ``PACKED_FORCE`` always scans packed, ``PACKED_OFF`` never does;
        in the adaptive default a scan goes packed unless the decoded
        form is already resident (free to reuse) or the leaf just turned
        hot (decode once, then reuse).
        """
        mode = _PACKED_MODE
        if mode == PACKED_AUTO:
            return self._decoded is None and not self.promotable()
        return mode == PACKED_FORCE

    def scan_packed(
        self,
        key_low: Key,
        key_high: Key,
        t1: int,
        t2: int,
        node_start: int,
        node_death: int,
        out: list[tuple[Key, int, int, Any]] | None = None,
    ) -> list[tuple[Key, int, int, Any]]:
        """:func:`scan_packed` over this store's buffer and base values."""
        self._uses += 1
        # ``bytes`` indexes and slices measurably faster than a
        # ``memoryview`` in the decoder's hot loop; the copy is one
        # memcpy per scan and the buffer is never large.
        return scan_packed(
            bytes(self._buf), key_low, key_high, t1, t2,
            node_start, node_death,
            self._base_v, self._base_ts, self._base_te, out,
        )

    # ------------------------------------------------------------- mutation

    def _walk(self) -> Iterator[tuple[int, LeafEntry]]:
        """Yield ``(byte_offset, entry)`` pairs, decoding incrementally.

        The mutation-path decoder: entries are fresh objects (never the
        memo), and each pair records where the entry's encoding starts so
        :meth:`end_live` can splice the buffer tail.
        """
        buf = self._buf
        pos = 0
        size = len(buf)
        widths = _LEN_CODE_TO_BYTES
        base_v1, base_v2, base_v3 = self._base_v
        base_ts = self._base_ts
        base_te = self._base_te
        from_bytes = int.from_bytes
        k1 = k2 = k3 = start = 0
        while pos < size:
            offset = pos
            first = buf[pos]
            if first & 0x80:
                pos += 1
                w = widths[(first >> 5) & 0x3]
                d2 = from_bytes(buf[pos : pos + w], "big")
                pos += w
                w = widths[(first >> 3) & 0x3]
                d3 = from_bytes(buf[pos : pos + w], "big")
                pos += w
                w = widths[(first >> 1) & 0x3]
                dts = from_bytes(buf[pos : pos + w], "big")
                pos += w
                k2 += (d2 >> 1) ^ -(d2 & 1)
                k3 += (d3 >> 1) ^ -(d3 & 1)
                start += (dts >> 1) ^ -(dts & 1)
                end = NOW
            else:
                header = (first << 8) | buf[pos + 1]
                pos += 2
                values = []
                for code in (
                    (header >> 13) & 0x3,
                    (header >> 11) & 0x3,
                    (header >> 9) & 0x3,
                ):
                    w = widths[code]
                    raw = from_bytes(buf[pos : pos + w], "big")
                    pos += w
                    values.append((raw >> 1) ^ -(raw & 1))
                k1 = (k1 + values[0]) if header & 0x100 else base_v1 + values[0]
                k2 = (k2 + values[1]) if header & 0x8 else base_v2 + values[1]
                k3 = (k3 + values[2]) if header & 0x4 else base_v3 + values[2]
                w = widths[(header >> 6) & 0x3]
                start = base_ts + from_bytes(buf[pos : pos + w], "big")
                pos += w
                w = widths[(header >> 4) & 0x3]
                te_raw = from_bytes(buf[pos : pos + w], "big")
                pos += w
                te_flag = header & 0x3
                if te_flag == 0:
                    end = NOW
                elif te_flag == 1:
                    end = start + te_raw
                else:
                    end = base_te + ((te_raw >> 1) ^ -(te_raw & 1))
            yield offset, LeafEntry((k1, k2, k3), start, end, None)

    def end_live(self, key: Key, end: int) -> bool:
        """Set the end version of the live ``key`` entry, re-encoding the
        buffer **tail** from the modified entry onward (Section 4.2.2).

        Bytes before the modified entry are kept as-is: an entry's
        encoding depends only on itself, its immediate predecessor, and
        the node base values, so only the target (whose ``te`` rule
        changes) and its successor (whose compact-header eligibility may
        change) can re-encode differently — everything later is
        re-emitted byte-identically.  The decoded entries are fresh
        copies from the buffer walk, never the shared memo, so an
        in-flight reader holding a previously returned tuple keeps
        seeing the pre-delete state; the memo is invalidated after the
        splice.
        """
        offset = None
        prev: LeafEntry | None = None
        tail: list[LeafEntry] = []
        for off, entry in self._walk():
            if offset is None:
                if entry.end == NOW and entry.key == key:
                    offset = off
                    entry.end = end
                    tail.append(entry)
                else:
                    prev = entry
            else:
                tail.append(entry)
        if offset is None:
            return False
        del self._buf[offset:]
        for entry in tail:
            self._encode(self._buf, entry, prev)
            prev = entry
        self._last_entry = prev.copy() if prev is not None else None
        self._invalidate()
        return True

    def sizeof(self) -> int:
        """Storage-layout size: buffer plus node header and base values."""
        return NODE_HEADER_BYTES + 5 * 8 + len(self._buf)

    # -------------------------------------------------------- serialization

    def to_state(self) -> dict:
        """Plain-data state for snapshots: the raw buffer plus the base
        values and append checkpoint, so a restored store encodes future
        appends identically to the original."""
        last = self._last_entry
        return {
            "buf": bytes(self._buf),
            "count": self.count,
            "base_v": self._base_v,
            "base_ts": self._base_ts,
            "base_te": self._base_te,
            "checkpoint_ts": self._checkpoint_ts,
            "last_entry": (
                None if last is None else (last.key, last.start, last.end)
            ),
        }

    @classmethod
    def from_state(cls, state: dict) -> "CompressedLeafStore":
        store = cls.__new__(cls)
        store._buf = bytearray(state["buf"])
        store.count = state["count"]
        store._base_v = tuple(state["base_v"])
        store._base_ts = state["base_ts"]
        store._base_te = state["base_te"]
        store._checkpoint_ts = state["checkpoint_ts"]
        last = state["last_entry"]
        store._last_entry = (
            None if last is None
            else LeafEntry(tuple(last[0]), last[1], last[2], None)
        )
        store._decoded = None
        store._uses = 0
        store._memo_charge = 0
        return store
