"""Delta compression of MVBT leaf nodes (Section 4.2, Figure 3(a)).

An uncompressed MVBT entry for temporal RDF holds five values
``(v1, v2, v3, ts, te)``.  The compressed store keeps per-node *base values*
(the minima at compression time) and encodes each entry as:

``[header][key block][time block]``

**Normal header** — 2 bytes::

    bit 15    H flag = 0 (normal)
    bits 14-13  l1   byte-length code of v1 delta   } 7-bit key payload
    bits 12-11  l2   byte-length code of v2 delta   }
    bits 10-9   l3   byte-length code of v3 delta   }
    bit  8      src1 v1 delta vs predecessor (1) or node minimum (0)
    bits 7-6    lts  byte-length code of ts delta   } 6-bit time payload
    bits 5-4    lte  byte-length code of te value   }
    bit  3      src2 (delta source flag of v2)
    bit  2      src3 (delta source flag of v3)
    bits 1-0    te flag: 0 = live (te empty), 1 = short interval
                (te stored as interval length), 2 = delta vs node min te

**Compact header** — 1 byte, used when the entry and its predecessor share
``v1``, both are live (te = now), and the remaining deltas are small — the
common case the paper observes in large datasets::

    bit 7     H flag = 1 (compact)
    bits 6-5  l2   byte-length code of v2 delta vs predecessor
    bits 4-3  l3   byte-length code of v3 delta vs predecessor
    bits 2-1  lts  byte-length code of ts delta vs predecessor
    bit 0     reserved

Byte-length codes map ``{0: 0, 1: 1, 2: 2, 3: 4}`` bytes; deltas are
zigzag-encoded so negative neighbour deltas stay compact.  ``ts`` is always a
delta against the node minimum in normal entries (entries arrive in
nondecreasing start order, so the *checkpoint* — the position and value of the
entry with the largest ts — lets appends encode without rescanning).
"""

from __future__ import annotations

from ..model.time import NOW
from ..obs import metrics as _metrics
from .entry import Key, LeafEntry

# Decode instrumentation: a "page decode" is one cache-miss expansion of a
# compressed leaf buffer back into entries (no-ops under REPRO_OBS=0).
_PAGES_DECODED = _metrics.counter("mvbt.compression.leaves_decoded")
_ENTRIES_DECODED = _metrics.counter("mvbt.compression.entries_decoded")
_BYTES_DECODED = _metrics.counter("mvbt.compression.bytes_decoded")

#: Simulated storage-layout size of an uncompressed entry: five 64-bit values
#: plus a pointer/flag word (see DESIGN.md; Python heap sizes would distort
#: every ratio the paper reports).
STANDARD_ENTRY_BYTES = 48

#: Per-node header: lifetime, key_low, link and bookkeeping words.
NODE_HEADER_BYTES = 64

#: Interval lengths up to this bound use the "short interval" te rule.
SHORT_INTERVAL_LIMIT = 0xFFFF

_LEN_CODE_TO_BYTES = (0, 1, 2, 4)


class CompressionError(ValueError):
    """Raised when an entry cannot be delta-encoded."""


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _len_code(value: int) -> int:
    """Smallest byte-length code able to hold unsigned ``value``."""
    if value == 0:
        return 0
    if value < 1 << 8:
        return 1
    if value < 1 << 16:
        return 2
    if value < 1 << 32:
        return 3
    raise CompressionError(f"delta too large to encode: {value}")


def _emit(buf: bytearray, value: int, code: int) -> None:
    buf.extend(value.to_bytes(_LEN_CODE_TO_BYTES[code], "big"))


def _take(buf: bytes, pos: int, code: int) -> tuple[int, int]:
    width = _LEN_CODE_TO_BYTES[code]
    return int.from_bytes(buf[pos : pos + width], "big"), pos + width


class CompressedLeafStore:
    """Byte-buffer backend of a compressed MVBT leaf."""

    __slots__ = (
        "_buf",
        "count",
        "_base_v",
        "_base_ts",
        "_base_te",
        "_checkpoint_ts",
        "_last_entry",
        "_decoded",
    )

    def __init__(self, entries: list[LeafEntry]) -> None:
        for entry in entries:
            if entry.payload is not None:
                raise CompressionError("compressed leaves carry no payloads")
            if len(entry.key) != 3:
                raise CompressionError("compressed leaves need 3-part keys")
        self.count = 0
        if entries:
            self._base_v = (
                min(e.key[0] for e in entries),
                min(e.key[1] for e in entries),
                min(e.key[2] for e in entries),
            )
            self._base_ts = min(e.start for e in entries)
            finite = [e.end for e in entries if e.end != NOW]
            self._base_te = min(finite) if finite else 0
        else:
            self._base_v = (0, 0, 0)
            self._base_ts = 0
            self._base_te = 0
        self._buf = bytearray()
        self._last_entry: LeafEntry | None = None
        self._checkpoint_ts = self._base_ts
        self._decoded: list[LeafEntry] | None = None
        for entry in entries:
            self.append(entry)

    # --------------------------------------------------------------- encode

    def append(self, entry: LeafEntry) -> None:
        """Delta-encode ``entry`` against the checkpoint (last) entry."""
        if entry.payload is not None:
            raise CompressionError("compressed leaves carry no payloads")
        self._encode(self._buf, entry, self._last_entry)
        self._last_entry = entry.copy()
        self._checkpoint_ts = max(self._checkpoint_ts, entry.start)
        self.count += 1
        self._decoded = None

    def _encode(
        self, buf: bytearray, entry: LeafEntry, prev: LeafEntry | None
    ) -> None:
        ts_delta = entry.start - self._base_ts
        if ts_delta < 0:
            raise CompressionError("entries must arrive in nondecreasing ts")
        compact = (
            prev is not None
            and entry.key[0] == prev.key[0]
            and entry.end == NOW
            and prev.end == NOW
        )
        if compact:
            d2 = _zigzag(entry.key[1] - prev.key[1])
            d3 = _zigzag(entry.key[2] - prev.key[2])
            dts = _zigzag(entry.start - prev.start)
            l2, l3, lts = _len_code(d2), _len_code(d3), _len_code(dts)
            header = 0x80 | (l2 << 5) | (l3 << 3) | (lts << 1)
            buf.append(header)
            _emit(buf, d2, l2)
            _emit(buf, d3, l3)
            _emit(buf, dts, lts)
            return
        # Normal entry: per-value choice of delta source.
        deltas: list[int] = []
        sources: list[int] = []
        for i in range(3):
            vs_base = _zigzag(entry.key[i] - self._base_v[i])
            if prev is not None:
                vs_prev = _zigzag(entry.key[i] - prev.key[i])
                if _len_code(vs_prev) < _len_code(vs_base):
                    deltas.append(vs_prev)
                    sources.append(1)
                    continue
            deltas.append(vs_base)
            sources.append(0)
        lens = [_len_code(d) for d in deltas]
        if entry.end == NOW:
            te_flag, te_value = 0, 0
        elif entry.end - entry.start <= SHORT_INTERVAL_LIMIT:
            te_flag, te_value = 1, entry.end - entry.start
        else:
            te_flag, te_value = 2, _zigzag(entry.end - self._base_te)
        lts = _len_code(ts_delta)
        lte = _len_code(te_value)
        header = (
            (lens[0] << 13)
            | (lens[1] << 11)
            | (lens[2] << 9)
            | (sources[0] << 8)
            | (lts << 6)
            | (lte << 4)
            | (sources[1] << 3)
            | (sources[2] << 2)
            | te_flag
        )
        buf.extend(header.to_bytes(2, "big"))
        for delta, code in zip(deltas, lens):
            _emit(buf, delta, code)
        _emit(buf, ts_delta, lts)
        _emit(buf, te_value, lte)

    # --------------------------------------------------------------- decode

    def entries(self) -> list[LeafEntry]:
        """Decode the whole buffer back into entries.

        This is the hot path of every scan over a compressed index.  The
        decoded list is memoized until the next mutation: the paper includes
        decompression in query time but measures it as negligible (Java
        array unpacking); a pure-Python byte decoder is an order of
        magnitude slower relative to the scan, which would invert the
        paper's cost model, so the cache restores the intended ratio.
        Reported index sizes are layout bytes and unaffected.
        """
        if self._decoded is not None:
            return self._decoded
        out: list[LeafEntry] = []
        buf = self._buf
        pos = 0
        size = len(buf)
        widths = _LEN_CODE_TO_BYTES
        base_v1, base_v2, base_v3 = self._base_v
        base_ts = self._base_ts
        base_te = self._base_te
        from_bytes = int.from_bytes
        append = out.append
        k1 = k2 = k3 = start = 0
        while pos < size:
            first = buf[pos]
            if first & 0x80:  # compact: shares v1, live, deltas vs prev
                pos += 1
                w = widths[(first >> 5) & 0x3]
                d2 = from_bytes(buf[pos : pos + w], "big")
                pos += w
                w = widths[(first >> 3) & 0x3]
                d3 = from_bytes(buf[pos : pos + w], "big")
                pos += w
                w = widths[(first >> 1) & 0x3]
                dts = from_bytes(buf[pos : pos + w], "big")
                pos += w
                k2 += (d2 >> 1) ^ -(d2 & 1)
                k3 += (d3 >> 1) ^ -(d3 & 1)
                start += (dts >> 1) ^ -(dts & 1)
                entry = LeafEntry((k1, k2, k3), start, NOW, None)
            else:
                header = (first << 8) | buf[pos + 1]
                pos += 2
                values = []
                for code in (
                    (header >> 13) & 0x3,
                    (header >> 11) & 0x3,
                    (header >> 9) & 0x3,
                ):
                    w = widths[code]
                    raw = from_bytes(buf[pos : pos + w], "big")
                    pos += w
                    values.append((raw >> 1) ^ -(raw & 1))
                nk1 = (k1 + values[0]) if header & 0x100 else base_v1 + values[0]
                nk2 = (k2 + values[1]) if header & 0x8 else base_v2 + values[1]
                nk3 = (k3 + values[2]) if header & 0x4 else base_v3 + values[2]
                w = widths[(header >> 6) & 0x3]
                start = base_ts + from_bytes(buf[pos : pos + w], "big")
                pos += w
                w = widths[(header >> 4) & 0x3]
                te_raw = from_bytes(buf[pos : pos + w], "big")
                pos += w
                te_flag = header & 0x3
                if te_flag == 0:
                    end = NOW
                elif te_flag == 1:
                    end = start + te_raw
                else:
                    end = base_te + ((te_raw >> 1) ^ -(te_raw & 1))
                k1, k2, k3 = nk1, nk2, nk3
                entry = LeafEntry((k1, k2, k3), start, end, None)
            append(entry)
        self._decoded = out
        if _metrics.ENABLED:
            _PAGES_DECODED.inc()
            _ENTRIES_DECODED.inc(len(out))
            _BYTES_DECODED.inc(size)
        return out

    # ------------------------------------------------------------- mutation

    def end_live(self, key: Key, end: int) -> bool:
        """Set the end version of the live ``key`` entry, re-encoding the
        buffer tail from the modified entry onward (Section 4.2.2)."""
        decoded = self.entries()
        target = None
        for idx, entry in enumerate(decoded):
            if entry.end == NOW and entry.key == key:
                entry.end = end
                target = idx
                break
        if target is None:
            return False
        # Rebuild from the modified entry: earlier bytes are unaffected
        # because each entry's encoding depends only on its predecessor.
        buf = bytearray()
        prev: LeafEntry | None = None
        for entry in decoded:
            self._encode(buf, entry, prev)
            prev = entry
        self._buf = buf
        self._last_entry = prev.copy() if prev is not None else None
        self._decoded = None
        return True

    def sizeof(self) -> int:
        """Storage-layout size: buffer plus node header and base values."""
        return NODE_HEADER_BYTES + 5 * 8 + len(self._buf)

    # -------------------------------------------------------- serialization

    def to_state(self) -> dict:
        """Plain-data state for snapshots: the raw buffer plus the base
        values and append checkpoint, so a restored store encodes future
        appends identically to the original."""
        last = self._last_entry
        return {
            "buf": bytes(self._buf),
            "count": self.count,
            "base_v": self._base_v,
            "base_ts": self._base_ts,
            "base_te": self._base_te,
            "checkpoint_ts": self._checkpoint_ts,
            "last_entry": (
                None if last is None else (last.key, last.start, last.end)
            ),
        }

    @classmethod
    def from_state(cls, state: dict) -> "CompressedLeafStore":
        store = cls.__new__(cls)
        store._buf = bytearray(state["buf"])
        store.count = state["count"]
        store._base_v = tuple(state["base_v"])
        store._base_ts = state["base_ts"]
        store._base_te = state["base_te"]
        store._checkpoint_ts = state["checkpoint_ts"]
        last = state["last_entry"]
        store._last_entry = (
            None if last is None
            else LeafEntry(tuple(last[0]), last[1], last[2], None)
        )
        store._decoded = None
        return store
