"""Baseline suppression for ``repro.lint``.

A baseline lets a new rule land with pre-existing debt recorded instead
of fixed-or-pragma'd in the same change: ``repro-tx lint
--update-baseline`` writes the current findings' fingerprints, and
subsequent runs report only findings *not* in the file.

Fingerprints are content-anchored, not line-anchored: a finding is
identified by (rule, path, stripped source line, occurrence index), so
unrelated edits above a baselined finding don't resurrect it, while
editing the offending line itself does — which is exactly when you want
the linter to look again.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from .rules.base import Finding

#: Bumped if the fingerprint recipe changes, so stale files are ignored
#: loudly rather than silently suppressing the wrong findings.
FORMAT_VERSION = 1


def _fingerprint(finding: Finding, occurrence: int) -> str:
    material = "|".join(
        (finding.rule, finding.path, finding.snippet, str(occurrence))
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


def fingerprints(findings: Iterable[Finding]) -> list[str]:
    """Stable fingerprints, disambiguating identical lines by occurrence."""
    seen: Counter[tuple[str, str, str]] = Counter()
    result = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.snippet)
        result.append(_fingerprint(finding, seen[key]))
        seen[key] += 1
    return result


class Baseline:
    """The set of fingerprints accepted as pre-existing debt."""

    def __init__(self, accepted: set[str] | None = None) -> None:
        self.accepted = accepted or set()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != FORMAT_VERSION:
            return cls()
        return cls(set(data.get("fingerprints", [])))

    def save(self, path: Path, findings: Iterable[Finding]) -> int:
        prints = sorted(set(fingerprints(findings)))
        path.write_text(
            json.dumps(
                {"version": FORMAT_VERSION, "fingerprints": prints},
                indent=2,
            )
            + "\n",
            encoding="utf-8",
        )
        return len(prints)

    def save_fingerprints(self, path: Path) -> int:
        """Write the current accepted set back to ``path``."""
        prints = sorted(self.accepted)
        path.write_text(
            json.dumps(
                {"version": FORMAT_VERSION, "fingerprints": prints},
                indent=2,
            )
            + "\n",
            encoding="utf-8",
        )
        return len(prints)

    def prune(self, findings: Iterable[Finding]) -> set[str]:
        """Drop entries no current finding anchors to; returns them.

        A baselined fingerprint goes stale when the offending line was
        fixed or rewritten — keeping it around silently re-suppresses
        any future finding that happens to produce the same anchor.
        """
        current = set(fingerprints(findings))
        stale = self.accepted - current
        self.accepted -= stale
        return stale

    def filter(self, findings: list[Finding]) -> list[Finding]:
        """Findings not covered by the baseline, original order kept."""
        prints = fingerprints(findings)
        return [
            finding
            for finding, print_ in zip(findings, prints)
            if print_ not in self.accepted
        ]
