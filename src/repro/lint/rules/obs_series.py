"""Obs-series hygiene rule (RL012).

RL009 covers registration through a registry receiver
(``_metrics.counter(...)``); this rule closes the remaining hole: metric
factories imported as *bare names* (``from ..obs.metrics import
counter``) bypass the receiver check, so a typo'd or uncataloged series
still slips through review.  Any new obs series must be declared in
``repro.obs.catalog`` regardless of how the factory was brought into
scope.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ...obs import catalog
from .base import Finding, Rule, path_matches

if TYPE_CHECKING:  # pragma: no cover
    from ..checker import ModuleInfo

#: factory name -> catalog set the metric name must belong to.
FACTORY_KINDS = {
    "counter": "COUNTERS",
    "gauge": "GAUGES",
    "histogram": "HISTOGRAMS",
    "timer": "TIMERS",
    "timer_stat": "TIMERS",
}

#: Import sources that denote the obs metrics layer.  Matches absolute
#: (``repro.obs.metrics``) and relative (``..obs``, ``.metrics`` inside
#: the obs package) spellings.
OBS_MODULE_TAILS = ("obs", "obs.metrics", "metrics")

#: The registry implementation and the catalog itself are exempt.
EXEMPT_PATHS = ("obs/metrics.py", "obs/catalog.py")


def _is_obs_module(module: str | None, level: int,
                   logical_path: str) -> bool:
    """Whether an ``ImportFrom`` pulls from the obs metrics layer."""
    if module is None:
        return False
    if module == "obs" or module.endswith(".obs"):
        return True
    if module == "obs.metrics" or module.endswith("obs.metrics"):
        return True
    # ``from .metrics import counter`` only counts inside the obs package
    # itself (where EXEMPT_PATHS already excludes the real users).
    return (
        level > 0 and module == "metrics" and "obs/" in logical_path
    )


class UncatalogedObsSeries(Rule):
    """RL012: bare-imported metric factories must use cataloged names."""

    id = "RL012"
    title = "obs series not declared in the catalog"
    rationale = (
        "render_prometheus() and the dashboards enumerate series from "
        "repro.obs.catalog; a factory imported as a bare name sidesteps "
        "RL009's receiver check, so an uncataloged series would scrape "
        "as present-sometimes — declare every new series in the catalog."
    )

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        if path_matches(module.logical_path, EXEMPT_PATHS):
            return
        aliases: dict[str, str] = {}
        for node in ast.walk(module.tree):
            # ImportMap.of() skips relative imports, so this rule scans
            # ast.ImportFrom itself, levels included.
            if not isinstance(node, ast.ImportFrom):
                continue
            if not _is_obs_module(node.module, node.level,
                                  module.logical_path):
                continue
            for alias in node.names:
                if alias.name in FACTORY_KINDS:
                    aliases[alias.asname or alias.name] = alias.name
        if not aliases:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Name) or func.id not in aliases:
                continue
            factory = aliases[func.id]
            kind_set = FACTORY_KINDS[factory]
            if not node.args:
                continue
            name_arg = node.args[0]
            if not isinstance(name_arg, ast.Constant) or not isinstance(
                name_arg.value, str
            ):
                yield self.finding(
                    module, node,
                    f"`{func.id}(...)` called with a non-literal metric "
                    f"name — names must be static so the catalog can "
                    f"list them",
                )
                continue
            name = name_arg.value
            if not catalog.is_well_formed(name):
                yield self.finding(
                    module, node,
                    f"metric name {name!r} is malformed (want dotted "
                    f"lower_snake segments, e.g. `engine.updates`)",
                )
            elif name not in getattr(catalog, kind_set):
                yield self.finding(
                    module, node,
                    f"metric name {name!r} is not declared in "
                    f"repro.obs.catalog.{kind_set} — register it there "
                    f"or fix the typo",
                )
