"""Span-lifecycle rule (RL011).

Spans must be opened through the context-manager API
(``with trace.span(...):`` / ``with trace.start_trace(...):``) so the
begin/end pair is one lexical scope: an exception can never leave a span
dangling open, mis-timing every ancestor in the trace tree.  Manually
constructing a :class:`~repro.obs.trace.Span` or driving one with
``.start()`` / ``.finish()`` calls reintroduces exactly that leak.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from .base import Finding, Rule, dotted_name, path_matches

if TYPE_CHECKING:  # pragma: no cover
    from ..checker import ModuleInfo

#: Methods that would drive a span's lifecycle by hand.
MANUAL_LIFECYCLE = frozenset({"start", "finish"})

#: Functions whose return value is a span context manager.
SPAN_FACTORIES = frozenset({"span", "start_trace"})

#: The tracer implementation itself manages span internals.
EXEMPT_PATHS = ("obs/trace.py",)


def _is_span_receiver(node: ast.AST) -> bool:
    """Whether ``node`` plausibly evaluates to a span object.

    Two shapes: a name that says so (``span``, ``root_span``, ``my_span``
    — chosen over type inference to keep ``thread.start()`` and
    ``parser.finish()`` out of scope), or a direct call to a span
    factory (``trace.span(...).start()``).
    """
    dotted = dotted_name(node)
    if dotted is not None:
        return "span" in dotted.rsplit(".", 1)[-1].lower()
    if isinstance(node, ast.Call):
        factory = dotted_name(node.func)
        if factory is not None:
            return factory.rsplit(".", 1)[-1] in SPAN_FACTORIES
    return False


class ManualSpanLifecycle(Rule):
    """RL011: spans are opened with ``with``, never start()/finish()."""

    id = "RL011"
    title = "span driven manually instead of via the context manager"
    rationale = (
        "A span closed by hand leaks open on any exception path between "
        "start() and finish(), freezing its duration into every parent "
        "in the trace tree; `with trace.span(...)` makes the pairing a "
        "lexical scope the interpreter enforces."
    )

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        if path_matches(module.logical_path, EXEMPT_PATHS):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in MANUAL_LIFECYCLE:
                continue
            if _is_span_receiver(func.value):
                yield self.finding(
                    module, node,
                    f"span lifecycle driven manually via `.{func.attr}()` "
                    f"— open spans with `with trace.span(...):` so they "
                    f"cannot leak on exception paths",
                )
