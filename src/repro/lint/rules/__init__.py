"""Rule registry: one place that knows every rule ID."""

from .base import Finding, ProjectRule, Rule
from .cluster_protocol import ClusterProtocolConformance
from .concurrency import BlockingReachableUnderLock, LockOrderCycle
from .determinism import NondeterministicDurablePath
from .durability import WalBeforeApply
from .event_names import UncatalogedEventName
from .hygiene import MutableDefaultArgument, ProductionAssert, \
    SwallowedException
from .invariants import CompressionEncapsulation, EntryLifetimeMutation
from .locks import BlockingUnderLock, UnguardedStateMutation
from .metrics_names import UnregisteredMetricName
from .obs_series import UncatalogedObsSeries
from .resources import ExceptionPathResourceLeak
from .trace_spans import ManualSpanLifecycle

#: Every rule, in ID order.  Instantiated once; rules are stateless.
ALL_RULES: tuple[Rule, ...] = (
    BlockingUnderLock(),
    UnguardedStateMutation(),
    WalBeforeApply(),
    EntryLifetimeMutation(),
    CompressionEncapsulation(),
    NondeterministicDurablePath(),
    SwallowedException(),
    MutableDefaultArgument(),
    UnregisteredMetricName(),
    ProductionAssert(),
    ManualSpanLifecycle(),
    UncatalogedObsSeries(),
    BlockingReachableUnderLock(),
    LockOrderCycle(),
    ClusterProtocolConformance(),
    ExceptionPathResourceLeak(),
    UncatalogedEventName(),
)

RULES_BY_ID: dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}

__all__ = ["ALL_RULES", "RULES_BY_ID", "Finding", "ProjectRule", "Rule"]
