"""MVBT/CMVSBT structural-invariant rules (RL004, RL005).

The multiversion trees only stay queryable at historical revisions
because dead entries are immutable: an entry's ``end`` (the paper's
``te``) is written exactly once, by the logical-delete helpers, and a
node's ``death`` exactly once, by the version-split machinery.  Likewise
the delta-compression byte format has one encoder — ad-hoc header
construction elsewhere would silently desynchronize encode and decode.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from .base import (
    Finding,
    Rule,
    dotted_name,
    enclosing_function_names,
    path_matches,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..checker import ModuleInfo

#: Functions allowed to end an entry's lifetime (set ``.end``).
END_SETTERS = frozenset({"end_live", "end_child", "__init__", "copy"})

#: Functions allowed to kill a node (set ``.death``).
DEATH_SETTERS = frozenset({
    "_restructure", "_check_parent", "shell_from_state", "__init__",
})

#: Files allowed to name the compressed-leaf store directly: the codec,
#: its sole consumer, and the package __init__ that re-exports the API.
COMPRESSION_FILES = ("mvbt/compression.py", "mvbt/node.py",
                     "mvbt/__init__.py")


class EntryLifetimeMutation(Rule):
    """RL004: ``.end`` / ``.death`` writes only inside the sanctioned
    dead/split helpers."""

    id = "RL004"
    title = "entry/node lifetime mutated outside the dead/split helpers"
    rationale = (
        "A reader pinned at revision r reconstructs state r from entry "
        "lifetimes; mutating te on an arbitrary code path rewrites "
        "history for every concurrent and future historical query."
    )

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        owners = enclosing_function_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                owner = owners.get(id(node), "<module>")
                if target.attr == "end" and owner not in END_SETTERS:
                    yield self.finding(
                        module, node,
                        f"`.end` (te) assigned in `{owner}` — only the "
                        f"logical-delete helpers "
                        f"({', '.join(sorted(END_SETTERS))}) may end an "
                        f"entry's lifetime",
                    )
                elif target.attr == "death" and owner not in DEATH_SETTERS:
                    yield self.finding(
                        module, node,
                        f"`.death` assigned in `{owner}` — only the "
                        f"version-split machinery may kill a node",
                    )


class CompressionEncapsulation(Rule):
    """RL005: compressed-leaf headers/buffers only through compression.py."""

    id = "RL005"
    title = "compressed-leaf store accessed outside its owners"
    rationale = (
        "The delta format (Section 4.2 headers) has exactly one encoder "
        "and one decoder; constructing stores or poking `._buf` anywhere "
        "else lets the byte layout drift between writer and reader."
    )

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        if path_matches(module.logical_path, COMPRESSION_FILES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if any(
                    alias.name == "CompressedLeafStore"
                    for alias in node.names
                ):
                    yield self.finding(
                        module, node,
                        "`CompressedLeafStore` imported outside "
                        "mvbt/compression.py + mvbt/node.py — go through "
                        "LeafNode.compress()/decompress()",
                    )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is not None and (
                    dotted == "CompressedLeafStore"
                    or dotted.endswith(".CompressedLeafStore")
                    or dotted.endswith("CompressedLeafStore.from_state")
                ):
                    yield self.finding(
                        module, node,
                        f"`{dotted}` constructs a compressed leaf store "
                        f"outside its owning modules",
                    )
            elif isinstance(node, ast.Attribute) and node.attr == "_buf":
                yield self.finding(
                    module, node,
                    "direct `._buf` access outside mvbt/compression.py — "
                    "the buffer layout is private to the codec",
                )
