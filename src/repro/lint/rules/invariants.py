"""MVBT/CMVSBT structural-invariant rules (RL004, RL005).

The multiversion trees only stay queryable at historical revisions
because dead entries are immutable: an entry's ``end`` (the paper's
``te``) is written exactly once, by the logical-delete helpers, and a
node's ``death`` exactly once, by the version-split machinery.  Likewise
the delta-compression byte format has one encoder — ad-hoc header
construction elsewhere would silently desynchronize encode and decode.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from .base import (
    Finding,
    Rule,
    dotted_name,
    enclosing_function_names,
    path_matches,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..checker import ModuleInfo

#: Functions allowed to end an entry's lifetime (set ``.end``).
END_SETTERS = frozenset({"end_live", "end_child", "__init__", "copy"})

#: Functions allowed to kill a node (set ``.death``).
DEATH_SETTERS = frozenset({
    "_restructure", "_check_parent", "shell_from_state", "__init__",
})

#: Files allowed to name the compressed-leaf store directly: the codec,
#: its sole consumer, and the package __init__ that re-exports the API.
COMPRESSION_FILES = ("mvbt/compression.py", "mvbt/node.py",
                     "mvbt/__init__.py")

#: Calls whose results are scan/read output the caller must not mutate:
#: compressed leaves hand back frozen decoded tuples (possibly shared by
#: every reader of a hot leaf), and piece lists feed byte-identity
#: comparisons between the serial and parallel scanners.
PIECE_PRODUCERS = frozenset({
    "entries", "live_entries", "scan_pieces", "scan_leaf_pieces",
    "parallel_scan_pieces",
})

#: In-place list mutators that would write through a shared decoded
#: tuple/pieces list if called on a producer result.
PIECE_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse",
})


def _is_piece_producer(node: ast.expr) -> bool:
    """Whether ``node`` is a call to one of :data:`PIECE_PRODUCERS`."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in PIECE_PRODUCERS
    if isinstance(func, ast.Name):
        return func.id in PIECE_PRODUCERS
    return False


class EntryLifetimeMutation(Rule):
    """RL004: ``.end`` / ``.death`` writes only inside the sanctioned
    dead/split helpers."""

    id = "RL004"
    title = "entry/node lifetime mutated outside the dead/split helpers"
    rationale = (
        "A reader pinned at revision r reconstructs state r from entry "
        "lifetimes; mutating te on an arbitrary code path rewrites "
        "history for every concurrent and future historical query."
    )

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        owners = enclosing_function_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                owner = owners.get(id(node), "<module>")
                if target.attr == "end" and owner not in END_SETTERS:
                    yield self.finding(
                        module, node,
                        f"`.end` (te) assigned in `{owner}` — only the "
                        f"logical-delete helpers "
                        f"({', '.join(sorted(END_SETTERS))}) may end an "
                        f"entry's lifetime",
                    )
                elif target.attr == "death" and owner not in DEATH_SETTERS:
                    yield self.finding(
                        module, node,
                        f"`.death` assigned in `{owner}` — only the "
                        f"version-split machinery may kill a node",
                    )


class CompressionEncapsulation(Rule):
    """RL005: compressed-leaf headers/buffers only through compression.py,
    and scan output (entries/pieces) treated as read-only by callers."""

    id = "RL005"
    title = "compressed-leaf store accessed outside its owners"
    rationale = (
        "The delta format (Section 4.2 headers) has exactly one encoder "
        "and one decoder; constructing stores or poking `._buf` anywhere "
        "else lets the byte layout drift between writer and reader.  "
        "Scan results are shared: hot compressed leaves hand every "
        "reader the same frozen decoded tuple, so mutating what "
        "`entries()`/`scan_pieces()` return corrupts other readers."
    )

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        if path_matches(module.logical_path, COMPRESSION_FILES):
            return
        yield from self._scope_mutations(module, module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if any(
                    alias.name == "CompressedLeafStore"
                    for alias in node.names
                ):
                    yield self.finding(
                        module, node,
                        "`CompressedLeafStore` imported outside "
                        "mvbt/compression.py + mvbt/node.py — go through "
                        "LeafNode.compress()/decompress()",
                    )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is not None and (
                    dotted == "CompressedLeafStore"
                    or dotted.endswith(".CompressedLeafStore")
                    or dotted.endswith("CompressedLeafStore.from_state")
                ):
                    yield self.finding(
                        module, node,
                        f"`{dotted}` constructs a compressed leaf store "
                        f"outside its owning modules",
                    )
            elif isinstance(node, ast.Attribute) and node.attr == "_buf":
                yield self.finding(
                    module, node,
                    "direct `._buf` access outside mvbt/compression.py — "
                    "the buffer layout is private to the codec",
                )

    def _scope_mutations(
        self, module: "ModuleInfo", scope: ast.AST
    ) -> Iterator[Finding]:
        """Findings for in-place mutation of scan output within ``scope``.

        Tracks, per function scope and in source order, names bound
        directly from a :data:`PIECE_PRODUCERS` call; a tracked name is
        released when rebound to anything else (``rows = list(pieces)``
        makes a private copy the caller may mutate freely).  Flags both
        mutator calls on tracked names and on producer results directly
        (``leaf.entries().sort()``), plus subscript writes.
        """
        tracked: set[str] = set()
        body = getattr(scope, "body", [])
        for finding in self._walk_statements(module, body, tracked):
            yield finding

    def _walk_statements(
        self, module: "ModuleInfo", body: list, tracked: set[str]
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                # Fresh scope: bindings do not leak across functions.
                yield from self._walk_statements(module, stmt.body, set())
                continue
            nested = [
                block
                for field in (
                    "body", "orelse", "finalbody",
                )
                for block in [getattr(stmt, field, None)]
                if block
            ] + [h.body for h in getattr(stmt, "handlers", [])]
            if nested:
                # Compound statement: check only its header expressions
                # here; bodies are recursed into with the same bindings.
                headers = [
                    expr
                    for field in ("test", "iter", "subject")
                    for expr in [getattr(stmt, field, None)]
                    if expr is not None
                ] + [item.context_expr for item in getattr(stmt, "items", [])]
                for expr in headers:
                    yield from self._check_expression(module, expr, tracked)
                for block in nested:
                    yield from self._walk_statements(module, block, tracked)
                continue
            yield from self._check_expression(module, stmt, tracked)
            # Binding updates come after the checks, so a self-rebind like
            # `pieces = list(pieces)` is released only from here on.
            if isinstance(stmt, ast.Assign):
                names = [
                    t.id for t in stmt.targets if isinstance(t, ast.Name)
                ]
                if _is_piece_producer(stmt.value):
                    tracked.update(names)
                else:
                    tracked.difference_update(names)

    def _check_expression(
        self, module: "ModuleInfo", root: ast.AST, tracked: set[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(root):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ) and node.func.attr in PIECE_MUTATORS:
                base = node.func.value
                if _is_piece_producer(base):
                    yield self.finding(
                        module, node,
                        f"`.{node.func.attr}()` mutates a scan result in "
                        f"place — entries()/scan pieces are shared "
                        f"read-only views; copy before mutating",
                    )
                elif isinstance(base, ast.Name) and base.id in tracked:
                    yield self.finding(
                        module, node,
                        f"`{base.id}.{node.func.attr}()` mutates scan "
                        f"output bound from a producer call — copy "
                        f"(`list(...)`) before mutating",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in tracked
                    ):
                        yield self.finding(
                            module, node,
                            f"subscript write into `{target.value.id}` — "
                            f"scan output is a shared read-only view; "
                            f"copy before mutating",
                        )
