"""RL015: coordinator <-> worker protocol conformance.

The cluster wire protocol is JSON over TCP with no schema: a worker op
registry (``_OPS = {"name": handler}``) on one side, dict-literal
request payloads on the other.  Nothing but convention keeps them
aligned, and a renamed payload field fails at runtime on whichever op
first crosses the wire.  This rule recovers both sides statically:

* **handlers** — for each registry entry, the payload fields the
  handler reads (``payload["f"]`` required, ``payload.get("f")``
  optional), followed transitively through module-local helpers that
  the handler forwards its payload to, plus the response keys it can
  produce (constant keys of returned dict literals, again transitive).
* **envelope** — fields read by non-handler payload-taking functions in
  the registry module (``op``, ``trace_id``, ``min_lsn``, ...): the
  transport adds these to any request, so senders may carry them freely.
* **senders** — every call anywhere in the module set with an argument
  that is (or locally resolves to) a dict literal containing a constant
  ``"op"`` entry, including both arms of a conditional expression and
  constant-key ``payload["k"] = ...`` augmentation.

Flagged: ops no registry knows, senders missing a required field,
sender fields no handler or envelope reads, and response keys read from
a sender's result that no handler return can produce.  Payloads that
cannot be fully resolved (``dict(payload)`` copies, non-constant keys)
are skipped rather than guessed at.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from .base import Finding, ProjectRule

if TYPE_CHECKING:  # pragma: no cover
    from ..checker import ModuleInfo

#: Keys every error/ack response may carry regardless of handler.
_RESPONSE_ENVELOPE = frozenset({"ok", "error", "kind"})


@dataclass
class _Reads:
    required: set[str] = field(default_factory=set)
    optional: set[str] = field(default_factory=set)
    responses: set[str] = field(default_factory=set)
    opaque: bool = False  # a return value we could not enumerate

    @property
    def all_fields(self) -> set[str]:
        return self.required | self.optional


@dataclass
class _HandlerSpec:
    op: str
    function: str
    reads: _Reads


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = fn.args
    return [a.arg for a in args.posonlyargs + args.args]


def _local_statements(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested def/class scopes."""
    stack = [root]
    first = True
    while stack:
        node = stack.pop()
        if not first and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        first = False
        yield node
        stack.extend(ast.iter_child_nodes(node))


class _RegistryModule:
    """One module defining an ``_OPS``-style handler registry."""

    def __init__(self, module: "ModuleInfo") -> None:
        self.module = module
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {
            node.name: node
            for node in module.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.handlers: dict[str, _HandlerSpec] = {}
        self.envelope: set[str] = set()
        self._reads_memo: dict[tuple[str, str], _Reads] = {}
        self._extract()

    def _extract(self) -> None:
        handler_names: dict[str, str] = {}
        for node in self.module.tree.body:
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id.endswith("_OPS")
                and isinstance(node.value, ast.Dict)
            ):
                continue
            for key, value in zip(node.value.keys, node.value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Name)
                    and value.id in self.functions
                ):
                    handler_names[key.value] = value.id
        if not handler_names:
            return
        for op, fname in handler_names.items():
            fn = self.functions[fname]
            params = _param_names(fn)
            payload_param = (
                "payload" if "payload" in params
                else (params[-1] if params else "payload")
            )
            self.handlers[op] = _HandlerSpec(
                op=op, function=fname,
                reads=self._reads(fname, payload_param, set()),
            )
        for fname, fn in self.functions.items():
            if fname in handler_names.values():
                continue
            if "payload" in _param_names(fn):
                reads = self._reads(fname, "payload", set())
                self.envelope |= reads.all_fields

    def _reads(self, fname: str, param: str, stack: set[str]) -> _Reads:
        key = (fname, param)
        memo = self._reads_memo.get(key)
        if memo is not None:
            return memo
        if key in stack:
            return _Reads()
        stack.add(key)
        fn = self.functions[fname]
        out = _Reads()
        for node in _local_statements(fn):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == param
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
                and isinstance(node.ctx, ast.Load)
            ):
                out.required.add(node.slice.value)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == param
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                out.optional.add(node.args[0].value)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name
            ):
                callee = self.functions.get(node.func.id)
                if callee is None:
                    continue
                callee_params = _param_names(callee)
                for position, arg in enumerate(node.args):
                    if (
                        isinstance(arg, ast.Name)
                        and arg.id == param
                        and position < len(callee_params)
                    ):
                        sub = self._reads(
                            node.func.id, callee_params[position], stack
                        )
                        out.required |= sub.required
                        out.optional |= sub.optional
                        out.responses |= sub.responses
                        out.opaque = out.opaque or sub.opaque
        self._collect_responses(fn, out, stack)
        stack.discard(key)
        self._reads_memo[key] = out
        return out

    def _collect_responses(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        out: _Reads,
        stack: set[str],
    ) -> None:
        assigned_from: dict[str, str] = {}
        for node in _local_statements(fn):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and node.value.func.id in self.functions
            ):
                assigned_from[node.targets[0].id] = node.value.func.id
        for node in _local_statements(fn):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            if isinstance(value, ast.Constant) and value.value is None:
                continue
            if isinstance(value, ast.Dict):
                for key in value.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        out.responses.add(key.value)
                    else:
                        out.opaque = True
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in self.functions
            ):
                callee = value.func.id
                params = _param_names(self.functions[callee])
                sub = self._reads(
                    callee, params[-1] if params else "payload", stack
                )
                out.responses |= sub.responses
                out.opaque = out.opaque or sub.opaque
            elif (
                isinstance(value, ast.Name)
                and value.id in assigned_from
            ):
                callee = assigned_from[value.id]
                params = _param_names(self.functions[callee])
                sub = self._reads(
                    callee, params[-1] if params else "payload", stack
                )
                out.responses |= sub.responses
                out.opaque = out.opaque or sub.opaque
            else:
                out.opaque = True


@dataclass
class _SenderPayload:
    op: str
    keys: set[str]
    complete: bool  # every key was a string constant


def _payload_of_dict(node: ast.Dict) -> _SenderPayload | None:
    op = None
    keys: set[str] = set()
    complete = True
    for key, value in zip(node.keys, node.values):
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.add(key.value)
            if key.value == "op":
                if not (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    return None  # computed op: not a checkable sender
                op = value.value
        else:
            complete = False
    if op is None:
        return None
    return _SenderPayload(op=op, keys=keys, complete=complete)


class ClusterProtocolConformance(ProjectRule):
    """RL015: senders and ``_OPS`` handlers must agree on the protocol."""

    id = "RL015"
    title = "cluster protocol sender/handler mismatch"
    rationale = (
        "Request payloads are unchecked dict literals; a field renamed "
        "on one side of the coordinator/worker boundary only fails at "
        "runtime, on whichever op first crosses the wire."
    )

    def check_project(
        self, modules: "list[ModuleInfo]"
    ) -> Iterator[Finding]:
        handlers: dict[str, _HandlerSpec] = {}
        envelope: set[str] = set()
        for module in modules:
            registry = _RegistryModule(module)
            if registry.handlers:
                handlers.update(registry.handlers)
                envelope |= registry.envelope
        if not handlers:
            return  # no registry in scope: nothing to check against
        for module in modules:
            for fn in self._all_functions(module):
                yield from self._check_function(
                    module, fn, handlers, envelope
                )

    def _all_functions(
        self, module: "ModuleInfo"
    ) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _check_function(
        self,
        module: "ModuleInfo",
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        handlers: dict[str, _HandlerSpec],
        envelope: set[str],
    ) -> Iterator[Finding]:
        parents: dict[int, ast.AST] = {}
        for node in _local_statements(fn):
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node
        local_dicts, augments, name_assign_lines = (
            self._local_dataflow(fn)
        )
        for node in _local_statements(fn):
            if not isinstance(node, ast.Call):
                continue
            for payload in self._sender_payloads(
                node, local_dicts, augments
            ):
                spec = handlers.get(payload.op)
                if spec is None:
                    yield self._finding(
                        module, node,
                        f"op {payload.op!r} is not handled by any "
                        f"_OPS registry",
                    )
                    continue
                if payload.complete:
                    missing = (
                        spec.reads.required - payload.keys - envelope
                    )
                    if missing:
                        yield self._finding(
                            module, node,
                            f"payload for op {payload.op!r} is missing "
                            f"required field(s) "
                            f"{', '.join(sorted(missing))} "
                            f"read by {spec.function}",
                        )
                    extra = (
                        payload.keys - spec.reads.all_fields
                        - envelope - {"op"}
                    )
                    if extra:
                        yield self._finding(
                            module, node,
                            f"payload field(s) "
                            f"{', '.join(sorted(extra))} for op "
                            f"{payload.op!r} are never read by "
                            f"{spec.function} or the dispatch envelope",
                        )
                if not spec.reads.opaque:
                    produced = spec.reads.responses | _RESPONSE_ENVELOPE
                    for key, read_node in self._response_reads(
                        fn, node, parents, name_assign_lines
                    ):
                        if key not in produced:
                            yield self._finding(
                                module, read_node,
                                f"response key {key!r} for op "
                                f"{payload.op!r} is never produced by "
                                f"{spec.function}",
                            )

    def _local_dataflow(self, fn):
        """Dict literals bound to local names, plus constant-key
        subscript augmentation and every assignment line per name."""
        local_dicts: dict[str, ast.Dict | ast.IfExp | None] = {}
        augments: dict[str, set[str]] = {}
        name_assign_lines: dict[str, list[int]] = {}
        for node in _local_statements(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    name_assign_lines.setdefault(
                        target.id, []
                    ).append(node.lineno)
                    if target.id in local_dicts:
                        local_dicts[target.id] = None  # reassigned
                    elif isinstance(node.value, (ast.Dict, ast.IfExp)):
                        local_dicts[target.id] = node.value
                    else:
                        local_dicts[target.id] = None
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    augments.setdefault(target.value.id, set()).add(
                        target.slice.value
                    )
        return local_dicts, augments, name_assign_lines

    def _sender_payloads(
        self, call: ast.Call, local_dicts, augments
    ) -> Iterator[_SenderPayload]:
        for arg in call.args:
            candidates: list[tuple[ast.Dict, set[str]]] = []
            if isinstance(arg, ast.Dict):
                candidates.append((arg, set()))
            elif isinstance(arg, ast.IfExp):
                for branch in (arg.body, arg.orelse):
                    if isinstance(branch, ast.Dict):
                        candidates.append((branch, set()))
            elif isinstance(arg, ast.Name):
                bound = local_dicts.get(arg.id)
                extra = augments.get(arg.id, set())
                if isinstance(bound, ast.Dict):
                    candidates.append((bound, extra))
                elif isinstance(bound, ast.IfExp):
                    for branch in (bound.body, bound.orelse):
                        if isinstance(branch, ast.Dict):
                            candidates.append((branch, extra))
            for dict_node, extra in candidates:
                payload = _payload_of_dict(dict_node)
                if payload is not None:
                    payload.keys |= extra
                    yield payload

    def _response_reads(
        self, fn, call: ast.Call, parents, name_assign_lines
    ) -> Iterator[tuple[str, ast.AST]]:
        parent = parents.get(id(call))
        if (
            isinstance(parent, ast.Subscript)
            and parent.value is call
            and isinstance(parent.slice, ast.Constant)
            and isinstance(parent.slice.value, str)
        ):
            yield (parent.slice.value, parent)
        if not (
            isinstance(parent, ast.Assign)
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            return
        name = parent.targets[0].id
        start = parent.lineno
        later = [
            line for line in name_assign_lines.get(name, [])
            if line > start
        ]
        end = min(later) if later else None
        for node in _local_statements(fn):
            line = getattr(node, "lineno", 0)
            if line < start or (end is not None and line >= end):
                continue
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == name
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
                and isinstance(node.ctx, ast.Load)
            ):
                yield (node.slice.value, node)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                yield (node.args[0].value, node)

    def _finding(
        self, module: "ModuleInfo", node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        snippet = ""
        if 1 <= line <= len(module.lines):
            snippet = module.lines[line - 1].strip()
        return Finding(self.id, module.logical_path, line, message, snippet)
