"""Durability-ordering rule (RL003).

RDF-TX's crash-safety story is log-before-apply: once
``WriteAheadLog.append`` returns, the update survives a process kill, and
recovery replays exactly the acknowledged records.  Applying to the
in-memory engine *before* (or without) the append silently narrows that
guarantee — an acknowledged update could vanish on restart.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from .base import Finding, Rule, call_name, decorator_names
from .locks import MARKER

if TYPE_CHECKING:  # pragma: no cover
    from ..checker import ModuleInfo

#: Calls that apply an update to the in-memory engine.
APPLY_CALLS = frozenset({
    "self._apply", "self.engine.insert", "self.engine.delete",
})


class WalBeforeApply(Rule):
    """RL003: every in-memory apply must be dominated by its WAL append."""

    id = "RL003"
    title = "in-memory apply not preceded by a WAL append"
    rationale = (
        "Log-before-apply is the recovery contract: a record must be in "
        "the WAL before the engine reflects it, or a crash between the "
        "two loses an acknowledged update.  Methods whose appends happen "
        "upstream declare it with @requires_writer_lock (replay/apply "
        "helpers re-applying already-logged records)."
    )

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if isinstance(cls, ast.ClassDef) and self._has_wal(cls):
                yield from self._check_class(module, cls)

    @staticmethod
    def _has_wal(cls: ast.ClassDef) -> bool:
        """Whether ``__init__`` assigns ``self._wal`` (a logging store)."""
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "_wal"
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        return True
        return False

    def _check_class(
        self, module: "ModuleInfo", cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for fn in cls.body:
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name == "__init__" or MARKER in decorator_names(fn):
                continue
            append_lines: list[int] = []
            applies: list[tuple[int, str]] = []
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                dotted = call_name(node)
                if dotted is None:
                    continue
                if dotted == "self._wal.append":
                    append_lines.append(node.lineno)
                elif dotted in APPLY_CALLS:
                    applies.append((node.lineno, dotted))
            if not applies:
                continue
            if not append_lines:
                for line, dotted in applies:
                    yield Finding(
                        self.id, module.logical_path, line,
                        f"`{dotted}` applies an update with no WAL append "
                        f"in `{fn.name}` (mark @requires_writer_lock if "
                        f"the record is already logged upstream)",
                        module.lines[line - 1].strip()
                        if line <= len(module.lines) else "",
                    )
                continue
            first_append = min(append_lines)
            for line, dotted in applies:
                if line < first_append:
                    yield Finding(
                        self.id, module.logical_path, line,
                        f"`{dotted}` runs before the WAL append at line "
                        f"{first_append} — log-before-apply is violated",
                        module.lines[line - 1].strip()
                        if line <= len(module.lines) else "",
                    )
