"""Interprocedural concurrency rules (RL013, RL014).

Both rules run over the whole module set: RL013 follows the project
call graph out of a lock-guarded region looking for blocking calls any
number of frames down; RL014 builds the global lock-acquisition graph
and reports cycles.  The heavy lifting lives in
:mod:`repro.lint.callgraph` and :mod:`repro.lint.lockflow`; imports are
deferred to keep the rule registry import-order independent.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from .base import (
    Finding,
    ProjectRule,
    dotted_name,
    has_path_segment,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..checker import ModuleInfo


def _short(qname: str) -> str:
    """``repro.cluster.protocol.send_message`` -> ``protocol.send_message``."""
    return ".".join(qname.split(".")[-2:])


def _snippet(module: "ModuleInfo", line: int) -> str:
    if 1 <= line <= len(module.lines):
        return module.lines[line - 1].strip()
    return ""


class BlockingReachableUnderLock(ProjectRule):
    """RL013: a blocking call is transitively reachable under a lock.

    The interprocedural upgrade of RL001: RL001 only sees blocking
    calls lexically inside a ``read_locked()``/``write_locked()`` block,
    so ``self._rpc_primary(...)`` under the coordinator writer lock —
    three frames away from ``socket.create_connection`` — sails past it.
    Guarded regions are the store's RW-lock guards anywhere, per-member
    ``failover_lock`` blocks anywhere, and ``with self._writer`` blocks
    in cluster modules (the service-layer writer mutex legitimately
    covers WAL fsync; the cluster one should not block by accident).
    """

    id = "RL013"
    title = "blocking call transitively reachable while a lock is held"
    rationale = (
        "A sleep, socket round-trip, or file I/O reached from a frame "
        "holding the RW lock or a cluster member lock stalls every "
        "reader/writer queued behind it."
    )

    def check_project(
        self, modules: "list[ModuleInfo]"
    ) -> Iterator[Finding]:
        from ..callgraph import project_index
        from ..lockflow import RW_GUARDS, BlockingReach, direct_blocking

        index = project_index(modules)
        reach = BlockingReach(index)
        reported: set[int] = set()
        for module in modules:
            for info in index.functions_of(module):
                for node in ast.walk(info.node):
                    if not isinstance(node, (ast.With, ast.AsyncWith)):
                        continue
                    for item in node.items:
                        trigger = self._trigger(module, item.context_expr)
                        if trigger is None:
                            continue
                        kind, held = trigger
                        yield from self._scan(
                            module, info, node, kind, held,
                            reach, reported, RW_GUARDS, direct_blocking,
                        )

    def _trigger(
        self, module: "ModuleInfo", expr: ast.AST
    ) -> tuple[str, str] | None:
        """(kind, description) when the with-item takes a tracked lock."""
        if isinstance(expr, ast.Call):
            dotted = dotted_name(expr.func)
            if dotted is not None and dotted.rsplit(".", 1)[-1] in (
                "read_locked", "write_locked"
            ):
                return ("rw", f"{dotted}()")
            return None
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        if dotted.rsplit(".", 1)[-1] == "failover_lock":
            return ("member", dotted)
        if dotted == "self._writer" and has_path_segment(
            module.logical_path, "cluster"
        ):
            return ("writer", dotted)
        return None

    def _scan(
        self, module, info, with_node, kind, held,
        reach, reported, rw_guards, direct_blocking,
    ) -> Iterator[Finding]:
        region = {
            id(node)
            for stmt in with_node.body
            for node in ast.walk(stmt)
        }
        for site in info.calls:
            if id(site.node) not in region or id(site.node) in reported:
                continue
            if site.target is not None:
                hit = reach.reach(site.target)
                if hit is None:
                    continue
                reported.add(id(site.node))
                chain = " -> ".join(
                    _short(q) for q in (site.target,) + hit[1]
                )
                yield Finding(
                    self.id, module.logical_path, site.node.lineno,
                    f"{hit[0]} is reachable while holding {held} "
                    f"(via {chain})",
                    _snippet(module, site.node.lineno),
                )
            elif kind != "rw":
                # Direct blocking under an RW guard is RL001's finding;
                # the cluster locks have no intra-function rule, so the
                # zero-hop case is reported here.
                desc = direct_blocking(site)
                if desc is None:
                    continue
                reported.add(id(site.node))
                yield Finding(
                    self.id, module.logical_path, site.node.lineno,
                    f"blocking call {desc} while holding {held}",
                    _snippet(module, site.node.lineno),
                )


class LockOrderCycle(ProjectRule):
    """RL014: two lock-acquisition chains disagree on order.

    Builds the global acquisition graph — an edge ``A -> B`` whenever B
    is taken (directly, in a nested ``with``, or transitively through
    resolved calls) while A is held — and reports every cycle with a
    witness location and call chain for each edge.
    """

    id = "RL014"
    title = "inconsistent lock acquisition order (potential deadlock)"
    rationale = (
        "Two threads taking the same pair of locks in opposite orders "
        "deadlock under load; the cluster layer nests the coordinator "
        "writer lock, member failover locks, and client pool locks."
    )

    def check_project(
        self, modules: "list[ModuleInfo]"
    ) -> Iterator[Finding]:
        from ..callgraph import project_index
        from ..lockflow import LockFlow, find_cycles

        index = project_index(modules)
        edges = LockFlow(index).order_edges()
        for cycle in find_cycles(edges):
            legs = []
            anchor = None
            for position, a in enumerate(cycle):
                b = cycle[(position + 1) % len(cycle)]
                witness = edges[a][b]
                if anchor is None:
                    anchor = witness
                legs.append(
                    f"{a.label} -> {b.label} at "
                    f"{witness.module.logical_path}:{witness.line} "
                    f"(via {witness.detail})"
                )
            ring = " -> ".join(
                lock.label for lock in list(cycle) + [cycle[0]]
            )
            yield Finding(
                self.id, anchor.module.logical_path, anchor.line,
                f"lock-order cycle {ring}; " + "; ".join(legs),
                _snippet(anchor.module, anchor.line),
            )
