"""RL016: resources that leak when an exception takes the early exit.

Tracks statements that bind a fresh OS resource — a socket, file
handle, pipe end, or subprocess — to a local name, then walks the rest
of the enclosing block.  Between creation and the point the resource is
closed or escapes (returned, stored on an attribute, handed to another
call), any fallible statement is an exception path on which nothing
closes it: the classic

    sock = socket.create_connection(address)
    sock.setsockopt(...)        # raises -> sock is orphaned
    return sock

Safe shapes are recognized structurally: ``with`` blocks, direct
returns, assignment to ``self.attr`` (ownership moves to the object),
and a ``try`` whose handler or ``finally`` closes the name — either
enclosing the creation or immediately guarding the statements after it.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from .base import Finding, ImportMap, Rule, call_name, walk_functions

if TYPE_CHECKING:  # pragma: no cover
    from ..checker import ModuleInfo

#: Import-resolved constructors of leakable OS resources.
RESOURCE_QNAMES = frozenset({
    "socket.create_connection", "socket.socket",
    "subprocess.Popen", "os.fdopen",
})

#: Call-name tails accepted when imports cannot resolve the receiver
#: (``self._ctx.Pipe()`` on a multiprocessing context).
RESOURCE_TAILS = frozenset({
    "Pipe", "create_connection", "Popen", "fdopen",
})

#: Methods that release the resource (or reap the process).
CLEANUP_METHODS = frozenset({
    "close", "terminate", "kill", "shutdown", "release", "join", "wait",
})


class ExceptionPathResourceLeak(Rule):
    """RL016: a socket/file/pipe/process can be orphaned by an exception."""

    id = "RL016"
    title = "resource not closed on exception paths"
    rationale = (
        "A worker socket or pipe orphaned by an exception survives "
        "until process exit; under failover retry loops that is an fd "
        "leak the cluster pays for at the worst time."
    )

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        imports = ImportMap.of(module.tree)
        for fn in walk_functions(module.tree):
            yield from self._scan_body(module, imports, fn.body, [])

    # ------------------------------------------------------------- traversal

    def _scan_body(
        self,
        module: "ModuleInfo",
        imports: ImportMap,
        body: list[ast.stmt],
        enclosing_tries: list[ast.Try],
    ) -> Iterator[Finding]:
        for index, stmt in enumerate(body):
            for name, call in self._creations(imports, stmt):
                yield from self._check_lifetime(
                    module, name, call, body[index + 1:], enclosing_tries
                )
            yield from self._scan_children(
                module, imports, stmt, enclosing_tries
            )

    def _scan_children(
        self, module, imports, stmt, enclosing_tries
    ) -> Iterator[Finding]:
        if isinstance(stmt, ast.Try):
            yield from self._scan_body(
                module, imports, stmt.body, enclosing_tries + [stmt]
            )
            for handler in stmt.handlers:
                yield from self._scan_body(
                    module, imports, handler.body, enclosing_tries
                )
            for sub in (stmt.orelse, stmt.finalbody):
                yield from self._scan_body(
                    module, imports, sub, enclosing_tries
                )
        elif isinstance(stmt, (ast.If, ast.For, ast.While)):
            yield from self._scan_body(
                module, imports, stmt.body, enclosing_tries
            )
            yield from self._scan_body(
                module, imports, stmt.orelse, enclosing_tries
            )
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            yield from self._scan_body(
                module, imports, stmt.body, enclosing_tries
            )

    # -------------------------------------------------------------- creation

    def _creations(
        self, imports: ImportMap, stmt: ast.stmt
    ) -> Iterator[tuple[str, ast.Call]]:
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.value, ast.Call)
            and self._is_resource(imports, stmt.value)
        ):
            return
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            yield (target.id, stmt.value)
        elif isinstance(target, ast.Tuple):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    yield (element.id, stmt.value)

    def _is_resource(self, imports: ImportMap, call: ast.Call) -> bool:
        dotted = call_name(call)
        if dotted is None:
            return False
        if dotted == "open":
            return True
        resolved = imports.resolve_call(call)
        if resolved in RESOURCE_QNAMES:
            return True
        return (
            "." in dotted
            and dotted.rsplit(".", 1)[-1] in RESOURCE_TAILS
        )

    # -------------------------------------------------------------- lifetime

    def _check_lifetime(
        self,
        module: "ModuleInfo",
        name: str,
        call: ast.Call,
        rest: list[ast.stmt],
        enclosing_tries: list[ast.Try],
    ) -> Iterator[Finding]:
        for guard in enclosing_tries:
            if self._try_cleans(guard, name):
                return
        risky: ast.stmt | None = None
        for stmt in rest:
            if isinstance(stmt, ast.Try) and self._try_cleans(stmt, name):
                return
            if self._cleans(stmt, name) or self._escapes(stmt, name):
                if risky is not None:
                    yield self.finding(
                        module, call,
                        f"{name!r} leaks if line {risky.lineno} raises "
                        f"before it is closed or handed off",
                    )
                return
            if risky is None and self._is_fallible(stmt):
                risky = stmt
        if risky is not None:
            yield self.finding(
                module, call,
                f"{name!r} is never closed on the path where line "
                f"{risky.lineno} raises",
            )

    def _try_cleans(self, node: ast.Try, name: str) -> bool:
        if self._block_cleans(node.finalbody, name):
            return True
        return any(
            self._block_cleans(handler.body, name)
            for handler in node.handlers
        )

    def _block_cleans(self, stmts: list[ast.stmt], name: str) -> bool:
        return any(self._cleans(stmt, name) for stmt in stmts)

    def _cleans(self, stmt: ast.stmt, name: str) -> bool:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in CLEANUP_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                return True
        return False

    def _escapes(self, stmt: ast.stmt, name: str) -> bool:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Return) and node.value is not None:
                if self._mentions(node.value, name):
                    return True
            elif isinstance(node, ast.Call):
                for arg in list(node.args) + [
                    kw.value for kw in node.keywords
                ]:
                    if self._mentions(arg, name):
                        return True
            elif isinstance(node, ast.Assign):
                if any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                ) and self._mentions(node.value, name):
                    return True
        return False

    def _mentions(self, node: ast.AST, name: str) -> bool:
        return any(
            isinstance(sub, ast.Name) and sub.id == name
            for sub in ast.walk(node)
        )

    def _is_fallible(self, stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Raise):
            return True
        return any(
            isinstance(node, ast.Call) for node in ast.walk(stmt)
        )
