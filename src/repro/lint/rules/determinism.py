"""Determinism rule (RL006).

Snapshot, WAL, and dictionary-encoding bytes must be a pure function of
the update sequence: two replicas replaying the same WAL must produce
byte-identical snapshots, and recovery must reconstruct the exact
pre-crash dictionary.  Wall-clock reads and randomness in those paths
break replay equality in ways no unit test reliably catches.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from .base import Finding, ImportMap, Rule, path_matches

if TYPE_CHECKING:  # pragma: no cover
    from ..checker import ModuleInfo

#: Files whose byte output must be replay-deterministic.
DURABLE_PATHS = (
    "service/wal.py",
    "service/snapshot.py",
    "model/dictionary.py",
    "mvbt/compression.py",
)

#: Fully qualified calls that read the clock or entropy.
BANNED_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",  # monotonic is per-process: differs across replicas
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
})

#: Any call under these module prefixes is nondeterministic.
BANNED_PREFIXES = ("random.", "secrets.")

#: Explicitly fine: profiling timers never reach the byte stream.
ALLOWED = frozenset({"time.perf_counter", "time.perf_counter_ns"})


class NondeterministicDurablePath(Rule):
    """RL006: no wall-clock or randomness in snapshot/WAL/dictionary code."""

    id = "RL006"
    title = "wall-clock/randomness in a replay-deterministic path"
    rationale = (
        "Recovery correctness is checked by comparing replayed state to "
        "the pre-crash state; a time.time() or random draw in the WAL, "
        "snapshot, or dictionary encoder makes two replays of the same "
        "log diverge byte-for-byte."
    )

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        if not path_matches(module.logical_path, DURABLE_PATHS):
            return
        imports = ImportMap.of(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = imports.resolve_call(node)
            if qualified is None or qualified in ALLOWED:
                continue
            if qualified in BANNED_CALLS or qualified.startswith(
                BANNED_PREFIXES
            ):
                yield self.finding(
                    module, node,
                    f"`{qualified}` is nondeterministic in a durable path — "
                    f"replaying the same WAL would produce different bytes",
                )
