"""Metrics-hygiene rule (RL009).

Every counter/gauge/timer name used at an instrumentation site must be a
literal, well-formed, and declared in ``repro.obs.catalog`` — dashboards
and the obs-overhead CI job key off the catalog, so an unregistered name
is a metric nobody can find and nobody budgets for.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ...obs import catalog
from .base import Finding, Rule, dotted_name, path_matches

if TYPE_CHECKING:  # pragma: no cover
    from ..checker import ModuleInfo

#: Receiver names that denote the metrics registry.
REGISTRY_NAMES = frozenset({"_metrics", "metrics", "REGISTRY"})

#: registry method -> catalog set the name must belong to.
KIND_SETS = {
    "counter": "COUNTERS",
    "gauge": "GAUGES",
    "histogram": "HISTOGRAMS",
    "timer": "TIMERS",
    "timer_stat": "TIMERS",
}

#: The registry implementation and the catalog itself are exempt.
EXEMPT_PATHS = ("obs/metrics.py", "obs/catalog.py")


class UnregisteredMetricName(Rule):
    """RL009: metric names must be literal, well-formed, and cataloged."""

    id = "RL009"
    title = "metric name missing from the obs catalog"
    rationale = (
        "The overhead budget test and any dashboard enumerate metrics "
        "from repro.obs.catalog; an instrumentation site using an "
        "uncataloged or dynamically built name produces a series that "
        "monitoring never sees."
    )

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        if path_matches(module.logical_path, EXEMPT_PATHS):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None or "." not in dotted:
                continue
            receiver, method = dotted.rsplit(".", 1)
            if method not in KIND_SETS:
                continue
            if receiver.rsplit(".", 1)[-1] not in REGISTRY_NAMES:
                continue
            if not node.args:
                continue
            name_arg = node.args[0]
            if not isinstance(name_arg, ast.Constant) or not isinstance(
                name_arg.value, str
            ):
                yield self.finding(
                    module, node,
                    f"`{dotted}` called with a non-literal metric name — "
                    f"names must be static so the catalog can list them",
                )
                continue
            name = name_arg.value
            if not catalog.is_well_formed(name):
                yield self.finding(
                    module, node,
                    f"metric name {name!r} is malformed (want "
                    f"dotted lower_snake segments, e.g. `engine.updates`)",
                )
            elif name not in getattr(catalog, KIND_SETS[method]):
                yield self.finding(
                    module, node,
                    f"metric name {name!r} is not declared in "
                    f"repro.obs.catalog.{KIND_SETS[method]} — register it "
                    f"there or fix the typo",
                )
