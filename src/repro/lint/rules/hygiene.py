"""General hygiene rules (RL007, RL008, RL010).

These are the generic-looking rules tuned to this codebase: exception
handling in the serving/engine layers must never silently eat an error,
default arguments must not alias mutable state across calls, and
``assert`` is reserved for the invariant-checking harnesses (it vanishes
under ``python -O``, so production guards must ``raise``).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from .base import Finding, Rule, dotted_name, enclosing_function_names, \
    has_path_segment

if TYPE_CHECKING:  # pragma: no cover
    from ..checker import ModuleInfo

#: Exception names considered "broad" when caught in service/engine code.
BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})

#: Call-name fragments that count as surfacing the error.
LOGGING_FRAGMENTS = ("log", "exception", "warn", "print_exc")

#: Function-name prefixes whose asserts are sanctioned (invariant harnesses).
CHECKER_PREFIXES = ("check_", "_check")

#: File-name prefixes of pytest modules, where assert IS the idiom.
TEST_FILE_PREFIXES = ("test_", "bench_", "conftest")


def _handler_surfaces_error(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises or visibly reports the exception."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted is not None:
                tail = dotted.rsplit(".", 1)[-1].lower()
                if any(frag in tail for frag in LOGGING_FRAGMENTS):
                    return True
    return False


def _caught_names(handler: ast.ExceptHandler) -> Iterator[str]:
    """Exception class names this handler catches."""
    node = handler.type
    if node is None:
        return
    types = node.elts if isinstance(node, ast.Tuple) else [node]
    for item in types:
        dotted = dotted_name(item)
        if dotted is not None:
            yield dotted.rsplit(".", 1)[-1]


class SwallowedException(Rule):
    """RL007: no silent broad excepts in service/engine code."""

    id = "RL007"
    title = "broad except swallows the error"
    rationale = (
        "A swallowed exception in the request handler or the engine turns "
        "a data-corrupting bug into a quiet 200/empty result; catch-alls "
        "there must re-raise or log with enough identity to debug."
    )

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        in_scope = has_path_segment(
            module.logical_path, "service"
        ) or has_path_segment(module.logical_path, "engine")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                # A bare ``except:`` also traps KeyboardInterrupt/SystemExit;
                # that is wrong everywhere, not just in the hot layers.
                yield self.finding(
                    module, node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt — "
                    "name the exception",
                )
                continue
            if not in_scope:
                continue
            broad = [n for n in _caught_names(node) if n in BROAD_EXCEPTIONS]
            if broad and not _handler_surfaces_error(node):
                yield self.finding(
                    module, node,
                    f"`except {broad[0]}` in a service/engine path neither "
                    f"re-raises nor logs — the failure disappears",
                )


class MutableDefaultArgument(Rule):
    """RL008: no mutable default arguments."""

    id = "RL008"
    title = "mutable default argument"
    rationale = (
        "A list/dict/set default is created once at def time and shared "
        "by every call — in a long-lived server that is cross-request "
        "state leakage."
    )

    MUTABLE = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
               ast.SetComp)

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(fn.args.defaults) + [
                d for d in fn.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(default, self.MUTABLE) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in {"list", "dict", "set"}
                ):
                    yield self.finding(
                        module, default,
                        f"mutable default in `{fn.name}` is shared across "
                        f"calls — default to None and create inside",
                    )


class ProductionAssert(Rule):
    """RL010: ``assert`` only inside the invariant-check harnesses."""

    id = "RL010"
    title = "assert outside an invariant-check harness"
    rationale = (
        "`python -O` strips asserts, so an assert guarding real control "
        "flow (split boundaries, parse states) silently stops guarding; "
        "only check_invariants-style debug harnesses may use them."
    )

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        basename = module.logical_path.replace("\\", "/").rsplit("/", 1)[-1]
        if basename.startswith(TEST_FILE_PREFIXES) or has_path_segment(
            module.logical_path, "tests"
        ):
            return  # pytest rewrites asserts; they never run under -O
        owners = enclosing_function_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assert):
                continue
            owner = owners.get(id(node), "<module>")
            if owner.startswith(CHECKER_PREFIXES):
                continue
            yield self.finding(
                module, node,
                f"assert in `{owner}` vanishes under -O — raise a real "
                f"exception (asserts are reserved for check_* harnesses)",
            )
