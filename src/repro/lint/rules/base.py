"""Rule plumbing: findings, the rule base class, shared AST helpers."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from ..checker import ModuleInfo


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  # the module's logical (scope-resolved) path
    line: int
    message: str
    snippet: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
        }


class Rule:
    """A single project-specific check.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`Finding` objects.  Rules never mutate the module and
    never signal through exceptions — an un-parseable file is handled
    before rules run.
    """

    id: str = ""
    title: str = ""
    #: Which RDF-TX invariant the rule protects (shown by ``--list-rules``).
    rationale: str = ""

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: "ModuleInfo", node: ast.AST,
                message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        snippet = ""
        if 1 <= line <= len(module.lines):
            snippet = module.lines[line - 1].strip()
        return Finding(self.id, module.logical_path, line, message, snippet)


class ProjectRule(Rule):
    """A rule that analyses the whole module set at once.

    Interprocedural rules (call graphs, cross-module protocol checks)
    cannot work one file at a time; the checker calls
    :meth:`check_project` once per run instead of :meth:`check` per
    module.  Findings still carry a per-module logical path, so pragma
    suppression works unchanged.
    """

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, modules: "list[ModuleInfo]"
    ) -> Iterator[Finding]:
        raise NotImplementedError


# --------------------------------------------------------------- AST helpers


def dotted_name(node: ast.AST) -> str | None:
    """Resolve a ``Name``/``Attribute`` chain to ``"a.b.c"`` (else None)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """The dotted name a call targets, e.g. ``self._wal.append``."""
    return dotted_name(node.func)


def decorator_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Final path components of every decorator on ``fn``."""
    names: set[str] = set()
    for dec in fn.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = dotted_name(target)
        if dotted is not None:
            names.add(dotted.rsplit(".", 1)[-1])
    return names


def walk_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def enclosing_function_names(tree: ast.AST) -> dict[int, str]:
    """Map each AST node id to the name of its innermost enclosing function.

    Module-level nodes are absent from the map.
    """
    owner: dict[int, str] = {}

    def visit(node: ast.AST, current: str | None) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            current = node.name
        for child in ast.iter_child_nodes(node):
            if current is not None:
                owner[id(child)] = current
            visit(child, current)

    visit(tree, None)
    return owner


@dataclass
class ImportMap:
    """What the module's import statements bind each local name to."""

    #: local alias -> imported module path (``import x.y as z``)
    modules: dict[str, str] = field(default_factory=dict)
    #: local name -> fully qualified origin (``from x import y``)
    names: dict[str, str] = field(default_factory=dict)

    @classmethod
    def of(cls, tree: ast.AST) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    imports.modules[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:  # relative import: origin is project-local
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    imports.names[local] = f"{node.module}.{alias.name}"
        return imports

    def resolve_call(self, node: ast.Call) -> str | None:
        """Fully qualified name of the called function, where imports
        make that decidable (``_time.time`` -> ``time.time``)."""
        dotted = call_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if not rest:
            return self.names.get(head, None)
        if head in self.modules:
            return f"{self.modules[head]}.{rest}"
        if head in self.names:
            return f"{self.names[head]}.{rest}"
        return None


def path_matches(logical_path: str, suffixes: Iterable[str]) -> bool:
    """Whether ``logical_path`` ends with any of the given path suffixes."""
    normalized = logical_path.replace("\\", "/")
    return any(normalized.endswith(suffix) for suffix in suffixes)


def has_path_segment(logical_path: str, segment: str) -> bool:
    """Whether ``segment`` appears as a whole directory name in the path."""
    parts = logical_path.replace("\\", "/").split("/")
    return segment in parts[:-1]
