"""Cluster-event hygiene rule (RL017).

The cluster event log (``repro.obs.events``) is the failover/replication
flight recorder: ``/debug/events`` consumers and the docs enumerate
event names from ``repro.obs.catalog.EVENTS``.  A typo'd or undeclared
name would record fine but never show up where operators grep for it, so
every ``EVENTS.record(...)`` call site must pass a static, cataloged
event name — exactly the discipline RL009/RL012 enforce for metric
series.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ...obs import catalog
from .base import Finding, Rule, path_matches

if TYPE_CHECKING:  # pragma: no cover
    from ..checker import ModuleInfo

#: The event-log implementation and the catalog itself are exempt.
EXEMPT_PATHS = ("obs/events.py", "obs/catalog.py")


def _is_events_module(module: str | None, level: int,
                      logical_path: str) -> bool:
    """Whether an ``ImportFrom`` pulls from the obs events layer."""
    if module is None:
        return False
    if module == "obs.events" or module.endswith("obs.events"):
        return True
    # ``from .events import record`` only counts inside the obs package.
    return level > 0 and module == "events" and "obs/" in logical_path


def _is_events_receiver(func: ast.expr) -> bool:
    """``EVENTS.record`` / ``_events.EVENTS.record`` -> True."""
    if not isinstance(func, ast.Attribute) or func.attr != "record":
        return False
    receiver = func.value
    if isinstance(receiver, ast.Name):
        return receiver.id == "EVENTS"
    if isinstance(receiver, ast.Attribute):
        return receiver.attr == "EVENTS"
    return False


class UncatalogedEventName(Rule):
    """RL017: event-log records must use cataloged event names."""

    id = "RL017"
    title = "cluster event not declared in the catalog"
    rationale = (
        "/debug/events consumers and the runbooks enumerate event names "
        "from repro.obs.catalog.EVENTS; a typo'd or undeclared name is "
        "recorded but invisible to whoever greps for the cataloged "
        "spelling — declare every event name in the catalog."
    )

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        if path_matches(module.logical_path, EXEMPT_PATHS):
            return
        bare_names: set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            if not _is_events_module(node.module, node.level,
                                     module.logical_path):
                continue
            for alias in node.names:
                if alias.name == "record":
                    bare_names.add(alias.asname or alias.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_bare = (
                isinstance(func, ast.Name) and func.id in bare_names
            )
            if not is_bare and not _is_events_receiver(func):
                continue
            if not node.args:
                continue
            name_arg = node.args[0]
            if not isinstance(name_arg, ast.Constant) or not isinstance(
                name_arg.value, str
            ):
                yield self.finding(
                    module, node,
                    "`EVENTS.record(...)` called with a non-literal "
                    "event name — names must be static so the catalog "
                    "can list them",
                )
                continue
            name = name_arg.value
            if not catalog.is_well_formed(name):
                yield self.finding(
                    module, node,
                    f"event name {name!r} is malformed (want dotted "
                    f"lower_snake segments, e.g. "
                    f"`cluster.event.promoted`)",
                )
            elif not catalog.is_event(name):
                yield self.finding(
                    module, node,
                    f"event name {name!r} is not declared in "
                    f"repro.obs.catalog.EVENTS — register it there or "
                    f"fix the typo",
                )
