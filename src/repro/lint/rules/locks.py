"""Lock-discipline rules (RL001, RL002).

The serving layer's correctness contract: the in-memory engine is only
mutated while the write side of the store's readers-writer lock is held,
and nothing blocking (disk syncs, sleeps, socket I/O) runs *while* the RW
lock is held — readers drain behind a waiting writer, so one blocked
writer stalls the whole query stream.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from .base import Finding, Rule, call_name, decorator_names

if TYPE_CHECKING:  # pragma: no cover
    from ..checker import ModuleInfo

#: Callable names that block on I/O or time while holding a lock.
BLOCKING_ATTRS = frozenset({
    "fsync", "fdatasync", "sleep", "sync", "flush",
    "recv", "recv_into", "sendall", "accept", "connect",
    "urlopen", "select",
})

#: Builtins that block on the outside world.
BLOCKING_BUILTINS = frozenset({"open", "input"})

#: Context-manager method names that mean "the RW lock is held inside".
RW_GUARDS = frozenset({"write_locked", "read_locked"})

#: ``self.engine`` methods that mutate multiversion state.
MUTATING_ENGINE_CALLS = frozenset({"insert", "delete", "load"})

#: ``self.<attr>`` assignments that change the reader-visible store state.
GUARDED_ATTRS = frozenset({"engine", "_revision"})

MARKER = "requires_writer_lock"


def _with_guards(node: ast.With | ast.AsyncWith) -> set[str]:
    """The RW-lock guard methods entered by this ``with`` statement."""
    guards: set[str] = set()
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            dotted = call_name(expr)
            if dotted is not None:
                tail = dotted.rsplit(".", 1)[-1]
                if tail in RW_GUARDS:
                    guards.add(tail)
    return guards


class BlockingUnderLock(Rule):
    """RL001: no blocking call while the RW lock is held."""

    id = "RL001"
    title = "blocking call while holding the readers-writer lock"
    rationale = (
        "A writer holding the RW lock stalls every queued reader; an fsync "
        "or sleep inside write_locked() turns one slow disk into a full "
        "service stall.  The WAL append belongs before the lock, the "
        "checkpoint fsync under the writer mutex only."
    )

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not _with_guards(node):
                continue
            for stmt in node.body:
                yield from self._scan(module, stmt)

    def _scan(self, module: "ModuleInfo", node: ast.AST) -> Iterator[Finding]:
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Call):
                continue
            dotted = call_name(inner)
            if dotted is None:
                continue
            tail = dotted.rsplit(".", 1)[-1]
            if tail in BLOCKING_ATTRS or dotted in BLOCKING_BUILTINS:
                yield self.finding(
                    module, inner,
                    f"blocking call `{dotted}` inside a "
                    f"read_locked()/write_locked() block",
                )


class UnguardedStateMutation(Rule):
    """RL002: store-state mutations must hold the write lock (or be
    explicitly marked ``@requires_writer_lock``)."""

    id = "RL002"
    title = "engine/state mutation outside write_locked()"
    rationale = (
        "Readers are pinned to a revision only because every mutation of "
        "the engine happens under the write side of the RW lock; one "
        "unguarded mutation lets a concurrent reader observe a half-"
        "applied MVBT structure change."
    )

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if isinstance(cls, ast.ClassDef) and self._has_rw_lock(cls):
                yield from self._check_class(module, cls)

    @staticmethod
    def _has_rw_lock(cls: ast.ClassDef) -> bool:
        """Whether ``__init__`` assigns ``self._rw`` (the guarded lock)."""
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "_rw"
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        return True
        return False

    def _check_class(
        self, module: "ModuleInfo", cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for fn in cls.body:
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name == "__init__":
                continue  # the constructor owns the un-shared object
            if MARKER in decorator_names(fn):
                continue
            for stmt in fn.body:
                yield from self._visit(module, stmt)

    def _visit(self, module: "ModuleInfo", node: ast.AST) -> Iterator[Finding]:
        """Check ``node`` and descend, stopping at write_locked() bodies
        (everything inside them is guarded by definition)."""
        if isinstance(node, (ast.With, ast.AsyncWith)):
            guarded = "write_locked" in _with_guards(node)
            for item in node.items:
                yield from self._visit(module, item.context_expr)
            if not guarded:
                for stmt in node.body:
                    yield from self._visit(module, stmt)
            return
        yield from self._check_node(module, node)
        for child in ast.iter_child_nodes(node):
            yield from self._visit(module, child)

    def _check_node(
        self, module: "ModuleInfo", node: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = self._self_attr(target)
                if attr in GUARDED_ATTRS:
                    yield self.finding(
                        module, node,
                        f"assignment to `self.{attr}` outside "
                        f"write_locked() (mark the method "
                        f"@requires_writer_lock if every caller holds it)",
                    )
        elif isinstance(node, ast.Call):
            dotted = call_name(node)
            if dotted is not None and dotted.startswith("self.engine."):
                method = dotted.rsplit(".", 1)[-1]
                if method in MUTATING_ENGINE_CALLS:
                    yield self.finding(
                        module, node,
                        f"`{dotted}` mutates multiversion state outside "
                        f"write_locked()",
                    )

    @staticmethod
    def _self_attr(target: ast.AST) -> str | None:
        """``self.X`` or ``self.X.Y...`` -> ``X``; otherwise None."""
        while isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                return target.attr
            target = target.value
        return None
