"""Project-wide call graph for the interprocedural lint rules.

The per-module rules (RL001–RL012) see one AST at a time; the
concurrency rules (RL013+) need to know what a call *reaches* two or
three frames down, across module boundaries.  :class:`ProjectIndex`
builds that view from the already-parsed module set:

* **module naming** — logical paths (``src/repro/cluster/worker.py``)
  become dotted module names (``repro.cluster.worker``), so relative
  imports (``from ..obs import log as _obslog``) resolve to project
  modules.
* **definition index** — every module-level function and every class
  method gets a qualified name (``repro.service.store.TemporalStore._update``).
* **type seeds** — ``self.X = ClassName(...)`` assignments (and
  annotated ``self.X: ClassName = ...``) type instance attributes;
  ``NAME = ClassName(...)`` at module level types module singletons.
* **call resolution** — ``self.m()``, ``self.attr.m()``, ``f()``,
  ``mod.f()``, ``mod.OBJ.m()`` and from-imported functions resolve
  through the index; as a last resort an attribute call resolves to a
  method whose name is defined by exactly one project class and does
  not collide with a builtin container/primitive method name.

Resolution is deliberately *under*-approximate: an unresolvable call is
simply absent from the graph, so interprocedural rules err toward
silence rather than noise.
"""

from __future__ import annotations

import ast
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from .rules.base import call_name, decorator_names, dotted_name

if TYPE_CHECKING:  # pragma: no cover
    from .checker import ModuleInfo

#: Method names never resolved via the unique-name fallback: they are
#: overwhelmingly likely to be list/dict/str/socket/thread operations on
#: objects the index knows nothing about.
_GENERIC_METHODS = frozenset(
    name
    for obj in (list, dict, set, frozenset, str, bytes, tuple)
    for name in dir(obj)
) | frozenset({
    "acquire", "release", "locked", "wait", "notify", "notify_all",
    "start", "run", "join", "is_alive", "terminate", "kill", "cancel",
    "result", "submit", "shutdown", "poll", "send", "recv", "close",
    "open", "read", "write", "readline", "flush", "fileno", "settimeout",
    "setsockopt", "put", "get", "set", "inc", "observe", "info",
    "warning", "error", "debug", "exists", "mkdir", "unlink",
})


def module_name(logical_path: str) -> str:
    """Dotted module name for a logical path.

    ``src/repro/cluster/worker.py`` -> ``repro.cluster.worker``; files
    outside a recognizable package root (test fixtures) collapse to
    their stem, which keeps single-file lint runs self-contained.
    """
    parts = logical_path.replace("\\", "/").split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    return ".".join(parts) if parts else "<root>"


@dataclass
class CallSite:
    """One call expression inside a function."""

    node: ast.Call
    dotted: str | None  # syntactic name, e.g. ``self._rpc_primary``
    absolute: str | None  # import-resolved name, e.g. ``time.sleep``
    target: str | None  # qualified name of the resolved project callee


@dataclass
class FunctionInfo:
    """One module-level function or class method."""

    qname: str
    modname: str
    module: "ModuleInfo"
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    decorators: set[str] = field(default_factory=set)
    calls: list[CallSite] = field(default_factory=list)


class ProjectIndex:
    """Definitions, imports, and the resolved call graph of a module set."""

    def __init__(self, modules: list["ModuleInfo"]) -> None:
        self.modules = list(modules)
        self.functions: dict[str, FunctionInfo] = {}
        self._module_of: dict[str, "ModuleInfo"] = {}
        self._module_funcs: dict[str, dict[str, str]] = {}
        self._classes: dict[str, dict[str, dict[str, str]]] = {}
        self._bindings: dict[str, dict[str, str]] = {}
        self._instance_vars: dict[str, dict[str, tuple[str, str]]] = {}
        self._attr_types: dict[tuple[str, str], dict[str, tuple[str, str]]] = {}
        self._method_index: dict[str, list[str]] = {}
        self._collect_definitions()
        self._collect_bindings()
        self._collect_types()
        self._resolve_all_calls()

    # -------------------------------------------------------------- building

    def _collect_definitions(self) -> None:
        for module in self.modules:
            modname = module_name(module.logical_path)
            self._module_of[modname] = module
            funcs = self._module_funcs.setdefault(modname, {})
            classes = self._classes.setdefault(modname, {})
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._register(module, modname, None, node)
                    funcs[node.name] = f"{modname}.{node.name}"
                elif isinstance(node, ast.ClassDef):
                    methods = classes.setdefault(node.name, {})
                    for sub in node.body:
                        if isinstance(
                            sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            self._register(module, modname, node.name, sub)
                            methods[sub.name] = (
                                f"{modname}.{node.name}.{sub.name}"
                            )
                            self._method_index.setdefault(
                                sub.name, []
                            ).append(f"{modname}.{node.name}.{sub.name}")

    def _register(
        self,
        module: "ModuleInfo",
        modname: str,
        cls: str | None,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        qname = (
            f"{modname}.{cls}.{node.name}" if cls else f"{modname}.{node.name}"
        )
        self.functions[qname] = FunctionInfo(
            qname=qname,
            modname=modname,
            module=module,
            cls=cls,
            node=node,
            decorators=decorator_names(node),
        )

    def _collect_bindings(self) -> None:
        """Local name -> dotted import target, relative imports included."""
        for modname, module in self._module_of.items():
            binds = self._bindings.setdefault(modname, {})
            pkg_parts = modname.split(".")
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        local = alias.asname or alias.name.split(".")[0]
                        binds[local] = (
                            alias.name if alias.asname else local
                        )
                elif isinstance(node, ast.ImportFrom):
                    if node.level:
                        base = pkg_parts[: len(pkg_parts) - node.level]
                    else:
                        base = []
                    if node.module:
                        base = base + node.module.split(".")
                    elif not node.level:
                        continue
                    for alias in node.names:
                        local = alias.asname or alias.name
                        binds[local] = ".".join(base + [alias.name])

    def _collect_types(self) -> None:
        for modname, module in self._module_of.items():
            instances = self._instance_vars.setdefault(modname, {})
            for node in module.tree.body:
                if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call
                ):
                    owner = self._class_of_call(modname, node.value)
                    if owner is None:
                        continue
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            instances[target.id] = owner
            for cls_node in module.tree.body:
                if isinstance(cls_node, ast.ClassDef):
                    self._collect_attr_types(modname, cls_node)

    def _collect_attr_types(self, modname: str, cls_node: ast.ClassDef) -> None:
        attrs = self._attr_types.setdefault((modname, cls_node.name), {})
        for node in ast.walk(cls_node):
            target = None
            owner = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(node.value, ast.Call):
                    owner = self._class_of_call(modname, node.value)
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                annotated = dotted_name(node.annotation)
                if annotated is not None:
                    owner = self._resolve_class(modname, annotated)
            if owner is None or target is None:
                continue
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs[target.attr] = owner

    def _class_of_call(
        self, modname: str, call: ast.Call
    ) -> tuple[str, str] | None:
        dotted = call_name(call)
        if dotted is None:
            return None
        return self._resolve_class(modname, dotted)

    def _resolve_class(
        self, modname: str, dotted: str
    ) -> tuple[str, str] | None:
        parts = dotted.split(".")
        classes = self._classes
        if len(parts) == 1:
            if parts[0] in classes.get(modname, {}):
                return (modname, parts[0])
            target = self._bindings.get(modname, {}).get(parts[0])
            if target:
                tmod, _, tcls = target.rpartition(".")
                if tcls in classes.get(tmod, {}):
                    return (tmod, tcls)
        elif len(parts) == 2:
            target = self._bindings.get(modname, {}).get(parts[0])
            if target and parts[1] in classes.get(target, {}):
                return (target, parts[1])
        return None

    # ------------------------------------------------------------ resolution

    def _resolve_all_calls(self) -> None:
        for info in self.functions.values():
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    dotted = call_name(node)
                    info.calls.append(CallSite(
                        node=node,
                        dotted=dotted,
                        absolute=self._absolute(info.modname, dotted),
                        target=self._resolve(info, dotted),
                    ))

    def _absolute(self, modname: str, dotted: str | None) -> str | None:
        """Import-resolved name (``_time.sleep`` -> ``time.sleep``)."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self._bindings.get(modname, {}).get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def _resolve(self, info: FunctionInfo, dotted: str | None) -> str | None:
        if dotted is None:
            return None
        parts = dotted.split(".")
        modname = info.modname
        if parts[0] == "self" and info.cls is not None:
            if len(parts) == 2:
                qname = (
                    self._classes.get(modname, {})
                    .get(info.cls, {})
                    .get(parts[1])
                )
                return qname or self._unique_method(parts[1])
            if len(parts) == 3:
                owner = self._attr_types.get(
                    (modname, info.cls), {}
                ).get(parts[1])
                if owner is not None:
                    qname = (
                        self._classes.get(owner[0], {})
                        .get(owner[1], {})
                        .get(parts[2])
                    )
                    if qname:
                        return qname
                return self._unique_method(parts[2])
            return None
        if len(parts) == 1:
            qname = self._module_funcs.get(modname, {}).get(parts[0])
            if qname:
                return qname
            target = self._bindings.get(modname, {}).get(parts[0])
            if target:
                tmod, _, fname = target.rpartition(".")
                return self._module_funcs.get(tmod, {}).get(fname)
            return None
        target = self._bindings.get(modname, {}).get(parts[0])
        if target is not None and target in self._module_of:
            if len(parts) == 2:
                return self._module_funcs.get(target, {}).get(parts[1])
            if len(parts) == 3:
                owner = self._instance_vars.get(target, {}).get(parts[1])
                if owner is not None:
                    return (
                        self._classes.get(owner[0], {})
                        .get(owner[1], {})
                        .get(parts[2])
                    )
                return (
                    self._classes.get(target, {})
                    .get(parts[1], {})
                    .get(parts[2])
                )
            return None
        if len(parts) == 2:
            owner = self._instance_vars.get(modname, {}).get(parts[0])
            if owner is not None:
                qname = (
                    self._classes.get(owner[0], {})
                    .get(owner[1], {})
                    .get(parts[1])
                )
                if qname:
                    return qname
        return self._unique_method(parts[-1])

    def _unique_method(self, name: str) -> str | None:
        """Fallback: a method name defined by exactly one project class."""
        if name in _GENERIC_METHODS:
            return None
        candidates = self._method_index.get(name)
        if candidates is not None and len(candidates) == 1:
            return candidates[0]
        return None

    # --------------------------------------------------------------- queries

    def function_at(self, qname: str) -> FunctionInfo | None:
        return self.functions.get(qname)

    def functions_of(self, module: "ModuleInfo") -> Iterator[FunctionInfo]:
        for info in self.functions.values():
            if info.module is module:
                yield info

    def callsites_in(
        self, info: FunctionInfo, root: ast.AST
    ) -> Iterator[CallSite]:
        """The function's call sites lexically inside ``root``."""
        inside = {id(node) for node in ast.walk(root)}
        for site in info.calls:
            if id(site.node) in inside:
                yield site


#: One index per distinct module set, shared by every interprocedural
#: rule in a single ``run_lint`` invocation (the checker clears it).
_INDEX_LOCK = threading.Lock()
_INDEX_CACHE: dict[tuple[int, ...], ProjectIndex] = {}


def project_index(modules: list["ModuleInfo"]) -> ProjectIndex:
    key = tuple(sorted(id(module) for module in modules))
    with _INDEX_LOCK:
        index = _INDEX_CACHE.get(key)
        if index is None:
            index = ProjectIndex(modules)
            _INDEX_CACHE.clear()
            _INDEX_CACHE[key] = index
        return index
