"""The ``repro-tx lint`` driver: file collection, pragmas, orchestration.

Suppression syntax (comments, matched per physical line):

``# repro-lint: disable=RL001,RL007``
    Suppress the listed rules on this line.
``# repro-lint: disable-file=RL004``
    Suppress the listed rules for the whole file (first 20 lines only).
``# repro-lint: scope=src/repro/service/wal.py``
    Pretend this file lives at the given logical path.  Used by the test
    fixture corpus so path-scoped rules (determinism, compression
    confinement) can be exercised from ``tests/lint_fixtures/``.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline
from .rules import ALL_RULES, RULES_BY_ID
from .rules.base import Finding, ProjectRule, Rule

DEFAULT_BASELINE = ".repro-lint-baseline.json"

#: Version of the ``--format json`` output envelope.
JSON_SCHEMA_VERSION = 2

#: ``RL000`` marks files the checker itself cannot analyse (syntax errors);
#: it is not suppressible and has no Rule class.
PARSE_ERROR_RULE = "RL000"

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file|scope)\s*=\s*([\w./,\- ]+)"
)

#: How far into a file the ``disable-file``/``scope`` pragmas are honored.
HEADER_LINES = 20


class LintError(Exception):
    """Unusable invocation (bad path, unknown rule ID)."""


@dataclass
class ModuleInfo:
    """One parsed source file plus its suppression state."""

    path: Path  # real filesystem location
    logical_path: str  # scope-pragma-resolved path rules match against
    tree: ast.AST
    text: str
    lines: list[str]
    #: line number -> rule IDs disabled on that line
    line_disables: dict[int, set[str]] = field(default_factory=dict)
    #: rule IDs disabled for the whole file
    file_disables: set[str] = field(default_factory=set)

    def suppresses(self, finding: Finding) -> bool:
        if finding.rule in self.file_disables:
            return True
        return finding.rule in self.line_disables.get(finding.line, set())


def _parse_pragmas(module: ModuleInfo) -> None:
    for lineno, line in enumerate(module.lines, start=1):
        for match in _PRAGMA.finditer(line):
            kind, value = match.group(1), match.group(2).strip()
            if kind == "disable":
                ids = {part.strip() for part in value.split(",") if part.strip()}
                module.line_disables.setdefault(lineno, set()).update(ids)
            elif lineno <= HEADER_LINES and kind == "disable-file":
                module.file_disables.update(
                    part.strip() for part in value.split(",") if part.strip()
                )
            elif lineno <= HEADER_LINES and kind == "scope":
                module.logical_path = value


def load_module(path: Path, root: Path | None = None) -> ModuleInfo | Finding:
    """Parse one file; on a syntax error return an RL000 finding instead."""
    text = path.read_text(encoding="utf-8")
    logical = str(path)
    if root is not None:
        try:
            logical = path.relative_to(root).as_posix()
        except ValueError:
            logical = path.as_posix()
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as error:
        return Finding(
            PARSE_ERROR_RULE,
            logical,
            error.lineno or 1,
            f"file does not parse: {error.msg}",
        )
    module = ModuleInfo(
        path=path,
        logical_path=logical,
        tree=tree,
        text=text,
        lines=text.splitlines(),
    )
    _parse_pragmas(module)
    return module


def collect_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise LintError(f"no such file or directory: {raw}")
    # De-duplicate while keeping the order stable.
    seen: set[Path] = set()
    unique = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def collect_modules(
    paths: list[str], root: Path | None = None
) -> tuple[list[ModuleInfo], list[Finding]]:
    """Parse every file under ``paths``; second element is RL000 findings."""
    modules: list[ModuleInfo] = []
    errors: list[Finding] = []
    for path in collect_files(paths):
        loaded = load_module(path, root=root)
        if isinstance(loaded, Finding):
            errors.append(loaded)
        else:
            modules.append(loaded)
    return modules, errors


def run_lint(
    paths: list[str],
    rules: list[Rule] | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """All unsuppressed findings for the given paths, stably ordered."""
    active = list(ALL_RULES) if rules is None else rules
    modules, findings = collect_modules(paths, root=root)
    by_path = {module.logical_path: module for module in modules}
    for module in modules:
        for rule in active:
            if isinstance(rule, ProjectRule):
                continue
            for finding in rule.check(module):
                if not module.suppresses(finding):
                    findings.append(finding)
    for rule in active:
        if not isinstance(rule, ProjectRule):
            continue
        for finding in rule.check_project(modules):
            module = by_path.get(finding.path)
            if module is None or not module.suppresses(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# ------------------------------------------------------------------- CLI


def _resolve_rules(spec: str | None) -> list[Rule]:
    if spec is None:
        return list(ALL_RULES)
    rules = []
    for rule_id in (part.strip() for part in spec.split(",")):
        if rule_id not in RULES_BY_ID:
            raise LintError(
                f"unknown rule {rule_id!r} (have: "
                f"{', '.join(sorted(RULES_BY_ID))})"
            )
        rules.append(RULES_BY_ID[rule_id])
    return rules


def _list_rules() -> str:
    width = max(len(rule.id) for rule in ALL_RULES)
    out = []
    for rule in ALL_RULES:
        out.append(f"{rule.id:<{width}}  {rule.title}")
        out.append(f"{'':<{width}}  {rule.rationale}")
    return "\n".join(out)


def build_parser(parser: argparse.ArgumentParser | None = None) -> argparse.ArgumentParser:
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro-tx lint",
            description="Project-specific static analysis for RDF-TX.",
        )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="FILE",
        help="baseline suppression file (default: %(default)s)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file even if present",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write current findings to the baseline and exit 0",
    )
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help="drop baseline entries whose content anchor no longer "
             "matches any current finding, then exit 0",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules", metavar="IDS",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns 0 clean, 1 findings, 2 usage error."""
    return run_cli(build_parser().parse_args(argv))


def run_cli(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(_list_rules())
        return 0

    try:
        rules = _resolve_rules(args.rules)
        findings = run_lint(args.paths, rules=rules)
    except LintError as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        count = Baseline().save(baseline_path, findings)
        print(f"baseline updated: {count} fingerprint(s) -> {baseline_path}")
        return 0
    if args.prune_baseline:
        baseline = Baseline.load(baseline_path)
        if not baseline.accepted:
            print(f"baseline {baseline_path} has no entries; nothing to do")
            return 0
        removed = baseline.prune(findings)
        if removed:
            baseline.save_fingerprints(baseline_path)
        print(
            f"pruned {len(removed)} stale fingerprint(s); "
            f"{len(baseline.accepted)} remain -> {baseline_path}"
        )
        return 0
    if not args.no_baseline:
        findings = Baseline.load(baseline_path).filter(findings)

    if args.format == "json":
        print(json.dumps(
            {
                "schema_version": JSON_SCHEMA_VERSION,
                "findings": [f.to_dict() for f in findings],
            },
            indent=2,
        ))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"\n{len(findings)} finding(s)")
        else:
            print("clean: no findings")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
