"""Lock-flow dataflow over the project call graph.

Two analyses share this module:

* **blocking reachability** (RL013) — can a call transitively reach a
  blocking primitive (``time.sleep``, socket/file I/O, subprocess,
  WAL fsync)?  Resolution follows :class:`~repro.lint.callgraph.ProjectIndex`
  edges only, so the answer is an under-approximation with a concrete
  witness chain.
* **lock acquisition order** (RL014) — which locks does each function
  acquire, directly and transitively, and in what order?  Lock objects
  are discovered from ``self.X = threading.Lock()``-style assignments in
  the tracked concurrency modules; acquisitions are ``with`` blocks over
  lock attributes, ``read_locked()``/``write_locked()`` guards, and
  explicit ``.acquire()`` calls (which hold for the rest of the
  function, matching ``TemporalStore._update``'s try/finally idiom).

``flush``/``sync`` are deliberately *not* in the blocking set: the
structured logger flushes its stream on every record, and flagging every
log call under a lock would bury the real findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from .callgraph import CallSite, FunctionInfo, ProjectIndex
from .rules.base import dotted_name, path_matches

if TYPE_CHECKING:  # pragma: no cover
    from .checker import ModuleInfo

#: Attribute tails treated as blocking when the receiver is unresolved.
BLOCKING_TAILS = frozenset({
    "fsync", "fdatasync", "sleep", "recv", "recv_into", "recvfrom",
    "sendall", "sendto", "accept", "connect", "urlopen", "select", "open",
})

#: Import-resolved names that always block.
BLOCKING_QNAMES = frozenset({
    "time.sleep", "os.fsync", "os.fdatasync", "select.select",
    "socket.create_connection", "subprocess.run", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "urllib.request.urlopen", "shutil.copyfile", "shutil.copytree",
})

BLOCKING_BUILTINS = frozenset({"open", "input"})

#: ``with`` guards that take the store's ReadWriteLock.
RW_GUARDS = frozenset({"read_locked", "write_locked"})

#: Calls whose result is a lock object when assigned to ``self.X``.
LOCK_FACTORY_TAILS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "ReadWriteLock", "sanitized_lock",
})

#: Modules whose lock attributes participate in the acquisition graph.
TRACKED_MODULES = (
    "service/locks.py",
    "service/store.py",
    "cluster/coordinator.py",
    "cluster/worker.py",
)


def direct_blocking(site: CallSite) -> str | None:
    """Why this call site blocks, or None if it does not."""
    if site.dotted in BLOCKING_BUILTINS:
        return f"builtin {site.dotted}()"
    if site.absolute in BLOCKING_QNAMES:
        return f"{site.absolute}()"
    if site.target is None and site.dotted is not None:
        tail = site.dotted.rsplit(".", 1)[-1]
        if tail in BLOCKING_TAILS:
            return f"{site.dotted}()"
    return None


class BlockingReach:
    """Memoized can-this-function-block query over the call graph."""

    def __init__(self, index: ProjectIndex) -> None:
        self._index = index
        self._memo: dict[str, tuple[str, tuple[str, ...]] | None] = {}

    def reach(self, qname: str) -> tuple[str, tuple[str, ...]] | None:
        """``(blocking_desc, callee_chain)`` if ``qname`` can block."""
        return self._reach(qname, set())

    def _reach(
        self, qname: str, stack: set[str]
    ) -> tuple[str, tuple[str, ...]] | None:
        if qname in self._memo:
            return self._memo[qname]
        if qname in stack:
            return None  # recursion: already being explored
        info = self._index.function_at(qname)
        if info is None:
            return None
        stack.add(qname)
        result: tuple[str, tuple[str, ...]] | None = None
        for site in info.calls:
            desc = direct_blocking(site)
            if desc is not None:
                result = (desc, ())
                break
            if site.target is not None:
                sub = self._reach(site.target, stack)
                if sub is not None:
                    result = (sub[0], (site.target,) + sub[1])
                    break
        stack.discard(qname)
        self._memo[qname] = result
        return result


# ------------------------------------------------------------ lock ordering


@dataclass(frozen=True)
class LockId:
    """One lock attribute, identified by its owning class."""

    owner: str  # e.g. ``repro.cluster.coordinator.ClusterStore``
    attr: str

    @property
    def label(self) -> str:
        return f"{self.owner.rsplit('.', 1)[-1]}.{self.attr}"


@dataclass
class Acquisition:
    """One place a function takes a lock.

    ``body`` is the guarded statement list for ``with`` acquisitions;
    ``None`` means an explicit ``.acquire()`` call whose region is the
    rest of the function (release happens in a ``finally``).
    """

    lock: LockId
    node: ast.AST
    body: list[ast.stmt] | None
    order: int  # position among the with-items of one ``with`` statement


@dataclass
class Witness:
    """Where an ordering edge was observed."""

    module: "ModuleInfo"
    line: int
    detail: str  # ``f`` for a direct nesting, ``f -> g -> h`` via calls


class LockFlow:
    """Lock discovery, per-function acquisitions, and the order graph."""

    def __init__(self, index: ProjectIndex) -> None:
        self._index = index
        self._by_attr: dict[str, list[LockId]] = {}
        self._owned: set[LockId] = set()
        self._acq_memo: dict[str, list[Acquisition]] = {}
        self._closure_memo: dict[str, dict[LockId, tuple[str, ...]]] = {}
        self._discover_locks()

    def _discover_locks(self) -> None:
        for info in self._index.functions.values():
            if info.cls is None or not path_matches(
                info.module.logical_path, TRACKED_MODULES
            ):
                continue
            owner = f"{info.modname}.{info.cls}"
            for node in ast.walk(info.node):
                if not (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                callee = dotted_name(node.value.func)
                if (
                    callee is None
                    or callee.rsplit(".", 1)[-1] not in LOCK_FACTORY_TAILS
                ):
                    continue
                target = node.targets[0]
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    lock = LockId(owner=owner, attr=target.attr)
                    if lock not in self._owned:
                        self._owned.add(lock)
                        self._by_attr.setdefault(target.attr, []).append(lock)

    @property
    def locks(self) -> set[LockId]:
        return set(self._owned)

    def _resolve_lock(
        self, info: FunctionInfo, dotted: str
    ) -> LockId | None:
        parts = dotted.split(".")
        attr = parts[-1]
        if parts[0] == "self" and len(parts) == 2 and info.cls is not None:
            lock = LockId(owner=f"{info.modname}.{info.cls}", attr=attr)
            if lock in self._owned:
                return lock
        candidates = self._by_attr.get(attr, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def acquisitions(self, info: FunctionInfo) -> list[Acquisition]:
        cached = self._acq_memo.get(info.qname)
        if cached is not None:
            return cached
        found: list[Acquisition] = []
        for node in ast.walk(info.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for order, item in enumerate(node.items):
                    lock = self._lock_of_with_item(info, item.context_expr)
                    if lock is not None:
                        found.append(Acquisition(
                            lock=lock, node=node, body=node.body, order=order,
                        ))
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None or not dotted.endswith(".acquire"):
                    continue
                lock = self._resolve_lock(info, dotted[: -len(".acquire")])
                if lock is not None:
                    found.append(Acquisition(
                        lock=lock, node=node, body=None, order=0,
                    ))
        self._acq_memo[info.qname] = found
        return found

    def _lock_of_with_item(
        self, info: FunctionInfo, expr: ast.AST
    ) -> LockId | None:
        if isinstance(expr, ast.Call):
            dotted = dotted_name(expr.func)
            if dotted is None:
                return None
            head, _, tail = dotted.rpartition(".")
            if tail in RW_GUARDS and head:
                return self._resolve_lock(info, head)
            return None
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        return self._resolve_lock(info, dotted)

    def closure_acquires(self, qname: str) -> dict[LockId, tuple[str, ...]]:
        """Locks ``qname`` may take, mapped to a witness callee chain."""
        return self._closure(qname, set())

    def _closure(
        self, qname: str, stack: set[str]
    ) -> dict[LockId, tuple[str, ...]]:
        if qname in self._closure_memo:
            return self._closure_memo[qname]
        if qname in stack:
            return {}
        info = self._index.function_at(qname)
        if info is None:
            return {}
        stack.add(qname)
        acquired: dict[LockId, tuple[str, ...]] = {}
        for acq in self.acquisitions(info):
            acquired.setdefault(acq.lock, (qname,))
        for site in info.calls:
            if site.target is None:
                continue
            for lock, chain in self._closure(site.target, stack).items():
                acquired.setdefault(lock, (qname,) + chain)
        stack.discard(qname)
        self._closure_memo[qname] = acquired
        return acquired

    # ------------------------------------------------------------ the graph

    def order_edges(self) -> dict[LockId, dict[LockId, Witness]]:
        """Directed ``A -> B`` edges: B is acquired while A is held."""
        edges: dict[LockId, dict[LockId, Witness]] = {}

        def add(a: LockId, b: LockId, witness: Witness) -> None:
            if a != b:
                edges.setdefault(a, {}).setdefault(b, witness)

        for info in self._index.functions.values():
            acqs = self.acquisitions(info)
            if not acqs:
                continue
            for acq in acqs:
                region = self._region_ids(info, acq)
                for other in acqs:
                    if other is acq:
                        continue
                    nested = id(other.node) in region or (
                        other.node is acq.node and other.order > acq.order
                    )
                    if nested:
                        add(acq.lock, other.lock, Witness(
                            module=info.module,
                            line=getattr(other.node, "lineno", 1),
                            detail=info.qname,
                        ))
                for site in info.calls:
                    if site.target is None or id(site.node) not in region:
                        continue
                    transitive = self._closure(site.target, {info.qname})
                    for lock, chain in transitive.items():
                        add(acq.lock, lock, Witness(
                            module=info.module,
                            line=getattr(site.node, "lineno", 1),
                            detail=" -> ".join((info.qname,) + chain),
                        ))
        return edges

    def _region_ids(self, info: FunctionInfo, acq: Acquisition) -> set[int]:
        """ids() of every AST node guarded by the acquisition."""
        if acq.body is not None:
            return {
                id(node)
                for stmt in acq.body
                for node in ast.walk(stmt)
            }
        start = getattr(acq.node, "lineno", 0)
        return {
            id(node)
            for node in ast.walk(info.node)
            if getattr(node, "lineno", 0) > start
        }


def find_cycles(
    edges: dict[LockId, dict[LockId, Witness]]
) -> Iterator[list[LockId]]:
    """Every elementary cycle in the order graph, deduplicated by
    rotation (each cycle is reported starting from its smallest node)."""
    seen: set[tuple[LockId, ...]] = set()
    for start in sorted(edges, key=lambda lock: lock.label):
        path: list[LockId] = []
        on_path: set[LockId] = set()

        def visit(node: LockId) -> Iterator[list[LockId]]:
            if node in on_path:
                cycle = path[path.index(node):]
                smallest = min(range(len(cycle)), key=lambda i: cycle[i].label)
                canon = tuple(cycle[smallest:] + cycle[:smallest])
                if canon not in seen:
                    seen.add(canon)
                    yield list(canon)
                return
            path.append(node)
            on_path.add(node)
            for nxt in sorted(edges.get(node, {}), key=lambda lock: lock.label):
                yield from visit(nxt)
            path.pop()
            on_path.discard(node)

        yield from visit(start)
