"""``repro.lint`` — project-specific static analysis.

Generic linters cannot know that ``TemporalStore`` mutations belong under
the write side of a readers-writer lock, that a WAL append must dominate
the in-memory apply, or that MVBT ``te`` fields may only be set by the
dead/split helpers.  This package encodes those invariants as AST rules
(``RL001`` …) and runs them via ``repro-tx lint`` — mechanically, at
review time, instead of in a crash test.

See ``docs/lint_rules.md`` for the rule table and suppression syntax.
"""

from .baseline import Baseline
from .checker import LintError, ModuleInfo, collect_modules, main, run_lint
from .rules import ALL_RULES, RULES_BY_ID
from .rules.base import Finding, Rule

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "LintError",
    "ModuleInfo",
    "RULES_BY_ID",
    "Rule",
    "collect_modules",
    "main",
    "run_lint",
]
