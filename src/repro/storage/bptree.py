"""A classic in-memory B+ tree.

This is the substrate for the RDBMS baseline (the paper compares against the
MySQL memory engine, whose in-memory tables are indexed with B+ trees) and for
the start/end-time secondary indexes.  Keys are arbitrary comparable values
(typically tuples of dictionary ids); duplicate keys are supported by keeping
a list of values per key.
"""

from __future__ import annotations

import bisect
import sys
from typing import Any, Callable, Iterator

__all__ = ["BPlusTree"]


class _Node:
    __slots__ = ("keys", "children", "values", "next")

    def __init__(self, is_leaf: bool) -> None:
        self.keys: list[Any] = []
        # Internal nodes use ``children``; leaves use ``values`` and ``next``.
        self.children: list[_Node] | None = None if is_leaf else []
        self.values: list[list[Any]] | None = [] if is_leaf else None
        self.next: _Node | None = None

    @property
    def is_leaf(self) -> bool:
        return self.values is not None


class BPlusTree:
    """An order-``branching`` B+ tree mapping keys to lists of values."""

    def __init__(self, branching: int = 32) -> None:
        if branching < 4:
            raise ValueError("branching factor must be at least 4")
        self._branching = branching
        self._root: _Node = _Node(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ---------------------------------------------------------------- insert

    def insert(self, key: Any, value: Any) -> None:
        """Insert ``value`` under ``key`` (duplicates allowed)."""
        split = self._insert(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def _insert(self, node: _Node, key: Any, value: Any):
        if node.is_leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx].append(value)
            else:
                node.keys.insert(idx, key)
                node.values.insert(idx, [value])
            if len(node.keys) > self._branching:
                return self._split_leaf(node)
            return None
        idx = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, value)
        if split is not None:
            sep, right = split
            node.keys.insert(idx, sep)
            node.children.insert(idx + 1, right)
            if len(node.children) > self._branching:
                return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # ---------------------------------------------------------------- delete

    def remove(self, key: Any, value: Any) -> bool:
        """Remove one occurrence of ``value`` under ``key``.

        Returns ``True`` when found.  Underflowed leaves are tolerated (this
        keeps the structure simple; lookups stay correct and the tree is
        rebuilt on bulk reloads), matching how the memory-engine baseline is
        exercised by the paper's update workload.
        """
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return False
        try:
            leaf.values[idx].remove(value)
        except ValueError:
            return False
        if not leaf.values[idx]:
            leaf.keys.pop(idx)
            leaf.values.pop(idx)
        self._size -= 1
        return True

    # ---------------------------------------------------------------- search

    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def get(self, key: Any) -> list[Any]:
        """All values stored under exactly ``key``."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.values[idx])
        return []

    def range(self, low: Any, high: Any) -> Iterator[tuple[Any, Any]]:
        """Iterate ``(key, value)`` pairs with ``low <= key < high``."""
        leaf = self._find_leaf(low)
        while leaf is not None:
            for idx, key in enumerate(leaf.keys):
                if key < low:
                    continue
                if key >= high:
                    return
                for value in leaf.values[idx]:
                    yield key, value
            leaf = leaf.next

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Iterate all ``(key, value)`` pairs in key order."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            for key, values in zip(node.keys, node.values):
                for value in values:
                    yield key, value
            node = node.next

    # ----------------------------------------------------------------- audit

    def check_invariants(self) -> None:
        """Assert structural invariants (used by property tests)."""
        keys = [k for k, _ in self.items()]
        assert keys == sorted(keys), "leaf chain out of order"
        self._check_node(self._root, None, None, is_root=True)

    def _check_node(self, node: _Node, low, high, is_root: bool = False):
        for key in node.keys:
            assert low is None or key >= low
            assert high is None or key < high
        if node.is_leaf:
            return
        assert len(node.children) == len(node.keys) + 1
        if not is_root:
            assert len(node.children) >= 2
        bounds = [low, *node.keys, high]
        for child, (lo, hi) in zip(node.children, zip(bounds, bounds[1:])):
            self._check_node(child, lo, hi)

    def sizeof(self) -> int:
        """Approximate in-memory footprint in bytes (for Figure 8)."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += sys.getsizeof(node.keys)
            total += sum(sys.getsizeof(k) for k in node.keys)
            if node.is_leaf:
                total += sys.getsizeof(node.values)
                total += sum(sys.getsizeof(v) for v in node.values)
                total += sum(8 * len(v) for v in node.values)
            else:
                total += sys.getsizeof(node.children)
                stack.extend(node.children)
        return total
