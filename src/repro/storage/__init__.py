"""Storage substrates: classic B+ tree used by baselines and time indexes."""

from .bptree import BPlusTree

__all__ = ["BPlusTree"]
