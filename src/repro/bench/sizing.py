"""Size accounting for Figure 8.

All sizes in this repository are **storage-layout bytes**: the bytes a C- or
Java-style implementation of the same layout would allocate (fixed-width
fields, string heaps, measured compressed buffers), *not* Python heap bytes —
Python object headers are an order of magnitude of constant overhead that
would drown every ratio the paper reports.  Each structure documents its
formula next to its ``sizeof``; the compressed MVBT leaf size is the *actual
encoded byte buffer*, so the Figure 8(a) compression ratio is measured, not
modelled.
"""

from __future__ import annotations

from ..engine.engine import RDFTX
from ..model.graph import TemporalGraph
from ..mvbt.tree import MVBT


def standard_mvbt_size(engine: RDFTX) -> int:
    """Total size of the engine's four MVBT indices, uncompressed."""
    total = 0
    for tree in engine.indexes.values():
        total += _tree_size(tree, compressed=False)
    return total


def compressed_mvbt_size(engine: RDFTX) -> int:
    """Total size of the engine's four MVBT indices as stored (compressed
    leaves keep their encoded buffers)."""
    return sum(tree.sizeof() for tree in engine.indexes.values())


def _tree_size(tree: MVBT, compressed: bool) -> int:
    from ..mvbt.compression import NODE_HEADER_BYTES, STANDARD_ENTRY_BYTES

    total = 0
    for node in tree.iter_nodes():
        if compressed:
            total += node.sizeof()
        else:
            total += NODE_HEADER_BYTES + STANDARD_ENTRY_BYTES * node.count
    return total


def system_sizes(graph: TemporalGraph, engine: RDFTX, baselines) -> dict:
    """Figure 8(b): index size per system, plus the raw data size."""
    sizes = {"Raw Data": graph.raw_size()}
    for baseline in baselines:
        sizes[baseline.name] = baseline.sizeof()
    sizes["Compressed MVBT"] = engine.sizeof()
    return sizes
