"""Experiment drivers: one function per table/figure of the paper (Sec 7).

Each driver builds its workload at the current ``REPRO_SCALE``, runs the
measurement, and returns structured rows; the benchmark targets under
``benchmarks/`` print them with :func:`repro.bench.harness.report`.  Queries
are pre-parsed before timing (prepared-statement style) so every system pays
the same front-end cost exactly once.
"""

from __future__ import annotations

import random
import time

from ..baselines import (
    NamedGraphBaseline,
    RDBMSBaseline,
    RDF3XBaseline,
    ReificationBaseline,
    VirtuosoBaseline,
)
from ..datasets import govtrack, wikipedia, yago
from ..datasets.queries import complex_queries, join_queries, selection_queries
from ..datasets.wikipedia import table1_statistics
from ..engine import RDFTX
from ..model.time import NOW
from ..mvbt.tree import MVBT, MVBTConfig, bulk_load
from ..optimizer import Optimizer, enumerate_orders, estimate_order_cost
from ..sparqlt.parser import parse
from . import sizing
from .harness import scaled, time_callable, time_queries

#: Baselines in Figure 9 legend order.
BASELINE_CLASSES = (
    RDF3XBaseline,
    NamedGraphBaseline,
    ReificationBaseline,
    VirtuosoBaseline,
    RDBMSBaseline,
)

#: The MVBT geometry used by benchmark engines.
BENCH_CONFIG = MVBTConfig(block_capacity=64, weak_min=12, epsilon=12)


def _wiki(n: int, seed: int = 1):
    return wikipedia.generate(n, seed=seed)


def _gov(n: int, seed: int = 1):
    return govtrack.generate(n, seed=seed, n_periods=max(n // 50, 60))


def _yago(n: int, seed: int = 1):
    return yago.generate(n, seed=seed)


def _engine(graph) -> RDFTX:
    return RDFTX.from_graph(graph, config=BENCH_CONFIG)


# ------------------------------------------------------------------ Table 1


def experiment_table1():
    """Table 1: average number of updates per property category."""
    dataset = _wiki(scaled(20000))
    stats = table1_statistics(dataset)
    targets = [
        ("Software", "release", 7.27),
        ("Player", "club", 5.85),
        ("Country", "gdp", 11.78),
        ("City", "population", 7.16),
    ]
    rows = []
    for category, prop, paper in targets:
        measured = stats.get((category, prop), 0.0)
        rows.append((category, prop, paper, round(measured, 2)))
    return rows


# -------------------------------------------------------------- Figure 3(b)


def experiment_fig3b():
    """Figure 3(b): time to delta-compress all MVBT leaf nodes vs N."""
    rows = []
    for base in (2000, 4000, 8000, 16000, 24000):
        n = scaled(base)
        graph = _wiki(n).graph
        engine = RDFTX.from_graph(graph, config=BENCH_CONFIG, compress=False)
        start = time.perf_counter()
        engine.compress()
        elapsed = time.perf_counter() - start
        rows.append((n, round(elapsed, 3)))
    return rows


# ---------------------------------------------------------------- Figure 8


def experiment_fig8a():
    """Figure 8(a): standard vs compressed MVBT index size (4 indices)."""
    rows = []
    for base in (2000, 4000, 8000, 16000, 24000):
        n = scaled(base)
        graph = _wiki(n).graph
        engine = _engine(graph)
        standard = sizing.standard_mvbt_size(engine)
        compressed = sizing.compressed_mvbt_size(engine)
        rows.append(
            (n, standard, compressed, round(compressed / standard, 3))
        )
    return rows


def experiment_fig8b():
    """Figure 8(b): index size across systems (dictionary included)."""
    n = scaled(16000)
    graph = _wiki(n).graph
    engine = _engine(graph)
    baselines = [cls.from_graph(graph) for cls in BASELINE_CLASSES]
    sizes = sizing.system_sizes(graph, engine, baselines)
    raw = sizes["Raw Data"]
    return [
        (name, size, round(size / raw, 2)) for name, size in sizes.items()
    ], n


# ---------------------------------------------------------------- Figure 9


def _systems_for(graph):
    systems = [("RDF-TX", _engine(graph))]
    for cls in BASELINE_CLASSES:
        systems.append((cls.name, cls.from_graph(graph)))
    return systems


def experiment_fig9_sweep(dataset: str, kind: str, repeats: int = 3,
                          profile_dir=None):
    """Figures 9(a)(b)(d)(e): selection/join sweeps on Wikipedia/GovTrack.

    Returns ``(header, rows)`` where each row is
    ``(N, time_per_system...)`` in milliseconds per query.

    With ``profile_dir`` (and ``REPRO_OBS`` on), RDF-TX's per-query
    operator profiles at each N are archived there as JSON, next to the
    printed tables.
    """
    from ..obs import metrics as _obs_metrics
    from .harness import archive_profiles

    maker = {"wikipedia": _wiki, "govtrack": _gov, "yago": _yago}[dataset]
    bases = (2000, 4000, 8000, 16000)
    rows = []
    header = None
    for base in bases:
        n = scaled(base)
        graph = maker(n).graph
        if kind == "selection":
            texts = selection_queries(graph, count=10)
        else:
            texts = join_queries(graph, count=10)
        queries = [parse(t) for t in texts]
        systems = _systems_for(graph)
        if header is None:
            header = ["N"] + [name for name, _ in systems]
        timings = [n]
        for _, system in systems:
            timings.append(round(time_queries(system, queries, repeats), 3))
        if profile_dir is not None and _obs_metrics.ENABLED:
            from pathlib import Path

            archive_profiles(
                systems[0][1], queries,
                Path(profile_dir) / f"fig9_{dataset}_{kind}_n{n}_profiles.json",
            )
        rows.append(tuple(timings))
    return header, rows


def experiment_fig9_complex(dataset: str, repeats: int = 3,
                            profile_dir=None):
    """Figures 9(c)(f): complex queries with 3-7 patterns at fixed N.

    With ``profile_dir`` (and ``REPRO_OBS`` on), RDF-TX's operator
    profiles — including estimate-vs-actual q-errors from the CMVSBT
    histogram — are archived there per pattern count.
    """
    from ..obs import metrics as _obs_metrics
    from .harness import archive_profiles

    maker = _wiki if dataset == "wikipedia" else _gov
    n = scaled(12000)
    graph = maker(n).graph
    workload = complex_queries(graph, seeds=5, max_patterns=7)
    optimizer = Optimizer(cm=8, lm=8, budget_fraction=0.5)
    systems = [
        ("RDF-TX", RDFTX.from_graph(graph, config=BENCH_CONFIG,
                                    optimizer=optimizer))
    ]
    for cls in BASELINE_CLASSES:
        systems.append((cls.name, cls.from_graph(graph)))
    header = ["patterns"] + [name for name, _ in systems]
    rows = []
    for size in sorted(workload):
        queries = [parse(t) for t in workload[size]]
        timings = [size]
        for _, system in systems:
            timings.append(round(time_queries(system, queries, repeats), 3))
        if profile_dir is not None and _obs_metrics.ENABLED:
            from pathlib import Path

            archive_profiles(
                systems[0][1], queries,
                Path(profile_dir)
                / f"fig9_{dataset}_complex_p{size}_profiles.json",
            )
        rows.append(tuple(timings))
    return header, rows, n


# --------------------------------------------------------------- Figure 10


def experiment_fig10a(repeats: int = 3):
    """Figure 10(a): best/worst plan vs the optimizer's plan, plus the time
    spent optimizing."""
    n = scaled(8000)
    graph = _wiki(n).graph
    optimizer = Optimizer(cm=8, lm=8, budget_fraction=0.5)
    engine = RDFTX.from_graph(graph, config=BENCH_CONFIG, optimizer=optimizer)
    workload = complex_queries(graph, seeds=5, max_patterns=7)
    rows = []
    for size in sorted(workload):
        best_ms = []
        worst_ms = []
        chosen_ms = []
        optimize_ms = []
        for text in workload[size]:
            query = parse(text)
            plan_graph, chosen = engine.compile(query)
            engine._plan_cache.clear()  # time a cold optimization
            start = time.perf_counter()
            engine.compile(query)
            optimize_ms.append((time.perf_counter() - start) * 1000)

            orders = list(
                enumerate_orders(plan_graph, optimizer.statistics)
            )
            # Cap enumeration like the paper caps Virtuoso's runaway case.
            if len(orders) > 120:
                rng = random.Random(size)
                orders = rng.sample(orders, 120)
                if chosen not in orders:
                    orders.append(chosen)
            times = {}
            for order in orders:
                key = tuple(order)
                times[key] = _run_order(engine, plan_graph, order, repeats)
            best_ms.append(min(times.values()))
            worst_ms.append(max(times.values()))
            chosen_ms.append(
                times.get(tuple(chosen))
                or _run_order(engine, plan_graph, chosen, repeats)
            )
        count = len(workload[size])
        rows.append(
            (
                size,
                round(sum(best_ms) / count, 3),
                round(sum(chosen_ms) / count, 3),
                round(sum(worst_ms) / count, 3),
                round(sum(optimize_ms) / count, 3),
            )
        )
    return rows, n


def _run_order(engine, plan_graph, order, repeats: int) -> float:
    from ..engine.executor import execute

    def run():
        execute(plan_graph, engine.indexes, engine.dictionary,
                engine.horizon, list(order))

    return time_callable(run, repeats=repeats, warmup=1) * 1000


def experiment_fig10b():
    """Figure 10(b): index construction time (4 MVBTs + compression)."""
    rows = []
    for base in (2000, 4000, 8000, 16000, 24000):
        n = scaled(base)
        graph = _wiki(n).graph

        def build():
            RDFTX.from_graph(graph, config=BENCH_CONFIG)

        rows.append((n, round(time_callable(build, repeats=1, warmup=0), 3)))
    return rows


def experiment_fig10c():
    """Figure 10(c): maintenance time, standard vs compressed MVBT.

    Replays an update stream (68% inserts / 32% deletes, the mix measured
    on the real edit history) against a standard and a compressed index.
    """
    n = scaled(16000)
    updates = max(n // 8, 400)
    graph = _wiki(n).graph
    records = [
        (triple.key("spo"), triple.period.start, triple.period.end)
        for triple in graph
    ]

    def build(compress: bool) -> MVBT:
        tree = MVBT(BENCH_CONFIG)
        bulk_load(tree, records)
        if compress:
            tree.compress()
        return tree

    def update_stream(tree: MVBT) -> float:
        rng = random.Random(99)
        time_cursor = tree.current_time + 1
        live: list = []
        start = time.perf_counter()
        done = 0
        serial = 0
        while done < updates:
            time_cursor += 1
            if live and rng.random() < 0.32:
                key = live.pop(rng.randrange(len(live)))
                tree.delete(key, time_cursor)
            else:
                key = (2_000_000 + serial, 1, serial)
                serial += 1
                tree.insert(key, time_cursor)
                live.append(key)
            done += 1
        return (time.perf_counter() - start) / updates * 1000

    standard = update_stream(build(compress=False))
    compressed = update_stream(build(compress=True))
    return [
        ("Standard MVBT", updates, round(standard, 4)),
        ("Compressed MVBT", updates, round(compressed, 4)),
        ("Overhead", "-", f"{(compressed / standard - 1) * 100:+.1f}%"),
    ], n


# ------------------------------------------------------------- Section 7.4


def experiment_sec74():
    """Section 7.4: temporal histogram size and optimization time."""
    n = scaled(16000)
    dataset = _wiki(n)
    optimizer = Optimizer(cm=8, lm=8, budget_fraction=0.10)
    engine = RDFTX.from_graph(dataset.graph, config=BENCH_CONFIG,
                              optimizer=optimizer)
    histogram = optimizer.statistics.histogram
    raw = dataset.graph.raw_size()
    workload = complex_queries(dataset.graph, seeds=5, max_patterns=7)
    optimize_times = []
    for size in sorted(workload):
        for text in workload[size]:
            query = parse(text)
            start = time.perf_counter()
            engine.compile(query)
            optimize_times.append((time.perf_counter() - start) * 1000)
    return {
        "n": n,
        "raw_bytes": raw,
        "histogram_bytes": histogram.core_sizeof(),
        "fraction": histogram.core_sizeof() / raw,
        "cm": histogram.cm,
        "optimize_ms_min": round(min(optimize_times), 3),
        "optimize_ms_max": round(max(optimize_times), 3),
    }
