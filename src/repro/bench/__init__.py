"""Benchmark harness: scaling, timing, sizing, per-figure experiments."""

from .harness import (
    format_table,
    mb,
    report,
    scale,
    scaled,
    time_callable,
    time_queries,
)

__all__ = [
    "format_table",
    "mb",
    "report",
    "scale",
    "scaled",
    "time_callable",
    "time_queries",
]
