"""Benchmark harness: scaling, timing, sizing, per-figure experiments."""

from .harness import (
    archive_profiles,
    format_table,
    mb,
    report,
    scale,
    scaled,
    time_callable,
    time_queries,
)

__all__ = [
    "archive_profiles",
    "format_table",
    "mb",
    "report",
    "scale",
    "scaled",
    "time_callable",
    "time_queries",
]
