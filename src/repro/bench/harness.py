"""Benchmark harness utilities: scaling, timing, table rendering.

Every experiment reads ``REPRO_SCALE`` (default 1.0) and multiplies its
dataset sizes by it; tables print the actual N next to the paper's N so the
scale substitution stays visible.  Results are printed and also appended to
``bench_results/`` so ``pytest benchmarks/ --benchmark-only`` leaves an
artifact trail.

Observability: timings run with whatever ``REPRO_OBS`` says — the default
(on) keeps the global metrics registry live, and ``REPRO_OBS=0`` turns
every probe into a no-op for instrumentation-free numbers.  Pass
``profile_out`` to :func:`time_queries` / :func:`time_callable` to archive
JSON operator profiles (or a registry-delta snapshot) next to the result
tables.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Iterable, Sequence

#: Where experiment tables are written.
RESULTS_DIR = Path(__file__).resolve().parents[3] / "bench_results"


def scale() -> float:
    """The global dataset scale factor (env ``REPRO_SCALE``)."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def scaled(base: int, minimum: int = 200) -> int:
    """``base`` triples scaled by :func:`scale`, floored at ``minimum``."""
    return max(int(base * scale()), minimum)


def time_callable(fn: Callable[[], object], repeats: int = 3,
                  warmup: int = 1,
                  profile_out: str | Path | None = None) -> float:
    """Average wall-clock seconds of ``fn`` over ``repeats`` warm runs.

    Matches the paper's methodology: warm-cache, averaged over several runs
    (the paper uses 5; the default here is 3 to keep the full matrix fast —
    raise via the ``repeats`` argument).

    With ``profile_out``, the delta of the global metrics registry across
    the timed runs is written there as JSON alongside the timing (empty
    when ``REPRO_OBS=0``).
    """
    for _ in range(warmup):
        fn()
    before = None
    if profile_out is not None:
        from ..obs import REGISTRY

        before = REGISTRY.snapshot()
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    elapsed = (time.perf_counter() - start) / repeats
    if profile_out is not None:
        from ..obs import REGISTRY

        payload = {
            "seconds_per_run": elapsed,
            "repeats": repeats,
            "registry_delta": _snapshot_delta(before, REGISTRY.snapshot()),
        }
        Path(profile_out).write_text(json.dumps(payload, indent=2))
    return elapsed


def time_queries(system, queries: Sequence[str], repeats: int = 3,
                 profile_out: str | Path | None = None) -> float:
    """Average per-query time (ms) of a query set on one system.

    With ``profile_out``, each query is re-run once with profiling after
    the timed loop and the operator trees are archived there as JSON (see
    :func:`archive_profiles`); systems without profiling support — the
    baselines — write an empty list.
    """
    def run_all():
        for text in queries:
            system.query(text)

    total = time_callable(run_all, repeats=repeats)
    if profile_out is not None:
        archive_profiles(system, queries, profile_out)
    return total / max(len(queries), 1) * 1000.0


def archive_profiles(system, queries: Sequence[str],
                     path: str | Path) -> int:
    """Run each query once with profiling on and dump the operator trees.

    Returns the number of profiles written.  Systems whose ``query`` does
    not accept a ``profile`` keyword (the baselines) and runs under
    ``REPRO_OBS=0`` produce an empty archive.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    profiles: list = []
    for text in queries:
        try:
            result = system.query(text, profile=True)
        except TypeError:
            break
        prof = getattr(result, "profile", None)
        profiles.append(prof.to_dict() if prof is not None else None)
    path.write_text(json.dumps(profiles, indent=2))
    return len([p for p in profiles if p is not None])


def _snapshot_delta(before: dict, after: dict) -> dict:
    """Recursive numeric difference of two registry snapshots."""
    out: dict = {}
    for key, value in after.items():
        prev = before.get(key, 0 if not isinstance(value, dict) else {})
        if isinstance(value, dict):
            inner = _snapshot_delta(prev, value)
            if inner:
                out[key] = inner
        else:
            delta = value - prev
            if delta:
                out[key] = delta
    return out


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence]
) -> str:
    """Render an aligned text table with a title rule."""
    body = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in body))
        if body
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell >= 100:
            return f"{cell:.0f}"
        if cell >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def report(name: str, table: str) -> None:
    """Print a result table and persist it under ``bench_results/``."""
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(table + "\n")


def mb(size_bytes: int) -> float:
    """Bytes to megabytes, as Figure 8 reports sizes."""
    return size_bytes / (1024 * 1024)
