"""Benchmark harness utilities: scaling, timing, table rendering.

Every experiment reads ``REPRO_SCALE`` (default 1.0) and multiplies its
dataset sizes by it; tables print the actual N next to the paper's N so the
scale substitution stays visible.  Results are printed and also appended to
``bench_results/`` so ``pytest benchmarks/ --benchmark-only`` leaves an
artifact trail.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Callable, Iterable, Sequence

#: Where experiment tables are written.
RESULTS_DIR = Path(__file__).resolve().parents[3] / "bench_results"


def scale() -> float:
    """The global dataset scale factor (env ``REPRO_SCALE``)."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def scaled(base: int, minimum: int = 200) -> int:
    """``base`` triples scaled by :func:`scale`, floored at ``minimum``."""
    return max(int(base * scale()), minimum)


def time_callable(fn: Callable[[], object], repeats: int = 3,
                  warmup: int = 1) -> float:
    """Average wall-clock seconds of ``fn`` over ``repeats`` warm runs.

    Matches the paper's methodology: warm-cache, averaged over several runs
    (the paper uses 5; the default here is 3 to keep the full matrix fast —
    raise via the ``repeats`` argument).
    """
    for _ in range(warmup):
        fn()
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def time_queries(system, queries: Sequence[str], repeats: int = 3) -> float:
    """Average per-query time (ms) of a query set on one system."""
    def run_all():
        for text in queries:
            system.query(text)

    total = time_callable(run_all, repeats=repeats)
    return total / max(len(queries), 1) * 1000.0


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence]
) -> str:
    """Render an aligned text table with a title rule."""
    body = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in body))
        if body
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell >= 100:
            return f"{cell:.0f}"
        if cell >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def report(name: str, table: str) -> None:
    """Print a result table and persist it under ``bench_results/``."""
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(table + "\n")


def mb(size_bytes: int) -> float:
    """Bytes to megabytes, as Figure 8 reports sizes."""
    return size_bytes / (1024 * 1024)
