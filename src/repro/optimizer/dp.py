"""Bottom-up dynamic-programming join enumeration (Section 6.1).

Following Moerkotte & Neumann's DP over connected subgraphs, the optimizer
builds optimal plans for growing pattern subsets: a plan for a subset is the
cheapest join of two disjoint, connected, mutually-connected sub-subsets.
Cross products are avoided whenever the plan graph is connected; for
disconnected queries the components are combined afterwards, cheapest first.

The result is linearized to the pattern order the executor folds with hash
joins; because our joins pipeline the probe side, a left-deep fold of the DP
order preserves the intended intermediate sizes.
"""

from __future__ import annotations

from itertools import combinations

from ..engine.plan import PlanGraph
from .cost import SubPlan, join_cardinality, join_step_cost, pattern_estimates
from .statistics import Statistics


class Optimizer:
    """The RDF-TX query optimizer.

    Attach one to an engine (``RDFTX(optimizer=Optimizer())``) or pass it to
    :meth:`RDFTX.from_graph`; the engine calls :meth:`rebuild` at load time
    and :meth:`choose_order` for every multi-pattern query.
    """

    def __init__(self, cm: int = 8, lm: int = 8,
                 budget_fraction: float = 0.10) -> None:
        self.cm = cm
        self.lm = lm
        self.budget_fraction = budget_fraction
        self.statistics: Statistics | None = None

    def rebuild(self, graph) -> None:
        """(Re)build the temporal histogram from the loaded graph."""
        self.statistics = Statistics.build(
            graph, cm=self.cm, lm=self.lm,
            budget_fraction=self.budget_fraction,
        )

    def choose_order(self, graph: PlanGraph) -> list[int]:
        """The cost-optimal join order for a plan graph."""
        if self.statistics is None:
            from ..engine.executor import default_order

            return default_order(graph)
        self.statistics.clear_cache()
        order, _ = optimize(graph, self.statistics)
        return order


def optimize(
    graph: PlanGraph, stats: Statistics
) -> tuple[list[int], float]:
    """DP join ordering; returns (pattern order, estimated plan cost)."""
    n = len(graph.patterns)
    estimates = pattern_estimates(graph, stats)
    if n == 1:
        return [0], estimates[0]

    neighbor_masks = [0] * n
    for i, j in graph.edges:
        neighbor_masks[i] |= 1 << j
        neighbor_masks[j] |= 1 << i

    best: dict[int, tuple[SubPlan, list[int]]] = {}
    for i in range(n):
        sub = SubPlan(frozenset([i]), max(estimates[i], 0.01), estimates[i])
        best[1 << i] = (sub, [i])

    for size in range(2, n + 1):
        for subset in _connected_subsets(n, size, neighbor_masks):
            entry = None
            for left_mask in _proper_submasks(subset):
                right_mask = subset ^ left_mask
                if left_mask > right_mask:
                    continue  # symmetric
                left = best.get(left_mask)
                right = best.get(right_mask)
                if left is None or right is None:
                    continue
                if not _masks_connected(left_mask, right_mask, neighbor_masks):
                    continue
                candidate = _join(graph, stats, left, right)
                if entry is None or candidate[0].cost < entry[0].cost:
                    entry = candidate
            if entry is not None:
                best[subset] = entry

    full = (1 << n) - 1
    found = best.get(full)
    if found is None:
        # Disconnected plan graph: combine the components, cheapest first.
        found = _combine_components(graph, stats, best, n, neighbor_masks)
    sub, order = found
    return order, sub.cost


def enumerate_orders(graph: PlanGraph, stats: Statistics):
    """Yield (order, estimated cost) for every left-deep connected order.

    Used by the Figure 10(a) experiment, which compares the optimizer's
    choice against the true best and worst plans.
    """
    n = len(graph.patterns)
    pattern_estimates(graph, stats)

    def extend(order, remaining):
        if not remaining:
            yield list(order)
            return
        pool = [
            i for i in remaining if graph.connected(set(order), i)
        ] or sorted(remaining)
        for i in pool:
            order.append(i)
            yield from extend(order, remaining - {i})
            order.pop()

    yield from extend([], set(range(n)))


def estimate_order_cost(
    graph: PlanGraph, stats: Statistics, order: list[int]
) -> float:
    """Cost-model estimate of one left-deep order."""
    estimates = pattern_estimates(graph, stats)
    acc = SubPlan(frozenset([order[0]]), max(estimates[order[0]], 0.01),
                  estimates[order[0]])
    total = acc.cost
    for index in order[1:]:
        nxt = SubPlan(frozenset([index]), max(estimates[index], 0.01),
                      estimates[index])
        acc, _ = _join(graph, stats, (acc, []), (nxt, []))
        total = acc.cost
    return total


def _join(graph, stats, left_entry, right_entry):
    left, left_order = left_entry
    right, right_order = right_entry
    output = join_cardinality(graph, stats, left, right)
    cost = (
        left.cost
        + right.cost
        + join_step_cost(left, right, output)
    )
    sub = SubPlan(left.patterns | right.patterns, max(output, 0.01), cost)
    # Linearize: the smaller side first seeds the hash table.
    if left.cardinality <= right.cardinality:
        order = left_order + right_order
    else:
        order = right_order + left_order
    return sub, order


def _connected_subsets(n: int, size: int, neighbor_masks: list[int]):
    for combo in combinations(range(n), size):
        mask = 0
        for i in combo:
            mask |= 1 << i
        if _is_connected(mask, neighbor_masks):
            yield mask


def _is_connected(mask: int, neighbor_masks: list[int]) -> bool:
    start = mask & -mask
    seen = start
    frontier = start
    while frontier:
        node = frontier & -frontier
        frontier ^= node
        index = node.bit_length() - 1
        grow = neighbor_masks[index] & mask & ~seen
        seen |= grow
        frontier |= grow
    return seen == mask


def _masks_connected(a: int, b: int, neighbor_masks: list[int]) -> bool:
    for i in range(len(neighbor_masks)):
        if a & (1 << i) and neighbor_masks[i] & b:
            return True
    return False


def _proper_submasks(mask: int):
    sub = (mask - 1) & mask
    while sub:
        yield sub
        sub = (sub - 1) & mask


def _combine_components(graph, stats, best, n, neighbor_masks):
    remaining = set(range(n))
    components = []
    while remaining:
        seed = remaining.pop()
        mask = 1 << seed
        grown = True
        while grown:
            grown = False
            for i in list(remaining):
                if neighbor_masks[i] & mask:
                    mask |= 1 << i
                    remaining.discard(i)
                    grown = True
        components.append(best[mask] if mask in best else best[1 << seed])
    components.sort(key=lambda entry: entry[0].cardinality)
    acc = components[0]
    for nxt in components[1:]:
        acc = _join(graph, stats, acc, nxt)
    return acc
