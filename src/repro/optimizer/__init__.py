"""Query optimizer: temporal statistics, cost model, DP join ordering."""

from .cost import (
    SubPlan,
    join_cardinality,
    join_step_cost,
    order_prefix_estimates,
    pattern_estimates,
)
from .dp import Optimizer, enumerate_orders, estimate_order_cost, optimize
from .statistics import Statistics

__all__ = [
    "Optimizer",
    "Statistics",
    "SubPlan",
    "enumerate_orders",
    "estimate_order_cost",
    "join_cardinality",
    "join_step_cost",
    "optimize",
    "order_prefix_estimates",
    "pattern_estimates",
]
