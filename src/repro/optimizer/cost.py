"""Cost model for SPARQLT join ordering (Section 6.1).

The cost of a plan is driven by the cardinalities of its patterns and
intermediate results: every join step costs its two input cardinalities (the
scan / probe work) plus the output cardinality (materialization), and the
output feeds the next step.  Join output cardinality uses:

* the characteristic-set star formula when the join is a subject star over
  constant predicates (highly accurate, Section 6.1),
* the classic independence fallback ``|A| * |B| / max(|A|, |B|)`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.plan import PlanGraph
from ..sparqlt.ast import TermConst, Var
from .statistics import Statistics


@dataclass(frozen=True)
class SubPlan:
    """An optimizer state: a set of joined patterns with estimates."""

    patterns: frozenset
    cardinality: float
    cost: float


def pattern_estimates(graph: PlanGraph, stats: Statistics) -> list[float]:
    """Estimate (and annotate) the cardinality of each pattern."""
    estimates = []
    for plan in graph.patterns:
        estimate = stats.pattern_cardinality(plan)
        plan.estimate = estimate
        estimates.append(estimate)
    return estimates


def join_cardinality(
    graph: PlanGraph,
    stats: Statistics,
    left: SubPlan,
    right: SubPlan,
) -> float:
    """Estimated output cardinality of joining two subplans."""
    combined = left.patterns | right.patterns
    star = _subject_star(graph, stats, combined)
    if star is not None:
        return star
    independent = left.cardinality * right.cardinality
    damping = max(left.cardinality, right.cardinality, 1.0)
    return max(independent / damping, 0.01)


def _subject_star(
    graph: PlanGraph, stats: Statistics, patterns: frozenset
) -> float | None:
    """The characteristic-set estimate when ``patterns`` form a star:
    a shared variable subject and constant predicates."""
    subjects = set()
    predicate_ids = []
    windows = []
    for index in patterns:
        plan = graph.patterns[index]
        pattern = plan.pattern
        if not isinstance(pattern.subject, Var):
            return None
        if not isinstance(pattern.predicate, TermConst):
            return None
        subjects.add(pattern.subject.name)
        pid = stats.dictionary.lookup(pattern.predicate.value)
        if pid is None:
            return 0.0
        predicate_ids.append(pid)
        windows.append(plan.time_range)
    if len(subjects) != 1:
        return None
    t1 = max(w.start for w in windows)
    t2 = min(w.end for w in windows)
    if t1 >= t2:
        return 0.0
    return stats.star_join_cardinality(predicate_ids, t1, t2)


def join_step_cost(left: SubPlan, right: SubPlan, output: float) -> float:
    """Cost of one hash-join step: read both inputs, write the output."""
    return left.cardinality + right.cardinality + output


def order_prefix_estimates(
    graph: PlanGraph, stats: Statistics, order: list[int]
) -> dict[frozenset, float]:
    """Estimated cardinality of every left-deep prefix of ``order``.

    Keyed by the frozenset of joined pattern indices so the executor's
    profiler can look up the expected output of each join step (including
    the synchronized-join case, which consumes two patterns at once).
    """
    estimates = pattern_estimates(graph, stats)
    out: dict[frozenset, float] = {}
    acc: SubPlan | None = None
    for index in order:
        nxt = SubPlan(
            frozenset([index]), max(estimates[index], 0.01), estimates[index]
        )
        if acc is None:
            acc = nxt
        else:
            output = join_cardinality(graph, stats, acc, nxt)
            acc = SubPlan(
                acc.patterns | nxt.patterns, max(output, 0.01), acc.cost
            )
        out[acc.patterns] = acc.cardinality
    return out
