"""Temporal statistics provider for the optimizer (Section 6).

Wraps the temporal histogram and exposes cardinality estimates for single
SPARQLT patterns and star joins, with the per-optimization statistics cache
described at the end of Section 6.3.
"""

from __future__ import annotations

from ..model.graph import TemporalGraph
from ..mvsbt.histogram import TemporalHistogram
from ..sparqlt.ast import TermConst, Var
from ..engine.patterns import PatternPlan


class Statistics:
    """Cardinality estimation backed by the temporal histogram."""

    def __init__(self, histogram: TemporalHistogram, graph: TemporalGraph) -> None:
        self.histogram = histogram
        self.dictionary = graph.dictionary
        self._cache: dict = {}

    @classmethod
    def build(
        cls, graph: TemporalGraph, cm: int = 8, lm: int = 8,
        budget_fraction: float = 0.10,
    ) -> "Statistics":
        histogram = TemporalHistogram(cm=cm, lm=lm,
                                      budget_fraction=budget_fraction)
        histogram.build(graph)
        return cls(histogram, graph)

    @classmethod
    def from_histogram(
        cls, histogram: TemporalHistogram, dictionary
    ) -> "Statistics":
        """Attach an already-built histogram (snapshot restore path)."""
        stats = cls.__new__(cls)
        stats.histogram = histogram
        stats.dictionary = dictionary
        stats._cache = {}
        return stats

    def clear_cache(self) -> None:
        self._cache = {}

    def _cached(self, key, compute):
        found = self._cache.get(key)
        if found is None:
            found = compute()
            self._cache[key] = found
        return found

    # ----------------------------------------------------- pattern estimate

    def pattern_cardinality(self, plan: PatternPlan) -> float:
        """Estimated matches of a single pattern inside its time window."""
        pattern = plan.pattern
        t1, t2 = plan.time_range.start, plan.time_range.end
        sid = self._term_id(pattern.subject)
        pid = self._term_id(pattern.predicate)
        oid = self._term_id(pattern.object)
        key = ("pat", sid, pid, oid, t1, t2)
        return self._cached(
            key, lambda: self._pattern_cardinality(sid, pid, oid, t1, t2)
        )

    def _term_id(self, term) -> int | None:
        if isinstance(term, Var):
            return None
        found = self.dictionary.lookup(term.value)
        return -1 if found is None else found

    def _pattern_cardinality(self, sid, pid, oid, t1, t2) -> float:
        h = self.histogram
        if sid == -1 or pid == -1 or oid == -1:
            return 0.0
        if sid is not None:
            charset = h.charsets.of_subject.get(sid)
            if charset is None:
                return 0.0
            subjects = max(h.subjects_alive(charset, t1, t2), 1.0)
            if pid is not None:
                per_subject = h.occurrences(charset, pid, t1, t2) / subjects
                if oid is not None:
                    distinct = max(h.distinct_objects_of.get(pid, 1), 1)
                    return max(per_subject / distinct, 0.01)
                return max(per_subject, 0.01)
            # S or SO / ST pattern: all predicates of the charset.
            total = sum(
                h.occurrences(charset, p, t1, t2)
                for p in h.charsets.sets[charset]
            )
            per_subject = total / subjects
            if oid is not None:
                freq = h.object_frequency.get(oid, 1)
                return max(
                    per_subject * freq / max(h.total_triples, 1), 0.01
                )
            return max(per_subject, 0.01)
        if pid is not None:
            occurrences = h.predicate_occurrences(pid, t1, t2)
            if oid is not None:
                distinct = max(h.distinct_objects_of.get(pid, 1), 1)
                return max(occurrences / distinct, 0.01)
            return max(occurrences, 0.01)
        alive = h.triples_alive(t1, t2)
        if oid is not None:
            freq = h.object_frequency.get(oid, 1)
            return max(alive * freq / max(h.total_triples, 1), 0.01)
        return max(alive, 0.01)

    # -------------------------------------------------------- star estimate

    def star_join_cardinality(
        self, predicate_ids: list[int], t1: int, t2: int
    ) -> float:
        """Characteristic-set estimate for a subject star join.

        Section 6.1's formula, summed over every characteristic set
        containing all the star's predicates::

            sum_C  |C| * prod_i  occ(C, p_i) / |C|
        """
        key = ("star", tuple(sorted(predicate_ids)), t1, t2)
        return self._cached(
            key, lambda: self._star_join(predicate_ids, t1, t2)
        )

    def _star_join(self, predicate_ids, t1, t2) -> float:
        h = self.histogram
        wanted = set(predicate_ids)
        candidates = None
        for pid in wanted:
            having = set(h.charsets.with_predicate.get(pid, ()))
            candidates = having if candidates is None else candidates & having
        if not candidates:
            return 0.0
        # The CMVSBT point estimates are the expensive primitive; cache them
        # per (charset, predicate, window) so the DP's many overlapping
        # subsets share them (the Section 6.3 statistics cache).
        subjects_of = lambda cs: self._cached(
            ("subj", cs, t1, t2), lambda: h.subjects_alive(cs, t1, t2)
        )
        occurrences_of = lambda cs, pid: self._cached(
            ("occ", cs, pid, t1, t2),
            lambda: h.occurrences(cs, pid, t1, t2),
        )
        total = 0.0
        for charset in candidates:
            subjects = subjects_of(charset)
            if subjects <= 0:
                continue
            estimate = subjects
            for pid in predicate_ids:
                estimate *= occurrences_of(charset, pid) / subjects
            total += estimate
        return total
