"""Query plans (Section 5.1).

A compiled SPARQLT query is a *plan graph*: one node per interval-based query
pattern, with an edge wherever two patterns share a variable (joins).  The
optimizer reorders the joins; the executor folds the ordered patterns with
hash joins and then applies residual filters and the projection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from ..sparqlt.ast import Expr, Query
from .patterns import PatternPlan


@dataclass
class PlanGraph:
    """The join graph over translated patterns."""

    query: Query
    patterns: list[PatternPlan]
    filters: list[Expr] = field(default_factory=list)
    #: pairs of pattern indices sharing at least one variable.
    edges: list[tuple[int, int]] = field(default_factory=list)
    #: shared variable names per edge, parallel to ``edges``.
    edge_vars: list[set[str]] = field(default_factory=list)

    @classmethod
    def build(
        cls, query: Query, patterns: list[PatternPlan]
    ) -> "PlanGraph":
        graph = cls(query=query, patterns=patterns, filters=query.filters)
        variables = [p.pattern.variables() for p in patterns]
        for i, j in combinations(range(len(patterns)), 2):
            shared = variables[i] & variables[j]
            if shared:
                graph.edges.append((i, j))
                graph.edge_vars.append(shared)
        return graph

    def neighbors(self, index: int) -> set[int]:
        out = set()
        for i, j in self.edges:
            if i == index:
                out.add(j)
            elif j == index:
                out.add(i)
        return out

    def connected(self, group: set[int], candidate: int) -> bool:
        """Whether joining ``candidate`` into ``group`` avoids a cross
        product."""
        if not group:
            return True
        return bool(self.neighbors(candidate) & group)

    def describe(self, order: list[int] | None = None) -> str:
        """Human-readable plan summary (used by ``RDFTX.explain``)."""
        order = order if order is not None else list(range(len(self.patterns)))
        lines = ["Plan:"]
        for rank, index in enumerate(order):
            plan = self.patterns[index]
            est = (
                f" est={plan.estimate:.0f}" if plan.estimate is not None else ""
            )
            lines.append(
                f"  {rank + 1}. scan {plan.index_order.upper()} "
                f"{plan.pattern} type={plan.pattern_type or 'full'}"
                f" time=[{plan.time_range.start},{plan.time_range.end})"
                f"{est}"
            )
        if self.filters:
            lines.append(f"  filters: {len(self.filters)}")
        return "\n".join(lines)
