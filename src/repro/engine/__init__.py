"""RDF-TX query engine: pattern translation, plans, operators, execution."""

from .engine import QueryResult, RDFTX
from .executor import default_order, execute
from .patterns import (
    INDEX_ORDERS,
    PatternPlan,
    UnknownTermError,
    decode_key_to_spo,
    translate_pattern,
)
from .plan import PlanGraph

__all__ = [
    "INDEX_ORDERS",
    "PatternPlan",
    "PlanGraph",
    "QueryResult",
    "RDFTX",
    "UnknownTermError",
    "decode_key_to_spo",
    "default_order",
    "execute",
    "translate_pattern",
]
