"""Plan execution: ordered scans, joins, filters, projection (Section 5).

When a :class:`~repro.obs.profile.ProfileNode` is passed to
:func:`execute`, every operator (scan, hash join, synchronized join, cross
product, filter) is timed and its row counts recorded into a left-deep
profile tree; index-level scan counters (MVBT leaves visited, entries
examined/pruned, compressed pages decoded) are attached to each scan node.
Profiling is opt-in per query and adds no per-row work to the default
path.
"""

from __future__ import annotations

import time
from typing import Callable

from ..model.dictionary import Dictionary
from ..mvbt.tree import MVBT
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..obs.profile import ProfileNode
from ..sparqlt.ast import Expr, expr_variables
from .operators import (
    Row,
    apply_filters,
    hash_join_rows,
    index_scan,
    nested_loop_product,
    project,
    synchronized_join_applicable,
    synchronized_join_rows,
)
from .parallel import note_prefetch, parallel_scan_pieces, scan_pool
from .plan import PlanGraph

#: Index name -> MVBT mapping held by the engine.
IndexSet = dict

#: Scan counters surfaced per profile node, as (label, counter) pairs.
_SCAN_COUNTERS = (
    ("leaves", _metrics.counter("mvbt.scan.leaves_visited")),
    ("entries", _metrics.counter("mvbt.scan.entries_examined")),
    ("pruned", _metrics.counter("mvbt.scan.entries_pruned")),
    ("decoded", _metrics.counter("mvbt.compression.leaves_decoded")),
)


def _scan_counter_values() -> list[int]:
    return [counter.value for _, counter in _SCAN_COUNTERS]


def _scan_counter_delta(before: list[int]) -> dict:
    out: dict[str, int] = {}
    for (label, counter), prev in zip(_SCAN_COUNTERS, before):
        delta = counter.value - prev
        if delta:
            out[label] = delta
    return out


def default_order(graph: PlanGraph) -> list[int]:
    """Heuristic join order used when the optimizer is disabled.

    Starts from the most selective pattern (most constant positions, then
    narrowest time window) and repeatedly appends the most selective pattern
    connected to the group, avoiding cross products when possible.
    """

    def selectivity(index: int) -> tuple:
        plan = graph.patterns[index]
        return (-len(plan.pattern_type), plan.time_range.length())

    remaining = set(range(len(graph.patterns)))
    order: list[int] = []
    while remaining:
        connected = [i for i in remaining if graph.connected(set(order), i)]
        pool = connected or sorted(remaining)
        best = min(pool, key=selectivity)
        order.append(best)
        remaining.discard(best)
    return order


def _scan_detail(plan) -> str:
    return f"{plan.index_order.upper()} {plan.pattern}"


def _scan_rows(tree: MVBT, plan) -> list[Row]:
    """Materialize one pattern scan — the unit of pool work in parallel
    mode.  The span records on the worker thread, parented to the
    submitting request's trace (see :func:`repro.obs.trace.submit`)."""
    with _trace.span("scan.pattern", index=plan.index_order):
        return list(index_scan(tree, plan))


def execute(
    graph: PlanGraph,
    indexes: IndexSet,
    dictionary: Dictionary,
    horizon: int,
    order: list[int] | None = None,
    profile: ProfileNode | None = None,
    step_estimates: dict[frozenset, float] | None = None,
    parallel: bool = False,
) -> list[Row]:
    """Run the plan and return projected result rows.

    Filters are pushed to the earliest point where their variables are all
    bound; the remaining conjuncts run before projection.

    ``profile`` (optional) receives the executed operator tree as a child
    node; ``step_estimates`` maps frozensets of joined pattern indices to
    the optimizer's estimated output cardinality so join nodes carry
    estimates too (see :func:`repro.optimizer.cost.order_prefix_estimates`).

    ``parallel`` dispatches the plan's independent pattern scans on the
    shared scan pool (:mod:`repro.engine.parallel`) — the results are
    consumed in plan order, so output is identical to serial execution.
    Ignored while profiling, where per-operator timings must reflect the
    caller thread's own work.
    """
    if order is None:
        order = default_order(graph)
    profiling = profile is not None
    # Whether this execution runs inside a live trace: serial scans are
    # materialized under a span only then, so the default path keeps its
    # lazy scan->join pipelining.
    tracing = _trace.active()
    est_map = step_estimates or {}
    joined: set[int] = set()
    current: ProfileNode | None = None
    perf = time.perf_counter
    prefetched: dict[int, object] = {}

    def finish(result_rows: list[Row]) -> list[Row]:
        # An early exit (empty intermediate result) can leave scans
        # pending; queued ones are dropped, running ones finish harmlessly
        # (scans are read-only).
        for future in prefetched.values():
            future.cancel()
        if profiling and current is not None:
            profile.children.append(current)
        return result_rows

    def filter_step(rows, pending, bound):
        nonlocal current
        if not profiling:
            return _apply_ready_filters(rows, pending, bound, dictionary,
                                        horizon)
        ready = [c for c, vars_ in pending if vars_ <= bound]
        if not ready:
            return rows, pending
        start = perf()
        filtered, rest = _apply_ready_filters(
            rows, pending, bound, dictionary, horizon
        )
        current = ProfileNode(
            op="filter",
            detail=f"{len(ready)} conjunct(s)",
            actual_rows=len(filtered),
            time_ms=(perf() - start) * 1000.0,
            children=[current] if current is not None else [],
        )
        return filtered, rest

    conjuncts = graph.query.filter_conjuncts()
    pending = [(c, expr_variables(c)) for c in conjuncts]

    rows: list[Row] | None = None
    bound: set[str] = set()
    # Section 5.2.2: when the first join's inputs both sweep a large
    # portion of their index, use the cache-optimized synchronized join
    # instead of materializing a hash table.
    if len(order) >= 2:
        first, second = graph.patterns[order[0]], graph.patterns[order[1]]
        shared = first.pattern.variables() & second.pattern.variables()
        if synchronized_join_applicable(first, second, shared):
            start = perf() if profiling else 0.0
            with _trace.span("join.sync"):
                rows = list(
                    synchronized_join_rows(
                        indexes[first.index_order], first,
                        indexes[second.index_order], second,
                    )
                )
            joined = {order[0], order[1]}
            if profiling:
                current = ProfileNode(
                    op="sync join",
                    detail="on " + ", ".join(f"?{v}" for v in sorted(shared)),
                    est_rows=est_map.get(frozenset(joined)),
                    actual_rows=len(rows),
                    time_ms=(perf() - start) * 1000.0,
                    children=[
                        ProfileNode(op="scan", detail=_scan_detail(first),
                                    est_rows=first.estimate,
                                    extra={"fused": "sync"}),
                        ProfileNode(op="scan", detail=_scan_detail(second),
                                    est_rows=second.estimate,
                                    extra={"fused": "sync"}),
                    ],
                )
            bound = first.pattern.variables() | second.pattern.variables()
            order = order[2:]
            rows, pending = filter_step(rows, pending, bound)
            if not rows:
                return finish([])
    # Parallel mode: with several scans left, prefetch them all on the
    # pool and consume in plan order; with a single scan left, fan its
    # work out per leaf instead (pattern-level parallelism has nothing to
    # overlap).  Workers never submit to the pool themselves, so a
    # bounded pool cannot deadlock.
    leaf_parallel = False
    if parallel and not profiling:
        if len(order) > 1:
            pool = scan_pool()
            for index in order:
                plan = graph.patterns[index]
                prefetched[index] = _trace.submit(
                    pool, _scan_rows, indexes[plan.index_order], plan
                )
            note_prefetch(len(prefetched))
        else:
            leaf_parallel = True
    for index in order:
        plan = graph.patterns[index]
        tree: MVBT = indexes[plan.index_order]
        if index in prefetched:
            scanned = prefetched.pop(index).result()
        elif leaf_parallel:
            # The span wraps the per-leaf fan-out too, so "scan.leaf"
            # worker spans nest under this pattern's scan span.
            with _trace.span("scan.pattern", index=plan.index_order):
                scanned = index_scan(
                    tree,
                    plan,
                    pieces=parallel_scan_pieces(
                        tree,
                        plan.key_low,
                        plan.key_high,
                        plan.time_range.start,
                        plan.time_range.end,
                    ),
                )
                if tracing:
                    scanned = list(scanned)
        else:
            scanned = index_scan(tree, plan)
        if tracing and not isinstance(scanned, list):
            # Prefetched scans recorded their span on the worker; lazy
            # serial scans are materialized here so their span covers
            # the actual scan work rather than a closed generator.
            with _trace.span("scan.pattern", index=plan.index_order):
                scanned = list(scanned)
        pattern_vars = plan.pattern.variables()
        scan_node: ProfileNode | None = None
        if profiling:
            counters_before = _scan_counter_values()
            start = perf()
            scanned = list(scanned)
            scan_node = ProfileNode(
                op="scan",
                detail=_scan_detail(plan),
                est_rows=plan.estimate,
                actual_rows=len(scanned),
                time_ms=(perf() - start) * 1000.0,
                extra=_scan_counter_delta(counters_before),
            )
        if rows is None:
            rows = list(scanned)
            if profiling:
                current = scan_node
        else:
            shared = bound & pattern_vars
            start = perf() if profiling else 0.0
            if shared:
                with _trace.span("join.hash"):
                    rows = list(hash_join_rows(rows, scanned, shared))
                op = "hash join"
                detail = "on " + ", ".join(f"?{v}" for v in sorted(shared))
            else:
                with _trace.span("join.cross"):
                    rows = list(nested_loop_product(rows, scanned))
                op = "cross product"
                detail = ""
            if profiling:
                current = ProfileNode(
                    op=op,
                    detail=detail,
                    est_rows=est_map.get(frozenset(joined | {index})),
                    actual_rows=len(rows),
                    time_ms=(perf() - start) * 1000.0,
                    children=[current, scan_node],
                )
        joined.add(index)
        bound |= pattern_vars
        rows, pending = filter_step(rows, pending, bound)
        if not rows:
            return finish([])
    if pending:
        # Filters over unbound variables: evaluate anyway so the error
        # surfaces (unbound-variable filters are user mistakes).
        start = perf() if profiling else 0.0
        rows = list(
            apply_filters(rows, [c for c, _ in pending], dictionary, horizon)
        )
        if profiling:
            current = ProfileNode(
                op="filter",
                detail=f"{len(pending)} unbound conjunct(s)",
                actual_rows=len(rows),
                time_ms=(perf() - start) * 1000.0,
                children=[current] if current is not None else [],
            )
    return finish(rows)


def _apply_ready_filters(
    rows: list[Row],
    pending: list[tuple[Expr, set[str]]],
    bound: set[str],
    dictionary: Dictionary,
    horizon: int,
) -> tuple[list[Row], list[tuple[Expr, set[str]]]]:
    ready = [c for c, vars_ in pending if vars_ <= bound]
    if not ready:
        return rows, pending
    rest = [(c, v) for c, v in pending if not (v <= bound)]
    filtered = list(apply_filters(rows, ready, dictionary, horizon))
    return filtered, rest

def execute_group(
    group,
    indexes: IndexSet,
    dictionary: Dictionary,
    horizon: int,
    choose_order: "Callable | None" = None,
    profile: ProfileNode | None = None,
    parallel: bool = False,
) -> list[Row]:
    """Evaluate a :class:`~repro.sparqlt.ast.GroupGraphPattern`.

    Standard SPARQL algebra over the conjunctive core: the base patterns
    are planned and joined as usual, UNION blocks evaluate each branch and
    concatenate, OPTIONAL blocks left-outer-join, and the group's filters
    run over the combined rows (restrictions on temporal variables are also
    pushed into the base scans as windows).

    ``profile`` covers the conjunctive core only: the base-pattern plan is
    profiled as in :func:`execute`; UNION/OPTIONAL sub-groups are not
    decomposed.
    """
    from ..sparqlt.ast import Query as _Query
    from ..engine.patterns import UnknownTermError, translate_pattern
    from .operators import left_outer_join_rows

    conjuncts = group.filter_conjuncts()
    rows: list[Row] | None = None
    bound: set[str] = set()

    if group.patterns:
        stub = _Query(select=[], patterns=group.patterns, filters=[])
        try:
            plans = [
                translate_pattern(p, dictionary, conjuncts)
                for p in group.patterns
            ]
        except UnknownTermError:
            return []
        plan_graph = PlanGraph.build(stub, plans)
        order = (
            choose_order(plan_graph) if choose_order is not None
            else default_order(plan_graph)
        )
        rows = execute(plan_graph, indexes, dictionary, horizon, order,
                       profile=profile, parallel=parallel)
        bound = {
            name for pattern in group.patterns
            for name in pattern.variables()
        }
        if not rows:
            return []

    for branches in group.unions:
        union_rows: list[Row] = []
        union_vars: set[str] = set()
        for branch in branches:
            union_rows.extend(
                execute_group(branch, indexes, dictionary, horizon,
                              choose_order, parallel=parallel)
            )
            union_vars |= branch.variables()
        if rows is None:
            rows = union_rows
        else:
            shared = bound & union_vars
            if shared:
                rows = list(hash_join_rows(rows, union_rows, shared))
            else:
                rows = list(nested_loop_product(rows, union_rows))
        bound |= union_vars
        if not rows:
            return []

    for optional in group.optionals:
        optional_rows = execute_group(
            optional, indexes, dictionary, horizon, choose_order,
            parallel=parallel
        )
        shared = bound & optional.variables()
        rows = list(left_outer_join_rows(rows or [], optional_rows, shared))
        bound |= optional.variables()

    if rows is None:
        return []
    if conjuncts:
        # Filters referencing optional variables must tolerate unbound
        # rows: a filter that cannot be evaluated rejects the row, per
        # SPARQL's error semantics.
        from ..sparqlt.errors import EvaluationError

        surviving = []
        for row in rows:
            try:
                kept = list(
                    apply_filters([row], conjuncts, dictionary, horizon)
                )
            except EvaluationError:
                continue
            surviving.extend(kept)
        rows = surviving
    return rows
