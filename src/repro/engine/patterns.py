"""Translating SPARQLT graph patterns to MVBT query regions (Section 5.1).

A point-based quad pattern ``{s p o t}`` becomes an interval-based *query
region*: a key range on one of the four MVBT key orders plus a time range.
The key order is chosen from the constant positions so the constants form a
key prefix:

====================  ===========  =================
constant positions    index order   key prefix
====================  ===========  =================
(none), S, SP, SPO    SPO           (), (s), (s,p), (s,p,o)
SO                    SOP           (s, o)
P, PO                 POS           (p), (p, o)
O                     OPS           (o)
====================  ===========  =================

The time range comes from a constant temporal element or from the pushdown
windows of FILTER restrictions on the pattern's temporal variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..model.dictionary import Dictionary
from ..model.time import MIN_TIME, NOW, Period
from ..mvbt.entry import Key
from ..mvbt.scan import MAX_KEY, prefix_range
from ..sparqlt.ast import Expr, QuadPattern, TermConst, TimeConst, Var
from ..sparqlt.functions import pushdown_window, restriction_target

#: Index orders: name -> permutation mapping key slots to s/p/o letters.
INDEX_ORDERS = {
    "spo": ("s", "p", "o"),
    "sop": ("s", "o", "p"),
    "pos": ("p", "o", "s"),
    "ops": ("o", "p", "s"),
}

_ORDER_FOR_CONSTANTS = {
    frozenset(): "spo",
    frozenset("s"): "spo",
    frozenset("sp"): "spo",
    frozenset("spo"): "spo",
    frozenset("so"): "sop",
    frozenset("p"): "pos",
    frozenset("po"): "pos",
    frozenset("o"): "ops",
}


class UnknownTermError(LookupError):
    """A constant term does not exist in the dictionary.

    The pattern can never match; callers treat the plan as empty.
    """


@dataclass
class PatternPlan:
    """An executable translation of one quad pattern."""

    pattern: QuadPattern
    index_order: str
    key_low: Key
    key_high: Key
    time_range: Period
    #: var name -> slot index (0-2) in the chosen key order, for binding.
    var_slots: dict[str, int] = field(default_factory=dict)
    #: slot pairs that must be equal (repeated variable in the pattern).
    equal_slots: list[tuple[int, int]] = field(default_factory=list)
    #: name of the temporal variable, if the time position is a variable.
    time_var: str | None = None
    #: optimizer-estimated cardinality, filled in by the optimizer.
    estimate: float | None = None

    @property
    def pattern_type(self) -> str:
        return self.pattern.constant_positions()


def translate_pattern(
    pattern: QuadPattern,
    dictionary: Dictionary,
    filter_conjuncts: list[Expr] = (),
) -> PatternPlan:
    """Build the query region for one pattern (paper Section 5.1).

    Raises :class:`UnknownTermError` when a constant term is not in the
    dictionary (the pattern has no matches).
    """
    terms = {"s": pattern.subject, "p": pattern.predicate, "o": pattern.object}
    constants = frozenset(
        letter for letter, term in terms.items() if isinstance(term, TermConst)
    )
    order_name = _ORDER_FOR_CONSTANTS[constants]
    order = INDEX_ORDERS[order_name]

    prefix: list[int] = []
    for letter in order:
        term = terms[letter]
        if not isinstance(term, TermConst):
            break
        term_id = dictionary.lookup(term.value)
        if term_id is None:
            raise UnknownTermError(term.value)
        prefix.append(term_id)
    key_low, key_high = prefix_range(tuple(prefix))

    var_slots: dict[str, int] = {}
    equal_slots: list[tuple[int, int]] = []
    for slot, letter in enumerate(order):
        term = terms[letter]
        if isinstance(term, Var):
            if term.name in var_slots:
                equal_slots.append((var_slots[term.name], slot))
            else:
                var_slots[term.name] = slot

    time_var: str | None = None
    if isinstance(pattern.time, TimeConst):
        time_range = Period.point(pattern.time.chronon)
    else:
        time_var = pattern.time.name
        time_range = _window_from_filters(time_var, filter_conjuncts)

    return PatternPlan(
        pattern=pattern,
        index_order=order_name,
        key_low=key_low,
        key_high=key_high,
        time_range=time_range,
        var_slots=var_slots,
        equal_slots=equal_slots,
        time_var=time_var,
    )


def _window_from_filters(
    time_var: str, conjuncts: list[Expr]
) -> Period:
    """Intersect the pushdown windows of all restrictions on ``time_var``."""
    window = Period.always()
    for conjunct in conjuncts:
        if restriction_target(conjunct) != time_var:
            continue
        narrowed = pushdown_window(conjunct)
        if narrowed is None:
            continue
        common = window.intersect(narrowed)
        if common is None:
            # Contradictory restrictions: empty scan region.  Encode as the
            # smallest possible window starting at the narrowed edge; the
            # executor short-circuits on zero-width ranges.
            return Period.point(MIN_TIME)
        window = common
    return window


def decode_key_to_spo(
    key: Key, order_name: str
) -> tuple[int, int, int]:
    """Map an index key back to (subject, predicate, object) ids."""
    order = INDEX_ORDERS[order_name]
    mapping = dict(zip(order, key))
    return mapping["s"], mapping["p"], mapping["o"]
