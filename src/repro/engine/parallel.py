"""Parallel pattern scanning (the ``REPRO_PARALLEL`` switch).

Two levels of read-path parallelism over a shared
:class:`~concurrent.futures.ThreadPoolExecutor`:

* **pattern-level** — the independent :class:`~repro.engine.patterns.PatternPlan`
  index scans of a multi-pattern query are dispatched concurrently and
  consumed in plan order (:func:`repro.engine.executor.execute`), and
* **leaf-level** — a single scan's work is released per MVBT leaf
  (:func:`parallel_scan_pieces` over
  :func:`~repro.mvbt.scan.scan_leaf_pieces`), keeping the pool busy when
  one pattern dominates.

Scans are read-only over MVBT nodes that are immutable after load (the
serving layer's RW lock additionally excludes writers), so no
synchronization beyond the pool itself is needed.  Results are assembled
in deterministic visit order, so parallel mode is **byte-identical** to
serial mode — verified by ``tests/test_parallel_scan.py``.

The switch defaults **off** (serial) for determinism of timings and
profiles: enable per process with ``REPRO_PARALLEL=1`` (an integer > 1
also sizes the pool), per engine via ``RDFTX(parallel=True)``, or per
invocation with the CLI ``--parallel`` flags.  The scan loops are pure
Python, so today's wins are bounded by the GIL — the structure is what
the switch buys (compressed-leaf decoding and any future C-accelerated
decode parallelize for free).

Per-leaf tasks hand workers the *leaf* — for compressed leaves that is
the packed byte buffer, scanned in place by
:func:`~repro.mvbt.compression.scan_packed` without materializing an
entry list, so a task shares nothing mutable with its siblings and the
scan allocates only for surviving pieces.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

from ..mvbt.scan import publish_scan_counters, query_leaves, scan_leaf_pieces
from ..mvbt.tree import MVBT
from ..obs import metrics as _metrics
from ..obs import trace as _trace

__all__ = [
    "parallel_default",
    "parallel_scan_pieces",
    "scan_pool",
]

_PARALLEL_SCANS = _metrics.counter("engine.parallel.scans")
_LEAF_TASKS = _metrics.counter("engine.parallel.leaf_tasks")
_PREFETCHES = _metrics.counter("engine.parallel.prefetches")

#: Leaf counts at or below this run serially — a task per leaf costs more
#: than decoding one small page.
_MIN_PARALLEL_LEAVES = 2

_DEFAULT_MAX_WORKERS = 8


def _parse_switch(raw: str | None) -> tuple[bool, int | None]:
    """``REPRO_PARALLEL`` -> (enabled, worker count override)."""
    if raw is None:
        return False, None
    text = raw.strip().lower()
    if text in ("", "0", "false", "off", "no"):
        return False, None
    try:
        workers = int(text)
    except ValueError:
        return True, None
    return workers > 0, workers if workers > 1 else None


_ENV_ENABLED, _ENV_WORKERS = _parse_switch(os.environ.get("REPRO_PARALLEL"))


def parallel_default() -> bool:
    """Whether ``REPRO_PARALLEL`` turned parallel scanning on at import."""
    return _ENV_ENABLED


def _worker_count() -> int:
    if _ENV_WORKERS is not None:
        return _ENV_WORKERS
    return min(_DEFAULT_MAX_WORKERS, os.cpu_count() or _DEFAULT_MAX_WORKERS)


_pool: ThreadPoolExecutor | None = None
_pool_lock = threading.Lock()


def scan_pool() -> ThreadPoolExecutor:
    """The process-wide scan pool, created on first use."""
    global _pool
    if _pool is None:
        with _pool_lock:
            if _pool is None:
                _pool = ThreadPoolExecutor(
                    max_workers=_worker_count(),
                    thread_name_prefix="repro-scan",
                )
    return _pool


def note_prefetch(count: int = 1) -> None:
    """Record pattern scans dispatched ahead of consumption."""
    if _metrics.ENABLED:
        _PREFETCHES.inc(count)


def _traced_leaf_scan(leaf, key_low, key_high, t1: int, t2: int) -> list:
    """One per-leaf scan task, recorded as a child span of the request."""
    with _trace.span("scan.leaf", uid=leaf.uid):
        return scan_leaf_pieces(leaf, key_low, key_high, t1, t2)


def parallel_scan_pieces(
    tree: MVBT, key_low, key_high, t1: int, t2: int
) -> list:
    """:func:`~repro.mvbt.scan.scan_pieces`, fanned out one task per leaf.

    The leaf list is computed up front (the tree walk is cheap relative
    to entry decoding); per-leaf outputs are concatenated in visit order,
    so the result is element-for-element identical to the serial scan.
    """
    leaves = query_leaves(tree, key_low, key_high, t1, t2)
    out: list = []
    if len(leaves) <= _MIN_PARALLEL_LEAVES:
        for leaf in leaves:
            scan_leaf_pieces(leaf, key_low, key_high, t1, t2, out)
    else:
        pool = scan_pool()
        if _trace.active():
            # Carry the request's trace context onto the pool so each
            # per-leaf task records a child span under the right parent.
            futures = [
                _trace.submit(pool, _traced_leaf_scan, leaf, key_low,
                              key_high, t1, t2)
                for leaf in leaves
            ]
        else:
            futures = [
                pool.submit(scan_leaf_pieces, leaf, key_low, key_high,
                            t1, t2)
                for leaf in leaves
            ]
        for future in futures:
            out.extend(future.result())
        if _metrics.ENABLED:
            _PARALLEL_SCANS.inc()
            _LEAF_TASKS.inc(len(leaves))
    if _metrics.ENABLED:
        # The per-leaf count sum is O(leaves) bookkeeping — only worth
        # computing when the counters will actually record it (the serial
        # scan guards identically).
        publish_scan_counters(
            len(leaves), sum(leaf.count for leaf in leaves), len(out)
        )
    return out
