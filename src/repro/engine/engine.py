"""The RDF-TX engine facade.

:class:`RDFTX` owns the four compressed MVBT indices (SPO, SOP, POS, OPS),
the dictionary, and the optional query optimizer; it compiles and runs
SPARQLT queries end to end (Figure 1's Historical Query Compiler + Execution
Engine).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from ..cache import LRUCache
from ..model.graph import TemporalGraph
from ..model.time import MIN_TIME, NOW, PeriodSet, format_chronon
from ..mvbt.tree import MVBT, MVBTConfig, bulk_load
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..obs import workload as _workload
from ..obs.profile import ProfileNode, QueryProfile
from ..sparqlt.ast import Query
from ..sparqlt.parser import parse
from .executor import default_order, execute
from .parallel import parallel_default
from .patterns import INDEX_ORDERS, PatternPlan, UnknownTermError, translate_pattern
from .plan import PlanGraph

_QUERIES = _metrics.counter("engine.queries")
_QUERY_TIMER = _metrics.REGISTRY.timer_stat("engine.query")
_PLAN_HITS = _metrics.counter("engine.plan_cache.hits")
_PLAN_MISSES = _metrics.counter("engine.plan_cache.misses")
_PLAN_EVICTIONS = _metrics.counter("engine.plan_cache.evictions")

#: Compiled plans kept per engine (prepared statements).
PLAN_CACHE_CAPACITY = 512


@dataclass
class QueryResult:
    """Rows produced by a SPARQLT query.

    Term bindings are strings; temporal bindings are
    :class:`~repro.model.time.PeriodSet` rendered in the paper's compact
    ``[ts ... te]`` format by :meth:`to_table`.
    """

    variables: list[str]
    rows: list[dict] = field(default_factory=list)
    #: operator-level profile, set by ``RDFTX.query(..., profile=True)``
    #: (None when profiling was off or disabled via ``REPRO_OBS=0``).
    profile: QueryProfile | None = None
    #: revision epoch the query ran against, set by the serving layer
    #: (:meth:`repro.service.store.TemporalStore.query`); None for direct
    #: engine queries.
    revision: int | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def column(self, name: str) -> list:
        """All values of one variable."""
        return [row[name] for row in self.rows]

    def to_table(self) -> str:
        """Render the result as an aligned text table."""
        if not self.variables:
            # ASK-style / empty projection: nothing to lay out, and the
            # widths computation below must not see zero columns.
            return f"({len(self.rows)} row(s), no variables)"
        header = [f"?{name}" for name in self.variables]
        body = [
            [_render(row.get(name)) for name in self.variables]
            for row in self.rows
        ]
        widths = []
        for i in range(len(header)):
            width = len(header[i])
            for row in body:
                if len(row[i]) > width:
                    width = len(row[i])
            widths.append(width)
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def _render(value) -> str:
    if isinstance(value, PeriodSet):
        return ", ".join(str(p) for p in value)
    if value is None:
        return "-"
    return str(value)


class RDFTX:
    """The RDF-TX temporal RDF engine.

    Usage::

        engine = RDFTX.from_graph(graph)
        result = engine.query(
            "SELECT ?budget {UC budget ?budget ?t . FILTER(YEAR(?t) = 2013)}"
        )
    """

    def __init__(
        self,
        config: MVBTConfig | None = None,
        optimizer=None,
        stats_refresh_threshold: int | None = 256,
        parallel: bool | None = None,
        stats_refresh_qerror: float | None = None,
    ) -> None:
        self.config = config or MVBTConfig(block_capacity=64, weak_min=12,
                                           epsilon=12)
        self.dictionary = None
        self.indexes: dict[str, MVBT] = {
            name: MVBT(self.config) for name in INDEX_ORDERS
        }
        self.optimizer = optimizer
        #: dispatch independent pattern scans on the shared scan pool
        #: (:mod:`repro.engine.parallel`); None inherits ``REPRO_PARALLEL``.
        self.parallel = parallel_default() if parallel is None else parallel
        #: compiled-plan cache (prepared statements).  Plans bake in
        #: dictionary ids (append-only, never reassigned) and the query
        #: text's own time windows — nothing data-dependent — so entries
        #: survive updates and are dropped only when the optimizer
        #: statistics are rebuilt (the join order could change) or a new
        #: graph is loaded.
        self._plan_cache: LRUCache = LRUCache(
            PLAN_CACHE_CAPACITY,
            hits=_PLAN_HITS,
            misses=_PLAN_MISSES,
            evictions=_PLAN_EVICTIONS,
        )
        #: the loaded graph, kept so statistics can be rebuilt after updates
        #: (and so updates stay visible to snapshots / ``repro-tx info``).
        self._graph: TemporalGraph | None = None
        #: updates applied since the optimizer statistics were last built.
        self._stats_dirty = 0
        #: auto-rebuild the statistics once this many updates accumulate
        #: (None disables the automatic refresh; see
        #: :meth:`refresh_statistics`).
        self.stats_refresh_threshold = stats_refresh_threshold
        #: estimate-drift monitor: samples per-pattern q-errors during
        #: normal execution and — when ``stats_refresh_qerror`` is set —
        #: triggers :meth:`refresh_statistics` on sustained drift even
        #: before the update-count threshold fires.
        self.drift = _workload.DriftMonitor(
            qerror_threshold=stats_refresh_qerror
        )
        #: lower bound on :attr:`horizon`.  A clustered deployment sets
        #: this on every shard so filters that resolve ``NOW`` (e.g.
        #: ``LENGTH`` over live periods) evaluate against the *cluster*
        #: horizon rather than each shard's locally-loaded maximum, which
        #: differs per shard under hash partitioning.
        self.horizon_floor = 0

    # ----------------------------------------------------------------- load

    @classmethod
    def from_graph(
        cls,
        graph: TemporalGraph,
        config: MVBTConfig | None = None,
        optimizer=None,
        compress: bool = True,
        stats_refresh_threshold: int | None = 256,
        stats_refresh_qerror: float | None = None,
    ) -> "RDFTX":
        """Build an engine over a temporal graph (bulk load + compression).

        Mirrors the paper's construction: standard MVBTs are built first and
        their leaves are then delta-compressed (Section 7.5).
        """
        engine = cls(config=config, optimizer=optimizer,
                     stats_refresh_threshold=stats_refresh_threshold,
                     stats_refresh_qerror=stats_refresh_qerror)
        engine.load(graph, compress=compress)
        return engine

    def load(self, graph: TemporalGraph, compress: bool = True) -> None:
        """Bulk load all four indices from ``graph``.

        The engine keeps a reference to ``graph`` and maintains it across
        :meth:`insert`/:meth:`delete`, so optimizer statistics can be
        rebuilt and snapshots stay faithful after live updates.
        """
        self.dictionary = graph.dictionary
        self._graph = graph
        self._stats_dirty = 0
        self._plan_cache.clear()
        for name in INDEX_ORDERS:
            records = [
                (triple.key(name), triple.period.start, triple.period.end)
                for triple in graph
            ]
            bulk_load(self.indexes[name], records)
        if compress:
            self.compress()
        if self.optimizer is not None:
            self.optimizer.rebuild(graph)

    def compress(self) -> None:
        """Delta-compress the leaf nodes of every index."""
        for tree in self.indexes.values():
            tree.compress()

    # -------------------------------------------------------------- updates

    def insert(self, subject: str, predicate: str, object: str,
               time: int) -> None:
        """Start a new fact at ``time`` (live until deleted)."""
        _check_update_time(time)
        ids = self._encode(subject, predicate, object)
        for name, tree in self.indexes.items():
            tree.insert(_reorder(ids, name), time)
        if self._graph is not None:
            self._graph.add(subject, predicate, object, time)
        self._note_update()

    def delete(self, subject: str, predicate: str, object: str,
               time: int) -> None:
        """End a live fact at ``time``."""
        _check_update_time(time)
        ids = self._encode(subject, predicate, object)
        for name, tree in self.indexes.items():
            tree.delete(_reorder(ids, name), time)
        if self._graph is not None:
            self._graph.end(subject, predicate, object, time)
        self._note_update()

    def _note_update(self) -> None:
        """Track an applied update.

        Compiled plans deliberately survive: dictionary ids are append-only
        (a plan's baked ids stay valid) and time windows come from the
        query text, so a cached plan re-executed after a write sees the new
        data through its scans.  Only the optimizer statistics degrade —
        they are rebuilt (dropping the plan cache, since the join order may
        change) once ``stats_refresh_threshold`` updates accumulate.
        """
        self._stats_dirty += 1

    @property
    def statistics_dirty(self) -> int:
        """Updates applied since the statistics were last (re)built."""
        return self._stats_dirty

    def refresh_statistics(self) -> bool:
        """Rebuild the optimizer statistics from the maintained graph.

        Returns ``True`` when a rebuild happened.  Called automatically at
        compile time once :attr:`stats_refresh_threshold` updates have
        accumulated; callers can also invoke it eagerly (e.g. after a bulk
        update burst, or from ``repro-tx serve`` checkpoints).
        """
        self._stats_dirty = 0
        self.drift.reset_window()
        if self.optimizer is None or self._graph is None:
            return False
        self.optimizer.rebuild(self._graph)
        self._plan_cache.clear()
        return True

    def _maybe_refresh_statistics(self) -> None:
        threshold = self.stats_refresh_threshold
        if (
            threshold is not None
            and self.optimizer is not None
            and self._stats_dirty >= threshold
        ):
            self.refresh_statistics()
        elif self.optimizer is not None and self.drift.refresh_due():
            # Sustained estimate drift: the statistics mispredict even
            # though few updates accumulated (skewed writes).  Rebuild
            # early; note_refresh records the trigger before the window
            # is cleared by refresh_statistics.
            self.drift.note_refresh()
            self.refresh_statistics()

    def _encode(self, subject: str, predicate: str, object: str):
        if self.dictionary is None:
            from ..model.dictionary import Dictionary

            self.dictionary = Dictionary()
        return {
            "s": self.dictionary.encode(subject),
            "p": self.dictionary.encode(predicate),
            "o": self.dictionary.encode(object),
        }

    # -------------------------------------------------------------- queries

    @property
    def horizon(self) -> int:
        """One past the largest concrete chronon loaded so far.

        Never below :attr:`horizon_floor`, so clustered shards agree on
        where ``NOW`` resolves regardless of which triples they hold.
        """
        local = max(tree.current_time for tree in self.indexes.values()) + 1
        return max(self.horizon_floor, local)

    def compile(self, text: str | Query) -> tuple[PlanGraph, list[int]]:
        """Parse, translate and order a query; returns (plan graph, order).

        Compiled plans are LRU-cached per query text, so repeated queries
        pay parsing and optimization once — prepared-statement behaviour.
        Entries survive updates (see :meth:`_note_update`) and are dropped
        when the statistics are rebuilt.  Pre-parsed :class:`Query` objects
        are not cached: an object-identity key can alias once the object
        is collected, handing a stranger's plan to a new query.
        """
        self._maybe_refresh_statistics()
        if isinstance(text, str):
            cached = self._plan_cache.get(text)
            if cached is not None:
                return cached
            return self._compile_parsed(parse(text), text)
        return self._compile_parsed(text, None)

    def _compile_parsed(
        self, query: Query, cache_key: str | None
    ) -> tuple[PlanGraph, list[int]]:
        """Translate and order an already-parsed query, caching by text."""
        with _trace.span("engine.compile"):
            conjuncts = query.filter_conjuncts()
            patterns = [
                translate_pattern(p, self.dictionary, conjuncts)
                for p in query.patterns
            ]
            graph = PlanGraph.build(query, patterns)
            if self.optimizer is not None and len(patterns) > 1:
                with _trace.span("optimizer.choose_order"):
                    order = self.optimizer.choose_order(graph)
            else:
                order = default_order(graph)
            if cache_key is not None:
                self._plan_cache.put(cache_key, (graph, order))
            return graph, order

    def query(self, text: str | Query, profile: bool = False) -> QueryResult:
        """Evaluate a SPARQLT query and return its result rows.

        With ``profile=True`` (and observability enabled, see
        ``REPRO_OBS``), the result carries a
        :class:`~repro.obs.profile.QueryProfile`: per-operator timings and
        row counts, index scan counters, and — when the optimizer is on —
        estimated vs. actual cardinalities with per-pattern q-errors.
        """
        from .operators import project

        self._maybe_refresh_statistics()
        plan: tuple[PlanGraph, list[int]] | None = None
        if isinstance(text, str):
            # A plan-cache hit skips the parse too: the compiled graph
            # carries its parsed query.
            plan = self._plan_cache.get(text)
            _trace.annotate_trace(plan_cache_hit=plan is not None)
            query = plan[0].query if plan is not None else parse(text)
        else:
            query = text
        want_profile = profile and _metrics.ENABLED
        # The drift monitor piggybacks on the profiling machinery for a
        # sampled fraction of ordinary queries: the profile is built only
        # to read est-vs-actual q-errors, then stripped from the result.
        drift_sample = (
            not want_profile
            and _metrics.ENABLED
            and self.optimizer is not None
            and self.drift.sample()
        )
        prof_root = (
            ProfileNode(op="execute")
            if want_profile or drift_sample
            else None
        )
        started = time.perf_counter()
        if _metrics.ENABLED:
            _QUERIES.inc()

        if not query.is_simple:
            # UNION / OPTIONAL groups take the algebraic path.
            from .executor import execute_group

            choose = (
                self.optimizer.choose_order
                if self.optimizer is not None
                else None
            )
            rows = execute_group(
                query.group, self.indexes, self.dictionary, self.horizon,
                choose, profile=prof_root, parallel=self.parallel,
            )
            projected = project(rows, query.select, self.dictionary)
            return self._finish_result(
                query, projected, prof_root, started,
                text=text if isinstance(text, str) else None,
                keep_profile=want_profile,
            )
        if plan is None:
            try:
                plan = self._compile_parsed(
                    query, text if isinstance(text, str) else None
                )
            except UnknownTermError:
                # A constant term missing from the dictionary: no pattern
                # can match, so there is nothing to execute (or profile
                # beyond an empty projection).
                return self._finish_result(
                    query, [], prof_root, started,
                    text=text if isinstance(text, str) else None,
                    keep_profile=want_profile,
                )
        graph, order = plan
        step_estimates = None
        if prof_root is not None:
            step_estimates = self._annotate_estimates(graph, order)
        with _trace.span("engine.execute", patterns=len(order)):
            rows = execute(
                graph, self.indexes, self.dictionary, self.horizon, order,
                profile=prof_root, step_estimates=step_estimates,
                parallel=self.parallel,
            )
            projected = project(rows, query.select, self.dictionary)
        return self._finish_result(
            query, projected, prof_root, started,
            text=text if isinstance(text, str) else None,
            keep_profile=want_profile,
        )

    def _annotate_estimates(
        self, graph: PlanGraph, order: list[int]
    ) -> dict | None:
        """Fill in pattern estimates (and per-prefix join estimates) for
        profiling, when the optimizer's statistics are available.

        ``choose_order`` only runs for multi-pattern queries, so
        single-pattern plans get their estimate filled in here.
        """
        stats = getattr(self.optimizer, "statistics", None)
        if stats is None:
            return None
        from ..optimizer.cost import order_prefix_estimates

        return order_prefix_estimates(graph, stats, order)

    def _finish_result(
        self,
        query: Query,
        projected: list[dict],
        prof_root: ProfileNode | None,
        started: float,
        text: str | None = None,
        keep_profile: bool = True,
    ) -> QueryResult:
        elapsed = time.perf_counter() - started
        if _metrics.ENABLED:
            _QUERY_TIMER.observe(elapsed)
        query_profile = None
        if prof_root is not None:
            root = ProfileNode(
                op="project",
                detail=", ".join(f"?{name}" for name in query.select),
                actual_rows=len(projected),
                children=prof_root.children,
            )
            query_profile = QueryProfile(
                root=root, total_ms=elapsed * 1000.0
            )
            # Every built profile feeds the drift monitor — explicit
            # profiled runs and sampled ordinary ones alike.
            self.drift.observe(query_profile)
        if _metrics.ENABLED:
            _workload.WORKLOAD.record_query(
                query, text, elapsed * 1000.0, rows=len(projected),
                cache_hit=False, trace_id=_trace.current_trace_id(),
            )
        return QueryResult(
            variables=list(query.select), rows=projected,
            profile=query_profile if keep_profile else None,
        )

    def explain(self, text: str | Query) -> str:
        """The chosen plan, as text."""
        graph, order = self.compile(text)
        return graph.describe(order)

    # --------------------------------------------------- convenience API

    def when(self, subject: str, predicate: str, object: str) -> PeriodSet:
        """The validity of one fact (Example 1's "when" query).

        This is the by-example access pattern of the paper's end-user
        interfaces [6, 15]: fill in an infobox row, get its history.
        """
        result = self.query(
            Query(
                select=["t"],
                patterns=[_quad(subject, predicate, object)],
            )
        )
        if not result:
            return PeriodSet()
        out = PeriodSet()
        for row in result:
            out = out.union(row["t"])
        return out

    def snapshot(self, subject: str, chronon: int) -> dict[str, list[str]]:
        """The subject's property values on one day (flash-back browsing)."""
        from ..sparqlt.ast import TermConst, TimeConst, Var

        pattern = QuadPatternFactory.snapshot(subject, chronon)
        result = self.query(Query(select=["p", "o"], patterns=[pattern]))
        out: dict[str, list[str]] = {}
        for row in result:
            out.setdefault(row["p"], []).append(row["o"])
        return out

    def history(self, subject: str,
                predicate: str | None = None) -> list[tuple]:
        """The full timeline of a subject: (predicate, object, periods)."""
        pattern = QuadPatternFactory.history(subject, predicate)
        select = ["p", "o", "t"] if predicate is None else ["o", "t"]
        result = self.query(Query(select=select, patterns=[pattern]))
        rows = []
        for row in result:
            rows.append(
                (
                    row.get("p", predicate),
                    row["o"],
                    row["t"],
                )
            )
        rows.sort(key=lambda r: (r[0], r[2].first()))
        return rows

    # ---------------------------------------------------------------- admin

    def sizeof(self) -> int:
        """Storage-layout bytes of all indices plus the dictionary."""
        total = sum(tree.sizeof() for tree in self.indexes.values())
        if self.dictionary is not None:
            total += self.dictionary.sizeof()
        return total

    def check_invariants(self) -> None:
        for tree in self.indexes.values():
            tree.check_invariants()


def _check_update_time(time: int) -> None:
    """Reject update timestamps outside the concrete chronon domain.

    ``NOW`` is the live-interval sentinel: inserting or deleting *at* it
    would create an entry that is never alive yet counts as live (and a
    delete at ``NOW`` would decrement live counts while leaving the entry
    live), silently corrupting the indices.
    """
    if not (MIN_TIME <= time < NOW):
        raise ValueError(
            f"update time {time!r} outside [{MIN_TIME}, NOW)"
        )


def _reorder(ids: dict, order_name: str):
    return tuple(ids[letter] for letter in INDEX_ORDERS[order_name])


def _quad(subject: str, predicate: str, object: str):
    from ..sparqlt.ast import QuadPattern, TermConst, Var

    return QuadPattern(
        TermConst(subject), TermConst(predicate), TermConst(object), Var("t")
    )


class QuadPatternFactory:
    """Builders for the by-example convenience queries."""

    @staticmethod
    def snapshot(subject: str, chronon: int):
        from ..sparqlt.ast import QuadPattern, TermConst, TimeConst, Var

        return QuadPattern(
            TermConst(subject), Var("p"), Var("o"), TimeConst(chronon)
        )

    @staticmethod
    def history(subject: str, predicate: str | None):
        from ..sparqlt.ast import QuadPattern, TermConst, Var

        return QuadPattern(
            TermConst(subject),
            TermConst(predicate) if predicate is not None else Var("p"),
            Var("o"),
            Var("t"),
        )
