"""Physical operators of the RDF-TX execution engine (Section 5.2).

Rows are plain dicts mapping variable names to values: dictionary ids (int)
for RDF terms and :class:`~repro.model.time.PeriodSet` for temporal
variables.  Term ids are decoded to strings only at projection time, keeping
joins cheap.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from ..model.dictionary import Dictionary
from ..model.time import NOW, Period, PeriodSet
from ..mvbt.scan import scan_pieces
from ..mvbt.tree import MVBT
from ..obs import metrics as _metrics
from ..sparqlt.ast import Compare, Expr, expr_variables
from ..sparqlt.functions import evaluate, restrict, restriction_target
from .patterns import PatternPlan

Row = dict

# Operator instrumentation: counts are accumulated in locals and published
# once per operator invocation, so the per-row paths never touch a lock
# (and REPRO_OBS=0 skips the publish entirely).
_SCANS = _metrics.counter("engine.index_scans")
_SCAN_ROWS = _metrics.counter("engine.index_scan_rows")
_HASH_JOINS = _metrics.counter("engine.hash_joins")
_HASH_JOIN_ROWS = _metrics.counter("engine.hash_join_rows")
_SYNC_JOINS = _metrics.counter("engine.sync_joins")
_SYNC_JOIN_ROWS = _metrics.counter("engine.sync_join_rows")
_FILTER_ROWS_IN = _metrics.counter("engine.filter_rows_in")
_FILTER_ROWS_OUT = _metrics.counter("engine.filter_rows_out")


def index_scan(
    tree: MVBT,
    plan: PatternPlan,
    pieces: list[tuple[tuple, int, int, object]] | None = None,
) -> Iterator[Row]:
    """Single graph pattern matching: one MVBT range-interval scan.

    Yields one row per matching (s, p, o) binding with the coalesced
    validity restricted to the scan window.  ``pieces`` optionally injects
    pre-scanned raw pieces for the plan's region (the parallel scanner's
    output, element-identical to :func:`~repro.mvbt.scan.scan_pieces`) so
    the scan itself can run elsewhere.
    """
    grouped: dict[tuple, list[tuple[int, int]]] = defaultdict(list)
    window = plan.time_range
    w_start, w_end = window.start, window.end
    equal_slots = plan.equal_slots
    if pieces is None:
        pieces = scan_pieces(
            tree, plan.key_low, plan.key_high, w_start, w_end
        )
    for key, lo, hi, _ in pieces:
        if equal_slots and any(key[a] != key[b] for a, b in equal_slots):
            continue
        # Restrict to the scan window inline (point-based semantics).
        grouped[key].append((max(lo, w_start), min(hi, w_end)))
    if _metrics.ENABLED:
        _SCANS.inc()
        _SCAN_ROWS.inc(len(grouped))
    for key, parts in grouped.items():
        validity = PeriodSet.from_intervals(parts)
        row: Row = {name: key[slot] for name, slot in plan.var_slots.items()}
        if plan.time_var is not None:
            row[plan.time_var] = validity
        yield row


def synchronized_join_applicable(
    left_plan: PatternPlan, right_plan: PatternPlan, shared: set[str]
) -> bool:
    """Whether the cache-optimized synchronized join (Section 5.2.2) can
    and should evaluate this join.

    The paper uses it when a join input accesses a large portion of its
    index instead of materializing a hash table: both sides must be
    predicate-bound patterns on the POS order joining on their subject
    variable plus the shared temporal element, with wide time windows.
    """
    if left_plan.index_order != "pos" or right_plan.index_order != "pos":
        return False
    if left_plan.equal_slots or right_plan.equal_slots:
        return False
    if left_plan.time_var is None or right_plan.time_var is None:
        return False
    if left_plan.time_var != right_plan.time_var:
        return False
    subject_slot = 2  # POS keys are (p, o, s)
    left_subject = _var_at_slot(left_plan, subject_slot)
    right_subject = _var_at_slot(right_plan, subject_slot)
    if left_subject is None or left_subject != right_subject:
        return False
    if shared != {left_subject, left_plan.time_var}:
        return False
    # "Large portion": both scans are effectively unconstrained in time.
    wide = NOW // 2
    return (
        left_plan.time_range.length() >= wide
        and right_plan.time_range.length() >= wide
    )


def _var_at_slot(plan: PatternPlan, slot: int) -> str | None:
    for name, at in plan.var_slots.items():
        if at == slot:
            return name
    return None


def synchronized_join_rows(
    left_tree: MVBT,
    left_plan: PatternPlan,
    right_tree: MVBT,
    right_plan: PatternPlan,
) -> Iterator[Row]:
    """Evaluate a two-pattern temporal join with the synchronized join."""
    from ..mvbt.join import synchronized_join

    subject_slot = 2
    rows_out = 0
    for lkey, rkey, periods in synchronized_join(
        left_tree,
        right_tree,
        left_key=lambda k: k[subject_slot],
        right_key=lambda k: k[subject_slot],
        key_low=left_plan.key_low,
        key_high=left_plan.key_high,
        right_key_low=right_plan.key_low,
        right_key_high=right_plan.key_high,
    ):
        row: Row = {
            name: lkey[slot] for name, slot in left_plan.var_slots.items()
        }
        for name, slot in right_plan.var_slots.items():
            row[name] = rkey[slot]
        row[left_plan.time_var] = periods
        rows_out += 1
        yield row
    if _metrics.ENABLED:
        _SYNC_JOINS.inc()
        _SYNC_JOIN_ROWS.inc(rows_out)


def hash_join_rows(
    left: Iterable[Row], right: Iterable[Row], shared: set[str]
) -> Iterator[Row]:
    """Temporal hash join of two row streams on their shared variables.

    Non-temporal shared variables form the hash key; shared temporal
    variables are intersected, and rows with an empty intersection are
    dropped (the point-based join semantics of Section 3.2).
    """
    left_rows = list(left)
    if not left_rows:
        return
    probe_sample = left_rows[0]
    temporal = {
        name
        for name in shared
        if isinstance(probe_sample.get(name), PeriodSet)
    }
    key_vars = sorted(shared - temporal)

    table: dict[tuple, list[Row]] = defaultdict(list)
    for row in left_rows:
        table[tuple(row.get(name) for name in key_vars)].append(row)
    rows_out = 0
    for right_row in right:
        matches = table.get(tuple(right_row.get(name) for name in key_vars))
        if not matches:
            continue
        for left_row in matches:
            merged = _merge_rows(left_row, right_row, temporal)
            if merged is not None:
                rows_out += 1
                yield merged
    if _metrics.ENABLED:
        _HASH_JOINS.inc()
        _HASH_JOIN_ROWS.inc(rows_out)


def _merge_rows(
    left: Row, right: Row, temporal: set[str]
) -> Row | None:
    merged = dict(left)
    for name, value in right.items():
        if name in temporal and name in left:
            common = left[name].intersect(value)
            if common.is_empty:
                return None
            merged[name] = common
        elif name in merged:
            if merged[name] != value:
                return None
        else:
            merged[name] = value
    return merged


def left_outer_join_rows(
    left: Iterable[Row], right: Iterable[Row], shared: set[str]
) -> Iterator[Row]:
    """SPARQL OPTIONAL: keep every left row, extended where the right side
    matches (temporal shared variables intersect, as in the inner join)."""
    left_rows = list(left)
    if not left_rows:
        return
    right_rows = list(right)
    temporal = {
        name
        for name in shared
        if left_rows and isinstance(left_rows[0].get(name), PeriodSet)
    }
    key_vars = sorted(shared - temporal)
    table: dict[tuple, list[Row]] = defaultdict(list)
    for row in right_rows:
        table[tuple(row.get(name) for name in key_vars)].append(row)
    for left_row in left_rows:
        matches = table.get(tuple(left_row.get(name) for name in key_vars), [])
        extended = []
        for right_row in matches:
            merged = _merge_rows(left_row, right_row, temporal)
            if merged is not None:
                extended.append(merged)
        if extended:
            yield from extended
        else:
            yield dict(left_row)


def nested_loop_product(
    left: Iterable[Row], right: Iterable[Row]
) -> Iterator[Row]:
    """Cross product for disconnected plan graphs (no shared variables)."""
    left_rows = list(left)
    for right_row in right:
        for left_row in left_rows:
            yield {**left_row, **right_row}


def apply_filters(
    rows: Iterable[Row],
    conjuncts: list[Expr],
    dictionary: Dictionary,
    horizon: int,
) -> Iterator[Row]:
    """Apply filter conjuncts: restrictions narrow temporal bindings,
    everything else is evaluated as a boolean predicate on the decoded row.
    """
    restrictions: list[tuple[str, Compare]] = []
    predicates: list[Expr] = []
    for conjunct in conjuncts:
        target = restriction_target(conjunct)
        if target is not None:
            restrictions.append((target, conjunct))
        else:
            predicates.append(conjunct)

    rows_in = rows_out = 0
    for row in rows:
        rows_in += 1
        out = dict(row)
        dead = False
        for target, conjunct in restrictions:
            value = out.get(target)
            if not isinstance(value, PeriodSet):
                # The restriction names a non-temporal variable; evaluate it
                # as an ordinary predicate instead.
                predicates = predicates + [conjunct]
                restrictions = [
                    (t, c) for t, c in restrictions if c is not conjunct
                ]
                continue
            narrowed = restrict(conjunct, value, horizon)
            if narrowed.is_empty:
                dead = True
                break
            out[target] = narrowed
        if dead:
            continue
        if predicates:
            decoded = decode_row(out, dictionary)
            if not all(
                evaluate(predicate, decoded, horizon)
                for predicate in predicates
            ):
                continue
        rows_out += 1
        yield out
    if _metrics.ENABLED:
        _FILTER_ROWS_IN.inc(rows_in)
        _FILTER_ROWS_OUT.inc(rows_out)


def decode_row(row: Row, dictionary: Dictionary) -> Row:
    """Decode term ids to strings, leaving temporal bindings untouched."""
    return {
        name: dictionary.decode(value) if isinstance(value, int) else value
        for name, value in row.items()
    }


def project(
    rows: Iterable[Row], select: list[str], dictionary: Dictionary
) -> list[Row]:
    """Decode and project the SELECT variables, deduplicating rows."""
    seen: set[tuple] = set()
    out: list[Row] = []
    for row in rows:
        projected = {}
        for name in select:
            value = row.get(name)
            if isinstance(value, int):
                value = dictionary.decode(value)
            projected[name] = value
        fingerprint = tuple(
            (name, projected[name]) for name in select
        )
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        out.append(projected)
    return out
