"""I/O: the temporal N-Quads interchange format."""

from .ntq import (
    FormatError,
    dump_graph,
    dump_triples,
    dumps,
    iter_triples,
    load_graph,
    loads,
)

__all__ = [
    "FormatError",
    "dump_graph",
    "dump_triples",
    "dumps",
    "iter_triples",
    "load_graph",
    "loads",
]
