"""Temporal N-Quads: a line-based interchange format for temporal RDF.

Each line carries one interval-encoded fact::

    subject predicate object start end .

* Terms are bare tokens, or double-quoted (with ``\\"`` and ``\\\\``
  escapes) when they contain whitespace or quotes.
* ``start``/``end`` are ISO dates (``2013-09-30``) or integer chronons;
  ``end`` may be ``now`` for live facts.
* ``#`` starts a comment; blank lines are ignored.
* Files ending in ``.gz`` are read/written gzip-compressed.

This is the on-disk companion of :class:`~repro.model.graph.TemporalGraph`
— the backup/recovery scenario of the paper's Section 2.1 needs a durable
form of the history, and the CLI and examples load datasets through it.
"""

from __future__ import annotations

import gzip
import io
import re
from pathlib import Path
from typing import IO, Iterable, Iterator

from ..model.graph import TemporalGraph
from ..model.time import NOW, TimeError, chronon_to_date, date_to_chronon
from ..model.triple import TemporalTriple


class FormatError(ValueError):
    """A malformed temporal N-Quads line."""

    def __init__(self, message: str, line_number: int) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


_BARE_TOKEN = re.compile(r'^[^\s"#]+$')
_TOKEN = re.compile(
    r'''\s*(?:
        "(?P<quoted>(?:[^"\\]|\\.)*)"
      | (?P<bare>[^\s"#]+)
    )''',
    re.VERBOSE,
)


def _escape(term: str) -> str:
    if _BARE_TOKEN.match(term) and term not in (".", "now"):
        return term
    escaped = term.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _unescape(text: str) -> str:
    return text.replace('\\"', '"').replace("\\\\", "\\")


def _format_time(chronon: int) -> str:
    if chronon == NOW:
        return "now"
    return chronon_to_date(chronon).isoformat()


def _parse_time(token: str, line_number: int) -> int:
    if token == "now":
        return NOW
    if token.isdigit():
        return int(token)
    try:
        return date_to_chronon(token)
    except TimeError:
        raise FormatError(f"bad timestamp {token!r}", line_number) from None


def _tokenize(line: str, line_number: int) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(line):
        rest = line[pos:]
        if rest.lstrip().startswith("#") or not rest.strip():
            break
        match = _TOKEN.match(line, pos)
        if match is None:
            raise FormatError(f"cannot tokenize near {rest.strip()!r}",
                              line_number)
        if match.group("quoted") is not None:
            tokens.append(_unescape(match.group("quoted")))
        else:
            tokens.append(match.group("bare"))
        pos = match.end()
    return tokens


# -------------------------------------------------------------------- write


def dump_triples(triples: Iterable[TemporalTriple], target: IO[str]) -> int:
    """Write temporal triples to an open text stream; returns the count."""
    count = 0
    for triple in triples:
        target.write(
            f"{_escape(triple.subject)} {_escape(triple.predicate)} "
            f"{_escape(triple.object)} "
            f"{_format_time(triple.period.start)} "
            f"{_format_time(triple.period.end)} .\n"
        )
        count += 1
    return count


def dump_graph(graph: TemporalGraph, path: str | Path) -> int:
    """Write a temporal graph to ``path`` (gzip if it ends with .gz)."""
    path = Path(path)
    with _open_write(path) as handle:
        handle.write("# temporal n-quads: s p o start end .\n")
        return dump_triples(graph.triples(), handle)


def dumps(graph: TemporalGraph) -> str:
    """Serialize a temporal graph to a string."""
    buffer = io.StringIO()
    dump_triples(graph.triples(), buffer)
    return buffer.getvalue()


# --------------------------------------------------------------------- read


def iter_triples(source: IO[str]) -> Iterator[TemporalTriple]:
    """Parse temporal triples from an open text stream."""
    for line_number, line in enumerate(source, start=1):
        tokens = _tokenize(line, line_number)
        if not tokens:
            continue
        if tokens[-1] == ".":
            tokens = tokens[:-1]
        if len(tokens) != 5:
            raise FormatError(
                f"expected 5 fields, found {len(tokens)}", line_number
            )
        subject, predicate, object_, start_token, end_token = tokens
        start = _parse_time(start_token, line_number)
        end = _parse_time(end_token, line_number)
        if end != NOW and end <= start:
            raise FormatError(
                f"empty interval [{start_token}, {end_token}]", line_number
            )
        yield TemporalTriple.make(subject, predicate, object_, start, end)


def load_graph(path: str | Path) -> TemporalGraph:
    """Read a temporal graph from ``path`` (gzip if it ends with .gz)."""
    graph = TemporalGraph()
    with _open_read(Path(path)) as handle:
        for triple in iter_triples(handle):
            graph.add_triple(triple)
    return graph


def loads(text: str) -> TemporalGraph:
    """Parse a temporal graph from a string."""
    graph = TemporalGraph()
    for triple in iter_triples(io.StringIO(text)):
        graph.add_triple(triple)
    return graph


def _open_write(path: Path) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, "wt", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_read(path: Path) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")
