"""repro.lint: the fixture corpus, pragmas, baseline, CLI, and the gate.

Every rule ID has at least one positive fixture (the rule must fire) and
one negative fixture (it must stay silent); the corpus lives in
``tests/lint_fixtures/``.  Path-scoped rules are exercised through the
``# repro-lint: scope=…`` pragma, which is itself under test here.  The
final test is the gate the CI job enforces: ``repro-tx lint`` over the
real source tree exits 0.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    ALL_RULES,
    Baseline,
    RULES_BY_ID,
    run_lint,
)
from repro.lint.checker import (
    JSON_SCHEMA_VERSION,
    PARSE_ERROR_RULE,
    load_module,
    main,
)

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parent.parent

ALL_IDS = sorted(RULES_BY_ID)


def findings_for(rule_id: str, fixture: str) -> list:
    """Run exactly one rule over one fixture file."""
    path = FIXTURES / fixture
    assert path.exists(), f"missing fixture {fixture}"
    return run_lint([str(path)], rules=[RULES_BY_ID[rule_id]])


# ------------------------------------------------------------------ registry


def test_registry_covers_required_rule_count():
    assert len(ALL_RULES) >= 6
    assert all(rule.id.startswith("RL") for rule in ALL_RULES)
    assert all(rule.title and rule.rationale for rule in ALL_RULES)


def test_registry_ids_are_unique_and_sorted():
    ids = [rule.id for rule in ALL_RULES]
    assert len(set(ids)) == len(ids)
    assert ids == sorted(ids)


# ------------------------------------------------------------ fixture corpus

POSITIVE_EXPECTATIONS = {
    "RL001": ("rl001_pos.py", 2),  # fsync under write lock, sleep under read
    "RL002": ("rl002_pos.py", 3),  # engine swap, insert, revision bump
    "RL003": ("rl003_pos.py", 2),  # apply-before-append, unlogged apply
    "RL004": ("rl004_pos.py", 2),  # .end and .death outside helpers
    "RL005": ("rl005_pos.py", 5),  # import, construction, ._buf poke,
                                   # pieces.append, entries().sort
    "RL006": ("rl006_pos.py", 3),  # time.time, uuid4, random.random
    "RL007": ("rl007_pos.py", 2),  # silent broad except, bare except
    "RL008": ("rl008_pos.py", 4),  # [], {}, set(), list()
    "RL009": ("rl009_pos.py", 3),  # typo, malformed, dynamic name
    "RL010": ("rl010_pos.py", 2),  # module-level + control-flow assert
    "RL011": ("rl011_pos.py", 2),  # span.start() + span.finish()
    "RL012": ("rl012_pos.py", 3),  # typo, malformed, dynamic name (bare)
    "RL013": ("rl013_pos.py", 2),  # two-hop chain + direct under member
    "RL014": ("rl014_pos.py", 1),  # writer/maint order cycle
    "RL015": ("rl015_pos.py", 4),  # unknown op, missing, extra, stale key
    "RL016": ("rl016_pos.py", 2),  # setsockopt-then-return, write-then-close
    "RL017": ("rl017_pos.py", 3),  # typo, malformed, dynamic name
}

NEGATIVE_FIXTURES = {
    "RL001": ["rl001_neg.py"],
    "RL002": ["rl002_neg.py"],
    "RL003": ["rl003_neg.py"],
    "RL004": ["rl004_neg.py"],
    "RL005": ["rl005_neg.py", "rl005_pieces_neg.py"],
    "RL006": ["rl006_neg.py", "rl006_unscoped_neg.py"],
    "RL007": ["rl007_neg.py", "rl007_unscoped_neg.py"],
    "RL008": ["rl008_neg.py"],
    "RL009": ["rl009_neg.py"],
    "RL010": ["rl010_neg.py"],
    "RL011": ["rl011_neg.py"],
    "RL012": ["rl012_neg.py"],
    "RL013": ["rl013_neg.py"],
    "RL014": ["rl014_neg.py"],
    "RL015": ["rl015_neg.py"],
    "RL016": ["rl016_neg.py"],
    "RL017": ["rl017_neg.py"],
}


@pytest.mark.parametrize("rule_id", ALL_IDS)
def test_every_rule_has_fixtures(rule_id):
    assert rule_id in POSITIVE_EXPECTATIONS
    assert rule_id in NEGATIVE_FIXTURES


@pytest.mark.parametrize("rule_id", sorted(POSITIVE_EXPECTATIONS))
def test_positive_fixture_fires(rule_id):
    fixture, expected = POSITIVE_EXPECTATIONS[rule_id]
    findings = findings_for(rule_id, fixture)
    assert len(findings) == expected, [f.render() for f in findings]
    assert all(f.rule == rule_id for f in findings)
    # Every finding carries a usable location and snippet.
    assert all(f.line >= 1 and f.message for f in findings)


@pytest.mark.parametrize(
    "rule_id,fixture",
    [(rid, fx) for rid, fixtures in sorted(NEGATIVE_FIXTURES.items())
     for fx in fixtures],
)
def test_negative_fixture_stays_silent(rule_id, fixture):
    findings = findings_for(rule_id, fixture)
    assert findings == [], [f.render() for f in findings]


def test_positive_fixtures_exit_nonzero_via_cli(capsys):
    """The acceptance gate: `repro-tx lint` exits non-zero per positive."""
    for rule_id, (fixture, _) in sorted(POSITIVE_EXPECTATIONS.items()):
        code = main([str(FIXTURES / fixture), "--rules", rule_id,
                     "--no-baseline"])
        assert code == 1, f"{fixture} should fail the lint gate"
    capsys.readouterr()


# ---------------------------------------------------------------- pragmas


def test_scope_pragma_rewrites_logical_path():
    module = load_module(FIXTURES / "rl006_pos.py")
    assert module.logical_path == "src/repro/service/wal.py"


def test_inline_disable_suppresses_one_line(tmp_path):
    target = tmp_path / "snippet.py"
    target.write_text(
        "def f(xs=[]):  # repro-lint: disable=RL008\n"
        "    return xs\n"
        "def g(ys=[]):\n"
        "    return ys\n"
    )
    findings = run_lint([str(target)], rules=[RULES_BY_ID["RL008"]])
    assert len(findings) == 1
    assert "g" in findings[0].message


def test_disable_file_pragma_suppresses_whole_file(tmp_path):
    target = tmp_path / "snippet.py"
    target.write_text(
        "# repro-lint: disable-file=RL008\n"
        "def f(xs=[]):\n"
        "    return xs\n"
        "def g(ys={}):\n"
        "    return ys\n"
    )
    assert run_lint([str(target)], rules=[RULES_BY_ID["RL008"]]) == []


def test_disable_file_pragma_ignored_past_header(tmp_path):
    filler = "\n".join(f"x{i} = {i}" for i in range(25))
    target = tmp_path / "snippet.py"
    target.write_text(
        filler + "\n# repro-lint: disable-file=RL008\ndef f(xs=[]):\n"
        "    return xs\n"
    )
    findings = run_lint([str(target)], rules=[RULES_BY_ID["RL008"]])
    assert len(findings) == 1


def test_syntax_error_reports_rl000(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def f(:\n")
    findings = run_lint([str(target)])
    assert len(findings) == 1
    assert findings[0].rule == PARSE_ERROR_RULE


# ---------------------------------------------------------------- baseline


def test_baseline_roundtrip_suppresses_and_resurfaces(tmp_path):
    target = tmp_path / "snippet.py"
    target.write_text("def f(xs=[]):\n    return xs\n")
    baseline_path = tmp_path / "baseline.json"

    findings = run_lint([str(target)], rules=[RULES_BY_ID["RL008"]])
    assert len(findings) == 1
    Baseline().save(baseline_path, findings)

    accepted = Baseline.load(baseline_path)
    assert accepted.filter(findings) == []

    # Editing the offending line changes the fingerprint: it resurfaces.
    target.write_text("def f(xs=[4]):\n    return xs\n")
    fresh = run_lint([str(target)], rules=[RULES_BY_ID["RL008"]])
    assert len(accepted.filter(fresh)) == 1


def test_baseline_is_line_move_stable(tmp_path):
    target = tmp_path / "snippet.py"
    target.write_text("def f(xs=[]):\n    return xs\n")
    baseline_path = tmp_path / "baseline.json"
    Baseline().save(
        baseline_path, run_lint([str(target)], rules=[RULES_BY_ID["RL008"]])
    )
    # Unrelated lines added above: the baselined finding stays suppressed.
    target.write_text("import os\n\n\ndef f(xs=[]):\n    return xs\n")
    moved = run_lint([str(target)], rules=[RULES_BY_ID["RL008"]])
    assert Baseline.load(baseline_path).filter(moved) == []


def test_stale_baseline_version_is_ignored(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps({"version": 999, "fingerprints": ["deadbeef"]})
    )
    assert Baseline.load(baseline_path).accepted == set()


# --------------------------------------------------------------------- CLI


def test_cli_unknown_rule_is_usage_error(capsys):
    assert main(["--rules", "RL999", str(FIXTURES)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_missing_path_is_usage_error(capsys):
    assert main(["definitely/not/a/path.py"]) == 2
    capsys.readouterr()


def test_cli_json_format(tmp_path, capsys):
    target = tmp_path / "snippet.py"
    target.write_text("def f(xs=[]):\n    return xs\n")
    assert main([str(target), "--no-baseline", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == JSON_SCHEMA_VERSION
    assert payload["findings"][0]["rule"] == "RL008"
    assert payload["findings"][0]["line"] == 1


def test_cli_update_baseline_then_clean(tmp_path, capsys):
    target = tmp_path / "snippet.py"
    target.write_text("def f(xs=[]):\n    return xs\n")
    baseline = tmp_path / "baseline.json"
    assert main([str(target), "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    capsys.readouterr()
    assert main([str(target), "--baseline", str(baseline)]) == 0
    assert main([str(target), "--baseline", str(baseline),
                 "--no-baseline"]) == 1
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.id in out


# ------------------------------------------------------------ the real gate


def test_repo_source_tree_is_clean():
    """`repro-tx lint` on the shipped tree: zero findings, exit 0."""
    findings = run_lint([str(REPO_ROOT / "src")])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_repo_gate_via_subprocess():
    """End to end through the console entry point, as CI runs it."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint",
         str(REPO_ROOT / "src"), "--no-baseline"],
        capture_output=True, text=True, cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(REPO_ROOT / "src"),
             "PATH": shutil.os.environ.get("PATH", "")},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stdout
