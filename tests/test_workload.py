"""Query fingerprinting, the workload registry, and the drift monitor.

The fingerprint properties are the contract the /debug/workload endpoint
rests on: invariance under whitespace, constants, and variable renaming
(those queries must aggregate together) and sensitivity to structure
(queries with different variable topology must not collide).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import RDFTX
from repro.model.graph import TemporalGraph
from repro.obs import metrics
from repro.obs.workload import (
    DriftMonitor,
    WorkloadRegistry,
    fingerprint,
    fingerprint_text,
)
from repro.optimizer import Optimizer
from repro.sparqlt.parser import parse

IDENT = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True)


# ------------------------------------------------------------ fingerprints


class TestFingerprint:
    def test_constants_and_variable_names_collapse(self):
        a = fingerprint_text("SELECT ?o {UC president ?o ?t}")
        b = fingerprint_text("SELECT ?x {UM chancellor ?x ?u}")
        assert a == b

    def test_whitespace_is_irrelevant(self):
        a = fingerprint_text("SELECT ?o {UC president ?o ?t}")
        b = fingerprint_text("SELECT  ?o  {\n  UC president ?o ?t\n}")
        assert a == b

    def test_repeated_variable_is_a_different_shape(self):
        distinct = fingerprint_text("SELECT ?a {?a president ?b ?t}")
        repeated = fingerprint_text("SELECT ?a {?a president ?a ?t}")
        assert distinct != repeated

    def test_filter_structure_is_preserved(self):
        plain = fingerprint_text("SELECT ?o {UC budget ?o ?t}")
        filtered = fingerprint_text(
            "SELECT ?o {UC budget ?o ?t . FILTER(YEAR(?t) = 2013)}"
        )
        assert plain != filtered
        # ... but the filter's literal is a placeholder:
        other_year = fingerprint_text(
            "SELECT ?o {UC budget ?o ?t . FILTER(YEAR(?t) = 1999)}"
        )
        assert filtered == other_year

    def test_parsed_and_text_paths_agree(self):
        text = "SELECT ?o {UC president ?o ?t}"
        assert fingerprint(parse(text)) == fingerprint_text(text)

    @settings(max_examples=50, deadline=None)
    @given(subject=IDENT, predicate=IDENT, pad=st.integers(1, 5))
    def test_constant_and_whitespace_invariance_property(
        self, subject, predicate, pad
    ):
        base = fingerprint_text("SELECT ?o {UC president ?o ?t}")
        spaced = " " * pad
        varied = fingerprint_text(
            f"SELECT{spaced}?o{spaced}{{{subject} {predicate}"
            f"{spaced}?o ?t}}"
        )
        assert varied == base

    @settings(max_examples=50, deadline=None)
    @given(var_a=IDENT, var_b=IDENT)
    def test_variable_topology_determines_the_shape(self, var_a, var_b):
        """Consistent renaming never changes the shape; collapsing two
        distinct variables into one always does.

        Suffixes keep the three generated names pairwise distinct no
        matter what hypothesis draws — e.g. ``var_a = "t"`` bare would
        collide with the time variable and genuinely change the shape.
        """
        distinct = fingerprint_text(
            f"SELECT ?{var_a}_1 "
            f"{{?{var_a}_1 president ?{var_b}_2 ?{var_a}_t}}"
        )
        repeated = fingerprint_text(
            f"SELECT ?{var_a}_1 "
            f"{{?{var_a}_1 president ?{var_a}_1 ?{var_a}_t}}"
        )
        canonical_distinct = fingerprint_text(
            "SELECT ?a {?a president ?b ?t}"
        )
        canonical_repeated = fingerprint_text(
            "SELECT ?a {?a president ?a ?t}"
        )
        assert distinct == canonical_distinct
        assert repeated == canonical_repeated
        assert distinct != repeated


# ---------------------------------------------------------------- registry


class TestWorkloadRegistry:
    def test_record_and_snapshot(self):
        reg = WorkloadRegistry()
        text = "SELECT ?o {UC president ?o ?t}"
        reg.record_query(None, text, 5.0, rows=2, cache_hit=False,
                         trace_id="ab-00000001")
        reg.record_query(None, text, 15.0, rows=2, cache_hit=True,
                         trace_id="ab-00000002")
        snap = reg.snapshot()
        assert snap["distinct_shapes"] == 1
        (shape,) = snap["shapes"]
        assert shape["count"] == 2
        assert shape["cache_hit_ratio"] == 0.5
        assert shape["rows_mean"] == 2.0
        assert shape["exemplar_trace_id"] == "ab-00000002"  # the slowest
        assert shape["slowest_ms"] == 15.0
        assert shape["example"] == text

    def test_render_text_empty_and_populated(self):
        reg = WorkloadRegistry()
        assert "no queries recorded" in reg.render_text()
        reg.record_query(None, "SELECT ?o {UC president ?o ?t}",
                         1.0, rows=1, cache_hit=False)
        table = reg.render_text()
        assert "SELECT ?v0 { <c> <c> ?v0 ?v1 }" in table
        assert "count" in table

    def test_disabled_records_nothing(self):
        reg = WorkloadRegistry()
        metrics.set_enabled(False)
        try:
            reg.record_query(None, "SELECT ?o {UC president ?o ?t}",
                             1.0, rows=1, cache_hit=False)
        finally:
            metrics.set_enabled(True)
        assert len(reg) == 0

    def test_registry_stays_bounded_under_10k_shapes(self):
        reg = WorkloadRegistry(max_shapes=512)
        for i in range(10_000):
            stats = reg._record(f"shape{i:05x}", f"SELECT ?v0 {{ s{i} }}")
            stats.record(1.0, rows=0, cache_hit=False, trace_id=None)
        assert len(reg) == 512
        snap = reg.snapshot()
        assert snap["distinct_shapes"] == 512
        assert snap["overflow"] == 10_000 - 512

    @settings(max_examples=20, deadline=None)
    @given(st.lists(IDENT, min_size=1, max_size=30))
    def test_distinct_predicates_one_shape(self, predicates):
        """Any mix of constants folds into the same shape bucket."""
        reg = WorkloadRegistry()
        for predicate in predicates:
            reg.record_query(
                None, f"SELECT ?o {{UC {predicate} ?o ?t}}",
                1.0, rows=0, cache_hit=False,
            )
        assert len(reg) == 1
        assert reg.snapshot()["shapes"][0]["count"] == len(predicates)


# ------------------------------------------------------------ drift monitor


def _profiled(engine, text):
    result = engine.query(text, profile=True)
    assert result.profile is not None
    return result.profile


class TestDriftMonitor:
    def test_window_and_refresh_due(self):
        monitor = DriftMonitor(qerror_threshold=4.0, window=3,
                               sample_rate=1.0)
        assert monitor.sample() is True
        assert monitor.refresh_due() is False  # window not full

    def test_sampling_disabled_by_kill_switch(self):
        monitor = DriftMonitor(sample_rate=1.0)
        metrics.set_enabled(False)
        try:
            assert monitor.sample() is False
        finally:
            metrics.set_enabled(True)

    def test_snapshot_shape(self):
        monitor = DriftMonitor(qerror_threshold=2.0, window=8)
        snap = monitor.snapshot()
        assert snap["threshold"] == 2.0
        assert snap["window_size"] == 8
        assert snap["window_fill"] == 0
        assert snap["refreshes"] == 0


class TestDriftRefreshIntegration:
    @pytest.fixture()
    def skewed_engine(self):
        """An engine whose statistics are badly stale for predicate `p`:
        built over 2 facts, then 300 more arrive without a stats
        refresh (threshold disabled)."""
        graph = TemporalGraph()
        graph.add("s0", "p", "o0", 1)
        graph.add("s1", "p", "o1", 1)
        for i in range(40):
            graph.add(f"f{i}", "filler", f"v{i}", 1)
        engine = RDFTX.from_graph(
            graph, optimizer=Optimizer(), stats_refresh_threshold=None
        )
        for i in range(300):
            engine.insert(f"n{i}", "p", f"w{i}", 2 + i)
        return engine

    def test_sustained_drift_triggers_statistics_refresh(
        self, skewed_engine
    ):
        engine = skewed_engine
        engine.drift = DriftMonitor(qerror_threshold=4.0, window=4,
                                    sample_rate=1.0)
        before = engine.drift.refreshes
        stale_qerror = _profiled(
            engine, "SELECT ?s {?s p ?o ?t}"
        ).max_qerror()
        assert stale_qerror is not None and stale_qerror >= 4.0
        # Fill the window (each unprofiled query is drift-sampled at
        # rate 1.0) and give the next compile a chance to react.
        for _ in range(6):
            engine.query("SELECT ?s {?s p ?o ?t}")
        assert engine.drift.refreshes > before
        assert engine.statistics_dirty == 0
        fresh_qerror = _profiled(
            engine, "SELECT ?s {?s p ?o ?t}"
        ).max_qerror()
        assert fresh_qerror is not None and fresh_qerror < 4.0

    def test_no_refresh_without_threshold(self, skewed_engine):
        engine = skewed_engine
        engine.drift = DriftMonitor(qerror_threshold=None, window=4,
                                    sample_rate=1.0)
        for _ in range(8):
            engine.query("SELECT ?s {?s p ?o ?t}")
        assert engine.drift.refreshes == 0
        # The metrics still flowed: the window saw the drift.
        assert engine.drift.snapshot()["median_qerror"] is not None
