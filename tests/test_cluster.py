"""End-to-end cluster tests: correctness, routing, replication, failover.

These boot real worker processes (spawn context), so topologies stay
small and the dataset tiny; the properties under test — byte-identical
results across topologies, watermark monotonicity, replica promotion —
do not depend on scale.
"""

from __future__ import annotations

import json
import os
import signal
import time
from pathlib import Path

import pytest

from repro import io as tio
from repro.cluster import ClusterStore, shard_of
from repro.cluster.executor import canonical_sort
from repro.cluster.protocol import encode_value
from repro.datasets.queries import (
    complex_queries,
    join_queries,
    selection_queries,
)
from repro.mvbt.tree import DuplicateKeyError, TimeOrderError
from repro.service.store import TemporalStore

GOLDEN = Path(__file__).parent / "golden" / "cluster_fig9.json"
#: The pinned dataset the golden answers were computed on.  Committed as
#: a file (not regenerated from the synthetic generator) because the
#: generator's output depends on string-hash iteration order, which
#: varies per process with PYTHONHASHSEED.
GOLDEN_DATASET = Path(__file__).parent / "golden" / "cluster_fig9.tnq"


@pytest.fixture(scope="module")
def graph():
    return tio.load_graph(str(GOLDEN_DATASET))


@pytest.fixture(scope="module")
def query_mix(graph):
    """A small fig9-style mix: selection + join + complex shapes."""
    by_count = complex_queries(graph, seed=3)
    return (selection_queries(graph, 4, seed=1)
            + join_queries(graph, 4, seed=2)
            + by_count[3][:2] + by_count[4][:2])


def _serialize(result) -> dict:
    """The byte-identity form: canonical row order, JSON-encoded values."""
    return {
        "variables": result.variables,
        "rows": [
            [encode_value(row.get(name)) for name in result.variables]
            for row in result.rows
        ],
    }


def _subject_on_shard(shard: int, shards: int, start: int = 0) -> str:
    return next(
        f"subj{i}" for i in range(start, start + 10_000)
        if shard_of(f"subj{i}", shards) == shard
    )


class TestClusterCorrectness:
    def test_matches_single_engine(self, tmp_path, graph, query_mix):
        single = TemporalStore(tmp_path / "single", query_cache_size=None)
        single.load_dataset(graph)
        expected = {}
        for text in query_mix:
            result = single.query(text)
            expected[text] = {
                "variables": result.variables,
                "rows": [
                    [encode_value(row.get(name))
                     for name in result.variables]
                    for row in canonical_sort(
                        result.rows, result.variables
                    )
                ],
            }
        single.close()

        with ClusterStore(tmp_path / "clu", shards=2,
                          fsync=False) as cluster:
            cluster.load_dataset(graph)
            for text in query_mix:
                got = _serialize(cluster.query(text))
                assert got == expected[text], text

    def test_golden_one_vs_four_shards(self, tmp_path, graph, query_mix):
        """1-shard and 4-shard deployments byte-match the golden file.

        The golden file pins the canonical serialization, so a change in
        sort order, value encoding, or distributed-join semantics shows
        up as a diff here rather than as silent cross-topology drift.
        """
        golden = json.loads(GOLDEN.read_text())
        assert list(golden) == query_mix, (
            "query mix changed; regenerate tests/golden/cluster_fig9.json"
        )
        for shards in (1, 4):
            with ClusterStore(tmp_path / f"s{shards}", shards=shards,
                              fsync=False) as cluster:
                cluster.load_dataset(graph)
                for text in query_mix:
                    got = _serialize(cluster.query(text))
                    assert got == golden[text], (shards, text)


class TestClusterUpdates:
    def test_routing_watermark_and_conflicts(self, tmp_path):
        with ClusterStore(tmp_path / "clu", shards=2,
                          fsync=False) as cluster:
            s0 = _subject_on_shard(0, 2)
            s1 = _subject_on_shard(1, 2, start=10_000)
            assert cluster.insert(s0, "p", "a", 1000) == 1
            assert cluster.insert(s1, "p", "b", 1001) == 2
            assert cluster.revision == 2
            # each shard applied exactly one record
            status = cluster.cluster_status()
            lsns = sorted(m["primary"]["applied_lsn"]
                          for m in status["members"])
            assert lsns == [1, 1]
            assert status["watermark"] == 2
            # reads see both, regardless of owning shard
            result = cluster.query("SELECT ?s ?o {?s p ?o ?t}")
            assert [(r["s"], r["o"]) for r in result.rows] == sorted(
                [(s0, "a"), (s1, "b")]
            )
            assert result.revision == 2

            with pytest.raises(DuplicateKeyError):
                cluster.insert(s0, "p", "a", 1005)
            # cross-shard time order: s1's shard would accept 900
            # locally, but the cluster watermark is already at 1001.
            with pytest.raises(TimeOrderError):
                cluster.insert(s1, "q", "c", 900)
            assert cluster.revision == 2

    def test_restart_preserves_predicate_routing(self, tmp_path):
        """A restarted coordinator must not let its first write of a
        predicate shadow pre-existing triples of that predicate living
        on other shards (the predicate map is rebuilt from shard-side
        inventories at bootstrap)."""
        s0 = _subject_on_shard(0, 2)
        s1 = _subject_on_shard(1, 2, start=10_000)
        with ClusterStore(tmp_path / "clu", shards=2,
                          fsync=False) as cluster:
            cluster.insert(s0, "p", "a", 1000)
            cluster.insert(s1, "p", "b", 1001)
        with ClusterStore(tmp_path / "clu", shards=2,
                          fsync=False) as cluster:
            # the poisoning write: predicate "p" observed on shard 0
            # only — routing must still consult shard 1
            cluster.insert(s0, "p", "x", 2000)
            result = cluster.query("SELECT ?s ?o {?s p ?o ?t}")
            assert sorted((r["s"], r["o"]) for r in result.rows) == sorted(
                [(s0, "a"), (s1, "b"), (s0, "x")]
            )

    def test_parsed_union_query_matches_text(self, tmp_path):
        """A pre-parsed UNION query must not take the lossy object fast
        path (encode_query only carries the conjunctive shape)."""
        from repro.sparqlt.parser import parse

        with ClusterStore(tmp_path / "clu", shards=1,
                          fsync=False) as cluster:
            cluster.insert("uc", "president", "carol", 1000)
            cluster.insert("um", "president", "santa", 1001)
            text = ("SELECT ?who { {uc president ?who ?t} "
                    "UNION {um president ?who ?t} }")
            via_text = _serialize(cluster.query(text))
            via_object = _serialize(cluster.query(parse(text)))
            assert via_object == via_text
            assert sorted(r[0] for r in via_object["rows"]) == [
                "carol", "santa"
            ]

    def test_delete_and_readback(self, tmp_path):
        with ClusterStore(tmp_path / "clu", shards=2,
                          fsync=False) as cluster:
            subject = _subject_on_shard(1, 2)
            cluster.insert(subject, "p", "v", 1000)
            cluster.delete(subject, "p", "v", 1500)
            result = cluster.query(
                f"SELECT ?o ?t {{{subject} p ?o ?t}}"
            )
            assert len(result.rows) == 1
            periods = list(result.rows[0]["t"])
            assert periods[0].start == 1000
            assert periods[0].end == 1500


class TestClusterFailover:
    def test_sigkill_promotes_replica_and_preserves_results(
        self, tmp_path, graph, query_mix
    ):
        with ClusterStore(tmp_path / "clu", shards=2, replicas=1,
                          fsync=False) as cluster:
            cluster.load_dataset(graph)
            # live writes so the replica has WAL-shipped state too
            for index in range(5):
                cluster.insert(f"live{index}", "liveness", "yes",
                               20_000 + index)
            before = [_serialize(cluster.query(t)) for t in query_mix]

            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                status = cluster.cluster_status()
                if all(
                    replica["alive"] and replica["applied_lsn"]
                    == member["primary"]["applied_lsn"]
                    for member in status["members"]
                    for replica in member["replicas"]
                ):
                    break
                time.sleep(0.1)

            victim = cluster._members[0].primary
            os.kill(victim.pid, signal.SIGKILL)
            time.sleep(0.3)

            # reads survive (served by the replica or the live shard)
            after = [_serialize(cluster.query(t)) for t in query_mix]
            assert after == before

            # a write owned by the dead shard forces the promotion
            subject = _subject_on_shard(0, 2, start=50_000)
            cluster.insert(subject, "post_failover", "ok", 30_000)
            status = cluster.cluster_status()
            member = status["members"][0]
            assert member["primary"]["alive"]
            assert member["primary"]["pid"] != victim.pid
            assert member["replicas"] == []

            # the promoted primary serves the full pre-kill state
            final = [_serialize(cluster.query(t)) for t in query_mix]
            assert final == before
            result = cluster.query(
                f"SELECT ?o {{{subject} post_failover ?o ?t}}"
            )
            assert [r["o"] for r in result.rows] == ["ok"]

            # the event log recorded the failover and the promotion
            names = [e["event"] for e in cluster.cluster_events()]
            assert "cluster.event.failover" in names
            assert "cluster.event.promoted" in names


    def test_failover_retry_of_committed_write_is_idempotent(
        self, tmp_path
    ):
        """A write the primary applied and shipped — but never
        acknowledged — must not surface as a conflict when retried on
        the promoted replica."""
        with ClusterStore(tmp_path / "clu", shards=1, replicas=1,
                          fsync=False) as cluster:
            member = cluster._members[0]
            subject = _subject_on_shard(0, 1)
            # Simulate the applied-but-unacknowledged state: write
            # straight to the primary, bypassing the coordinator's
            # bookkeeping (acked_lsn stays 0).
            member.primary.rpc({
                "op": "update", "update": "insert", "subject": subject,
                "predicate": "p", "object": "v", "time": 1000,
            })
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if member.replicas[0].rpc(
                    {"op": "status"}
                )["revision"] >= 1:
                    break
                time.sleep(0.05)
            os.kill(member.primary.pid, signal.SIGKILL)
            time.sleep(0.2)
            # The coordinator-level retry of the "same" write: failover
            # promotes the replica, the retry conflicts there, and the
            # promoted WAL proves the write committed.
            assert cluster.insert(subject, "p", "v", 1000) == 1
            assert member.acked_lsn == 1
            result = cluster.query(f"SELECT ?o {{{subject} p ?o ?t}}")
            assert [r["o"] for r in result.rows] == ["v"]

    def test_failover_is_noop_when_primary_already_replaced(
        self, tmp_path
    ):
        """The double-check: a thread that lost the failover race must
        not close the freshly promoted primary or consume a replica."""
        with ClusterStore(tmp_path / "clu", shards=1, replicas=1,
                          fsync=False) as cluster:
            member = cluster._members[0]
            primary, replicas = member.primary, list(member.replicas)
            stale = object()  # what a losing thread would still hold
            cluster._failover(member, stale, OSError("stale view"))
            assert member.primary is primary
            assert member.primary.alive
            assert member.replicas == replicas


class TestClusterMaintenance:
    def test_refresh_statistics_uses_stats_op_not_checkpoint(
        self, tmp_path
    ):
        from repro.service.wal import read_records

        with ClusterStore(tmp_path / "clu", shards=1,
                          fsync=False) as cluster:
            cluster.insert("a", "p", "v", 1000)
            cluster.insert("a", "q", "w", 1001)
            refreshed = cluster.refresh_statistics()
            assert isinstance(refreshed, bool)
            # a checkpoint would have truncated the primary's WAL
            wal = cluster._members[0].primary.directory \
                / TemporalStore.WAL_NAME
            assert len(read_records(wal)) == 2


def _walk_spans(span):
    yield span
    for child in span.children:
        yield from _walk_spans(child)


class TestClusterObservability:
    def test_scatter_query_yields_one_stitched_trace(self, tmp_path):
        """A traced scatter query returns a single span tree holding
        worker-side spans from at least two distinct processes, each
        annotated with shard_id/role/pid, with a per-hop clock-skew
        estimate on the grafting cluster.rpc span."""
        from repro.obs import trace as _trace

        with ClusterStore(tmp_path / "clu", shards=2,
                          fsync=False) as cluster:
            s0 = _subject_on_shard(0, 2)
            s1 = _subject_on_shard(1, 2, start=10_000)
            cluster.insert(s0, "p", "a", 1000)
            cluster.insert(s1, "p", "b", 1001)
            with _trace.start_trace("test.scatter") as trace:
                result = cluster.query("SELECT ?s ?o {?s p ?o ?t}")
            assert len(result.rows) == 2

        spans = list(_walk_spans(trace.root))
        remote = [
            s for s in spans
            if "pid" in s.attrs and "role" in s.attrs
            and "shard_id" in s.attrs
        ]
        pids = {s.attrs["pid"] for s in remote}
        assert len(pids) >= 2, "worker spans from two processes expected"
        assert os.getpid() not in pids
        assert {s.attrs["shard_id"] for s in remote} == {0, 1}
        assert all(s.attrs["role"] == "shard" for s in remote)
        assert all("remote_trace_id" in s.attrs for s in remote)
        # remote spans graft under the coordinator's cluster.rpc spans,
        # which carry the per-hop clock-skew/network estimates.
        stitched = [s for s in spans if "clock_skew_ms" in s.attrs]
        assert stitched
        assert all(s.name == "cluster.rpc" for s in stitched)
        assert all("net_ms" in s.attrs for s in stitched)
        # shifted worker spans stay inside the coordinator trace's
        # lifetime (the skew correction anchors them sanely).
        root_end = trace.root.end_ms
        for span in remote:
            assert -1000.0 < span.start_ms < root_end + 1000.0

    def test_untraced_rpc_carries_no_attachment(self, tmp_path):
        """Without a live coordinator trace the request has no trace_id
        and the response envelope must not grow a trace attachment."""
        from repro.cluster import protocol as _protocol

        with ClusterStore(tmp_path / "clu", shards=1,
                          fsync=False) as cluster:
            member = cluster._members[0]
            response = member.primary.rpc({"op": "status"})
            assert _protocol.TRACE_KEY not in response

    def test_federated_metrics_members_groups_and_lag(self, tmp_path):
        with ClusterStore(tmp_path / "clu", shards=2, replicas=1,
                          fsync=False) as cluster:
            s0 = _subject_on_shard(0, 2)
            s1 = _subject_on_shard(1, 2, start=10_000)
            cluster.insert(s0, "p", "a", 1000)
            cluster.insert(s1, "p", "b", 1001)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                status = cluster.cluster_status()
                if all(
                    replica["alive"] and replica["applied_lsn"]
                    == member["primary"]["applied_lsn"]
                    for member in status["members"]
                    for replica in member["replicas"]
                ):
                    break
                time.sleep(0.1)

            federated = cluster.federated_metrics(force=True)
            assert federated["scope"] == "cluster"
            assert federated["watermark"] == 2

            members = federated["members"]
            assert members[0]["role"] == "coordinator"
            roles = sorted(m["role"] for m in members)
            assert roles == ["coordinator", "replica", "replica",
                             "shard", "shard"]
            for entry in members[1:]:
                assert entry["alive"], entry
                assert entry["enabled"], entry
            replicas = [m for m in members if m["role"] == "replica"]
            for entry in replicas:
                assert entry["lag_lsn"] == 0
                lag_seconds = entry["lag_seconds"]
                assert lag_seconds is None or 0.0 <= lag_seconds < 60.0

            groups = {
                tuple(sorted(g["labels"].items())): g
                for g in federated["groups"]
            }
            for shard in (0, 1):
                merged = groups[(("role", "shard"),
                                 ("shard", str(shard)))]["metrics"]
                assert merged["counters"]["cluster.worker.requests"] > 0

            # pulls within max_age are served from the cache
            assert cluster.federated_metrics() is federated
            assert cluster.federated_metrics(force=True) is not federated

    def test_cluster_status_reports_replica_lag(self, tmp_path):
        with ClusterStore(tmp_path / "clu", shards=1, replicas=1,
                          fsync=False) as cluster:
            subject = _subject_on_shard(0, 1)
            cluster.insert(subject, "p", "v", 1000)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                status = cluster.cluster_status()
                replica = status["members"][0]["replicas"][0]
                if replica["alive"] and replica["applied_lsn"] == 1:
                    break
                time.sleep(0.05)
            assert replica["lag_lsn"] == 0
            assert (replica["lag_seconds"] is None
                    or replica["lag_seconds"] >= 0.0)

    def test_op_metrics_disabled_reports_empty(self):
        """REPRO_OBS=0 workers answer the metrics op with enabled=false
        and an empty snapshot, never frozen pre-disable series."""
        from repro.cluster import worker as cluster_worker
        from repro.obs import metrics

        class _Store:
            revision = 7

        class _State:
            role = "shard"
            store = _Store()

        metrics.set_enabled(False)
        try:
            response = cluster_worker._op_metrics(_State(), {})
        finally:
            metrics.set_enabled(True)
        assert response == {
            "ok": True, "enabled": False, "metrics": {},
            "role": "shard", "revision": 7, "lag_seconds": None,
        }


class TestClusterReporting:
    def test_status_shape_and_storage_report(self, tmp_path):
        with ClusterStore(tmp_path / "clu", shards=2, replicas=1,
                          fsync=False) as cluster:
            cluster.insert("a", "p", "v", 1000)
            status = cluster.cluster_status()
            assert status["shards"] == 2
            assert status["replicas_per_shard"] == 1
            assert len(status["members"]) == 2
            for member in status["members"]:
                assert member["primary"]["role"] == "shard"
                assert member["primary"]["alive"]
                assert len(member["replicas"]) == 1
            assert cluster.storage_report()["cluster"]["shards"] == 2
            assert cluster.live_facts == 1
