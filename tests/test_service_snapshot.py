"""Snapshots: full-engine round trip, magic detection, corruption handling."""

import pickle

import pytest

from repro.engine import RDFTX
from repro.model import NOW, TemporalGraph, date_to_chronon
from repro.mvbt.tree import MVBTConfig
from repro.optimizer import Optimizer
from repro.service.snapshot import (
    SNAPSHOT_MAGIC,
    SnapshotError,
    is_snapshot,
    load_snapshot,
    save_snapshot,
)

D = date_to_chronon

QUERIES = [
    "SELECT ?t {UC president Janet_Napolitano ?t}",
    "SELECT ?budget {UC budget ?budget ?t . FILTER(YEAR(?t) = 2013)}",
    "SELECT ?s ?o {?s president ?o ?t}",
    "SELECT ?p ?o {UC ?p ?o ?t . FILTER(YEAR(?t) = 2014)}",
]


def _fixture_graph():
    g = TemporalGraph()
    g.add("UC", "president", "Mark_Yudof", D("06/16/2008"), D("09/30/2013"))
    g.add("UC", "president", "Janet_Napolitano", D("09/30/2013"))
    g.add("UC", "endowment", "10.3", D("07/01/2013"), D("07/01/2014"))
    g.add("UC", "endowment", "13.1", D("07/01/2014"))
    g.add("UC", "budget", "22.7", D("01/30/2013"), D("01/30/2015"))
    g.add("UC", "budget", "25.46", D("01/30/2015"))
    g.add("UM", "president", "Mary_Sue_Coleman", D("08/01/2002"),
          D("07/01/2014"))
    g.add("UM", "president", "Mark_Schlissel", D("07/01/2014"))
    return g


def _rows(engine, text):
    return sorted(
        tuple(sorted((k, str(v)) for k, v in row.items()))
        for row in engine.query(text).rows
    )


@pytest.fixture()
def engine():
    return RDFTX.from_graph(
        _fixture_graph(),
        config=MVBTConfig(block_capacity=8, weak_min=2, epsilon=1),
        optimizer=Optimizer(),
    )


class TestRoundTrip:
    def test_queries_identical_after_reload(self, engine, tmp_path):
        path = save_snapshot(engine, tmp_path / "e.snap")
        restored, meta = load_snapshot(path)
        assert meta["version"] == 1
        for text in QUERIES:
            assert _rows(restored, text) == _rows(engine, text)

    def test_structure_preserved(self, engine, tmp_path):
        save_snapshot(engine, tmp_path / "e.snap")
        restored, _ = load_snapshot(tmp_path / "e.snap")
        for name, tree in engine.indexes.items():
            other = restored.indexes[name]
            assert other.live_records == tree.live_records
            assert other.current_time == tree.current_time
            assert other.sizeof() == tree.sizeof()
        assert restored.dictionary.max_id == engine.dictionary.max_id
        assert len(restored._graph) == len(engine._graph)

    def test_updates_after_reload(self, engine, tmp_path):
        save_snapshot(engine, tmp_path / "e.snap")
        restored, _ = load_snapshot(tmp_path / "e.snap")
        t = restored.horizon + 10
        restored.insert("UC", "president", "Michael_Drake", t)
        result = restored.query("SELECT ?o {UC president ?o ?t}")
        assert "Michael_Drake" in result.column("o")

    def test_statistics_survive_without_rebuild(self, engine, tmp_path):
        engine.query(QUERIES[0])  # force statistics to exist
        histogram = engine.optimizer.statistics.histogram
        save_snapshot(engine, tmp_path / "e.snap")
        restored, _ = load_snapshot(tmp_path / "e.snap")
        assert restored.optimizer is not None
        assert restored.optimizer.statistics is not None
        assert (restored.optimizer.statistics.histogram.total_triples
                == histogram.total_triples)

    def test_no_optimizer_load(self, engine, tmp_path):
        save_snapshot(engine, tmp_path / "e.snap")
        restored, _ = load_snapshot(tmp_path / "e.snap",
                                    use_optimizer=False)
        assert restored.optimizer is None
        assert _rows(restored, QUERIES[2]) == _rows(engine, QUERIES[2])

    def test_last_lsn_round_trip(self, engine, tmp_path):
        save_snapshot(engine, tmp_path / "e.snap", last_lsn=42)
        _, meta = load_snapshot(tmp_path / "e.snap")
        assert meta["last_lsn"] == 42

    def test_live_periods_preserved(self, engine, tmp_path):
        save_snapshot(engine, tmp_path / "e.snap")
        restored, _ = load_snapshot(tmp_path / "e.snap")
        result = restored.query(
            "SELECT ?t {UC president Janet_Napolitano ?t}"
        )
        (row,) = result
        (period,) = list(row["t"])
        assert period.end == NOW


class TestFileFormat:
    def test_is_snapshot(self, engine, tmp_path):
        path = save_snapshot(engine, tmp_path / "e.snap")
        assert is_snapshot(path)
        other = tmp_path / "data.tnq"
        other.write_text("UC president X 2013-01-01 now .\n")
        assert not is_snapshot(other)
        assert not is_snapshot(tmp_path / "missing")

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "x.snap"
        path.write_bytes(b"WRONGMAG" + b"rest")
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_truncated_payload_raises(self, engine, tmp_path):
        path = save_snapshot(engine, tmp_path / "e.snap")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "x.snap"
        with open(path, "wb") as handle:
            handle.write(SNAPSHOT_MAGIC)
            pickle.dump({"version": 999}, handle)
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_atomic_save_leaves_no_tmp(self, engine, tmp_path):
        save_snapshot(engine, tmp_path / "e.snap")
        assert list(tmp_path.iterdir()) == [tmp_path / "e.snap"]

    def test_overwrite_previous(self, engine, tmp_path):
        path = save_snapshot(engine, tmp_path / "e.snap", last_lsn=1)
        engine.insert("UC", "color", "blue", engine.horizon + 1)
        save_snapshot(engine, path, last_lsn=2)
        restored, meta = load_snapshot(path)
        assert meta["last_lsn"] == 2
        assert restored.query("SELECT ?o {UC color ?o ?t}").rows
