"""Tests for the delta compression of MVBT leaves (Section 4.2)."""
# repro-lint: disable-file=RL005 — the codec's own tests construct the store

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.time import MIN_TIME, NOW, Period, PeriodSet
from repro.mvbt import (
    MAX_KEY,
    MIN_KEY,
    MVBT,
    MVBTConfig,
    collect_validity,
)
from repro.mvbt.compression import (
    CompressedLeafStore,
    CompressionError,
    STANDARD_ENTRY_BYTES,
    _len_code,
    _unzigzag,
    _zigzag,
)
from repro.mvbt.entry import LeafEntry

SMALL = MVBTConfig(block_capacity=8, weak_min=2, epsilon=1)


class TestCodecPrimitives:
    @given(st.integers(min_value=-(2**31), max_value=2**31))
    def test_zigzag_roundtrip(self, value):
        assert _unzigzag(_zigzag(value)) == value

    def test_zigzag_keeps_small_magnitudes_small(self):
        assert _zigzag(0) == 0
        assert _zigzag(-1) == 1
        assert _zigzag(1) == 2

    def test_len_code_boundaries(self):
        assert _len_code(0) == 0
        assert _len_code(255) == 1
        assert _len_code(256) == 2
        assert _len_code(65535) == 2
        assert _len_code(65536) == 3

    def test_len_code_overflow(self):
        with pytest.raises(CompressionError):
            _len_code(2**40)


def entry(v1, v2, v3, ts, te=NOW):
    return LeafEntry((v1, v2, v3), ts, te, None)


class TestStoreRoundtrip:
    def test_empty(self):
        store = CompressedLeafStore([])
        assert store.entries() == ()
        assert store.count == 0

    def test_single_live_entry(self):
        entries = [entry(100, 200, 300, 50)]
        store = CompressedLeafStore(entries)
        assert list(store.entries()) == entries

    def test_mixed_entries(self):
        entries = [
            entry(100, 200, 300, 50, 60),
            entry(100, 200, 301, 55),
            entry(100, 205, 9, 55, NOW - 1),  # long finite interval
            entry(7, 1, 2, 58),
        ]
        store = CompressedLeafStore(entries)
        assert list(store.entries()) == entries

    def test_compact_header_used_for_shared_prefix(self):
        """Consecutive live entries sharing v1 use the 1-byte header."""
        entries = [
            entry(42, 5, 7, 10),
            entry(42, 5, 8, 11),
            entry(42, 6, 1, 11),
        ]
        store = CompressedLeafStore(entries)
        assert list(store.entries()) == entries
        # First entry is normal (2-byte header); followers are compact and
        # tiny: well under the uncompressed 40 bytes each.
        assert len(store._buf) < 3 * 12

    def test_append_after_build(self):
        store = CompressedLeafStore([entry(1, 2, 3, 5)])
        store.append(entry(1, 2, 4, 9))
        assert [e.key for e in store.entries()] == [(1, 2, 3), (1, 2, 4)]

    def test_append_below_base_value(self):
        """Appends smaller than the node minima still roundtrip (zigzag)."""
        store = CompressedLeafStore([entry(100, 100, 100, 50)])
        store.append(entry(1, 1, 1, 50))
        assert store.entries()[1].key == (1, 1, 1)

    def test_append_time_regression_rejected(self):
        store = CompressedLeafStore([entry(1, 2, 3, 50)])
        with pytest.raises(CompressionError):
            store.append(entry(1, 2, 4, 10))

    def test_end_live(self):
        store = CompressedLeafStore(
            [entry(1, 2, 3, 5), entry(1, 2, 4, 6)]
        )
        assert store.end_live((1, 2, 3), 9)
        first, second = store.entries()
        assert first.end == 9
        assert second.end == NOW

    def test_end_live_missing(self):
        store = CompressedLeafStore([entry(1, 2, 3, 5)])
        assert not store.end_live((9, 9, 9), 7)

    def test_payload_rejected(self):
        with pytest.raises(CompressionError):
            CompressedLeafStore([LeafEntry((1, 2, 3), 5, NOW, "data")])

    def test_sizeof_beats_standard(self):
        entries = [entry(7, 3, i, 100 + i) for i in range(50)]
        store = CompressedLeafStore(entries)
        assert store.sizeof() < STANDARD_ENTRY_BYTES * len(entries)


@st.composite
def entry_lists(draw):
    # Respect the MVBT leaf invariants the store assumes: (key, start)
    # identifies an entry, and at most one entry per key is live —
    # inserting a duplicate live key raises DuplicateKeyError upstream.
    n = draw(st.integers(min_value=0, max_value=40))
    out = []
    seen = set()
    live_keys = set()
    ts = 0
    for _ in range(n):
        ts += draw(st.integers(min_value=0, max_value=1000))
        v1 = draw(st.integers(min_value=1, max_value=2**30))
        v2 = draw(st.integers(min_value=1, max_value=2**30))
        v3 = draw(st.integers(min_value=1, max_value=2**30))
        if draw(st.booleans()):
            te = NOW
        else:
            te = ts + draw(st.integers(min_value=1, max_value=2**20))
        key = (v1, v2, v3)
        if (key, ts) in seen or (te == NOW and key in live_keys):
            continue
        seen.add((key, ts))
        if te == NOW:
            live_keys.add(key)
        out.append(entry(v1, v2, v3, ts, te))
    return out


@settings(max_examples=100, deadline=None)
@given(entry_lists())
def test_roundtrip_property(entries):
    store = CompressedLeafStore(entries)
    assert list(store.entries()) == entries


@settings(max_examples=40, deadline=None)
@given(entry_lists(), st.integers(0, 39))
def test_end_live_property(entries, which):
    live = [e for e in entries if e.end == NOW]
    store = CompressedLeafStore(entries)
    if not live:
        return
    target = live[which % len(live)]
    te = max(e.start for e in entries) + 5
    assert store.end_live(target.key, te)
    decoded = store.entries()
    changed = [e for e in decoded if e.key == target.key and e.end == te]
    assert changed, "target entry not updated"
    untouched = [
        (e.key, e.start, e.end) for e in entries if e is not target
    ]
    got_rest = [
        (e.key, e.start, e.end)
        for e in decoded
        if not (e.key == target.key and e.start == target.start)
    ]
    assert got_rest == untouched


class TestCompressedTree:
    def _build(self, n=200, seed=3):
        rng = random.Random(seed)
        tree = MVBT(SMALL)
        live = set()
        time = 0
        for _ in range(n):
            time += rng.randint(0, 2)
            k = (rng.randint(0, 30), rng.randint(0, 3), rng.randint(0, 3))
            if k in live and rng.random() < 0.4:
                tree.delete(k, time)
                live.discard(k)
            elif k not in live:
                tree.insert(k, time)
                live.add(k)
        return tree, time

    def test_queries_identical_after_compression(self):
        tree, _ = self._build()
        before = collect_validity(tree)
        tree.compress()
        assert all(leaf.is_compressed for leaf in tree.leaf_nodes())
        after = collect_validity(tree)
        assert before == after

    def test_decompress_restores(self):
        tree, _ = self._build()
        before = collect_validity(tree)
        tree.compress()
        tree.decompress()
        assert not any(leaf.is_compressed for leaf in tree.leaf_nodes())
        assert collect_validity(tree) == before

    def test_windowed_queries_after_compression(self):
        tree, time = self._build(400, seed=9)
        windows = [(0, time // 3), (time // 3, time), (time // 2, time // 2 + 1)]
        expected = {
            w: collect_validity(tree, MIN_KEY, MAX_KEY, *w) for w in windows
        }
        tree.compress()
        for w in windows:
            assert collect_validity(tree, MIN_KEY, MAX_KEY, *w) == expected[w]

    def test_updates_on_compressed_tree(self):
        """Section 4.2.2: maintenance keeps working after compression."""
        tree, time = self._build()
        tree.compress()
        tree.insert((99, 0, 0), time + 1)
        tree.delete((99, 0, 0), time + 5)
        tree.check_invariants()
        got = collect_validity(tree, (99,), (100,))
        assert got == {(99, 0, 0): PeriodSet([Period(time + 1, time + 5)])}

    def test_compression_saves_space(self):
        tree, _ = self._build(2000, seed=11)
        standard = tree.sizeof()
        tree.compress()
        compressed = tree.sizeof()
        assert compressed < standard * 0.7

    def test_mixed_mode_updates_match_reference(self):
        """Interleave compression with updates; match an uncompressed twin."""
        rng = random.Random(21)
        tree = MVBT(SMALL)
        shadow = MVBT(SMALL)
        live = set()
        time = 0
        for step in range(600):
            time += rng.randint(0, 2)
            k = (rng.randint(0, 20), 0, rng.randint(0, 4))
            if k in live and rng.random() < 0.4:
                tree.delete(k, time)
                shadow.delete(k, time)
                live.discard(k)
            elif k not in live:
                tree.insert(k, time)
                shadow.insert(k, time)
                live.add(k)
            if step in (150, 400):
                tree.compress()
        tree.check_invariants()
        assert collect_validity(tree) == collect_validity(shadow)
