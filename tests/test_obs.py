"""Observability layer: metrics registry, kill switch, query profiles."""

import json

import pytest

from repro.engine import RDFTX
from repro.model import TemporalGraph, date_to_chronon
from repro.mvbt.tree import MVBTConfig
from repro.obs import (
    REGISTRY,
    ProfileNode,
    QueryProfile,
    Registry,
    set_enabled,
)
from repro.obs import metrics as obs_metrics
from repro.optimizer import Optimizer

D = date_to_chronon


@pytest.fixture(autouse=True)
def obs_on():
    """Force instrumentation on for these tests, restoring afterwards."""
    previous = set_enabled(True)
    yield
    set_enabled(previous)


@pytest.fixture(scope="module")
def graph():
    g = TemporalGraph()
    g.add("UC", "president", "Mark_Yudof", D("06/16/2008"), D("09/30/2013"))
    g.add("UC", "president", "Janet_Napolitano", D("09/30/2013"))
    g.add("UC", "budget", "22.7", D("01/30/2013"), D("01/30/2015"))
    g.add("UC", "budget", "25.46", D("01/30/2015"))
    g.add("UM", "president", "Mary_Sue_Coleman", D("08/01/2002"),
          D("07/01/2014"))
    g.add("UM", "budget", "6.6", D("01/01/2013"))
    return g


CONFIG = MVBTConfig(block_capacity=8, weak_min=2, epsilon=1)


@pytest.fixture(scope="module")
def engine(graph):
    return RDFTX.from_graph(graph, config=CONFIG, optimizer=Optimizer())


class TestCounters:
    def test_inc_and_value(self):
        reg = Registry()
        c = reg.counter("t.c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_same_name_same_object(self):
        reg = Registry()
        assert reg.counter("x") is reg.counter("x")

    def test_reset_keeps_object(self):
        reg = Registry()
        c = reg.counter("x")
        c.inc(3)
        reg.reset()
        assert c.value == 0
        c.inc()
        assert reg.counter("x").value == 1

    def test_disabled_is_noop(self):
        reg = Registry()
        c = reg.counter("x")
        set_enabled(False)
        c.inc(100)
        set_enabled(True)
        assert c.value == 0

    def test_counter_values(self):
        reg = Registry()
        reg.counter("a").inc(2)
        assert reg.counter_values(["a", "b"]) == {"a": 2, "b": 0}

    def test_gauge(self):
        reg = Registry()
        g = reg.gauge("g")
        g.set(7.5)
        assert g.value == 7.5
        set_enabled(False)
        g.set(1.0)
        set_enabled(True)
        assert g.value == 7.5


class TestTimers:
    def test_observe_aggregates(self):
        reg = Registry()
        stat = reg.timer_stat("t")
        stat.observe(0.010)
        stat.observe(0.030)
        assert stat.count == 2
        assert stat.total == pytest.approx(0.040)
        assert stat.mean == pytest.approx(0.020)
        assert stat.min == pytest.approx(0.010)
        assert stat.max == pytest.approx(0.030)
        d = stat.as_dict()
        assert d["count"] == 2
        assert d["mean_ms"] == pytest.approx(20.0)

    def test_context_manager(self):
        reg = Registry()
        with reg.timer("t"):
            pass
        assert reg.timer_stat("t").count == 1
        assert reg.timer_stat("t").total >= 0.0

    def test_decorator(self):
        reg = Registry()

        @reg.timer("t")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert reg.timer_stat("t").count == 1
        assert work.__name__ == "work"

    def test_disabled_skips_clock(self):
        reg = Registry()
        set_enabled(False)
        with reg.timer("t"):
            pass
        set_enabled(True)
        assert reg.timer_stat("t").count == 0

    def test_empty_stat_as_dict(self):
        stat = Registry().timer_stat("t")
        assert stat.as_dict()["min_ms"] == 0.0
        assert stat.mean == 0.0


class TestRegistry:
    def test_snapshot_shape(self):
        reg = Registry()
        reg.counter("c").inc()
        reg.gauge("g").set(2.0)
        reg.timer_stat("t").observe(0.001)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["timers"]["t"]["count"] == 1

    def test_render_text_and_json(self):
        reg = Registry()
        reg.counter("my.counter").inc(3)
        text = reg.render_text()
        assert "my.counter" in text and "3" in text
        parsed = json.loads(reg.render_json())
        assert parsed["counters"]["my.counter"] == 3

    def test_render_empty(self):
        assert Registry().render_text() == "(no metrics recorded)"

    def test_set_enabled_returns_previous(self):
        assert set_enabled(False) is True
        assert set_enabled(True) is False
        assert obs_metrics.enabled()


class TestQErrors:
    def test_exact_estimate(self):
        node = ProfileNode(op="scan", est_rows=10, actual_rows=10)
        assert node.qerror == pytest.approx(1.0)

    def test_over_and_under_estimates_symmetric(self):
        over = ProfileNode(op="scan", est_rows=50, actual_rows=10)
        under = ProfileNode(op="scan", est_rows=10, actual_rows=50)
        assert over.qerror == pytest.approx(5.0)
        assert under.qerror == pytest.approx(5.0)

    def test_floored_at_one_row(self):
        node = ProfileNode(op="scan", est_rows=0.01, actual_rows=0)
        assert node.qerror == pytest.approx(1.0)

    def test_missing_sides(self):
        assert ProfileNode(op="scan", est_rows=None, actual_rows=5).qerror \
            is None
        assert ProfileNode(op="scan", est_rows=5, actual_rows=None).qerror \
            is None

    def test_profile_max_qerror(self):
        root = ProfileNode(op="project", children=[
            ProfileNode(op="scan", detail="p1", est_rows=2, actual_rows=4),
            ProfileNode(op="scan", detail="p2", est_rows=9, actual_rows=3),
        ])
        prof = QueryProfile(root=root)
        assert [p for p, *_ in prof.pattern_qerrors()] == ["p1", "p2"]
        assert prof.max_qerror() == pytest.approx(3.0)


class TestQueryProfiles:
    def test_no_profile_by_default(self, engine):
        result = engine.query("SELECT ?p {UC president ?p ?t}")
        assert result.profile is None

    def test_selection_profile_shape(self, engine):
        result = engine.query("SELECT ?p {UC president ?p ?t}",
                              profile=True)
        prof = result.profile
        assert prof is not None
        assert prof.root.op == "project"
        assert prof.root.actual_rows == len(result)
        ops = [n.op for n in prof.iter_nodes()]
        assert "scan" in ops
        scan = next(n for n in prof.iter_nodes() if n.op == "scan")
        assert "president" in scan.detail
        assert scan.actual_rows == 2
        assert scan.est_rows is not None  # optimizer attached
        assert prof.total_ms > 0.0

    def test_join_profile_shape(self, engine):
        result = engine.query(
            "SELECT ?p ?b {UC president ?p ?t . UC budget ?b ?t}",
            profile=True,
        )
        prof = result.profile
        assert prof is not None
        ops = [n.op for n in prof.iter_nodes()]
        assert ops[0] == "project"
        # Two patterns produce either a synchronized or a hash join.
        assert ("sync join" in ops) or ("hash join" in ops)
        scans = [n for n in prof.iter_nodes() if n.op == "scan"]
        assert len(scans) == 2
        join = next(n for n in prof.iter_nodes()
                    if n.op in ("sync join", "hash join"))
        assert join.actual_rows == len(result)
        assert join.est_rows is not None

    def test_profile_render_and_dict(self, engine):
        result = engine.query(
            "SELECT ?p ?b {UC president ?p ?t . UC budget ?b ?t}",
            profile=True,
        )
        text = result.profile.render()
        assert "Total:" in text
        assert "est=" in text and "actual=" in text
        d = result.profile.to_dict()
        assert set(d) == {"total_ms", "max_qerror", "plan"}
        json.dumps(d)  # must be serializable

    def test_scan_counters_attached(self, engine):
        result = engine.query("SELECT ?p {UC president ?p ?t}",
                              profile=True)
        scan = next(n for n in result.profile.iter_nodes()
                    if n.op == "scan")
        assert scan.extra.get("entries", 0) >= scan.actual_rows

    def test_kill_switch_suppresses_profile(self, engine):
        set_enabled(False)
        try:
            result = engine.query("SELECT ?p {UC president ?p ?t}",
                                  profile=True)
        finally:
            set_enabled(True)
        assert result.profile is None

    def test_engine_counters_advance(self, engine):
        before = REGISTRY.counter("engine.queries").value
        engine.query("SELECT ?p {UC president ?p ?t}")
        assert REGISTRY.counter("engine.queries").value == before + 1

    def test_group_query_profiles(self, engine):
        result = engine.query(
            "SELECT ?p {{UC president ?p ?t} UNION {UM president ?p ?t}}",
            profile=True,
        )
        assert result.profile is not None
        assert result.profile.root.op == "project"


class TestResultTable:
    def test_to_table_empty_projection(self, engine):
        from repro.engine.engine import QueryResult

        result = QueryResult(variables=[], rows=[{}, {}])
        assert result.to_table() == "(2 row(s), no variables)"

    def test_to_table_no_rows(self, engine):
        from repro.engine.engine import QueryResult

        table = QueryResult(variables=["x"], rows=[]).to_table()
        assert "x" in table


class TestHarnessHelpers:
    def test_archive_profiles(self, engine, tmp_path):
        from repro.bench.harness import archive_profiles

        out = tmp_path / "nested" / "profiles.json"
        n = archive_profiles(
            engine, ["SELECT ?p {UC president ?p ?t}"], out
        )
        assert n == 1
        payload = json.loads(out.read_text())
        assert payload[0]["plan"]["op"] == "project"

    def test_archive_profiles_baseline(self, tmp_path):
        from repro.bench.harness import archive_profiles

        class NoProfile:
            def query(self, text):
                return None

        out = tmp_path / "profiles.json"
        assert archive_profiles(NoProfile(), ["q"], out) == 0
        assert json.loads(out.read_text()) == []

    def test_snapshot_delta(self):
        from repro.bench.harness import _snapshot_delta

        before = {"counters": {"a": 1, "b": 2}, "timers": {}}
        after = {"counters": {"a": 4, "b": 2, "c": 7}, "timers": {}}
        assert _snapshot_delta(before, after) == {
            "counters": {"a": 3, "c": 7}
        }
