"""End-to-end property test: RDFTX vs a brute-force reference evaluator.

The reference evaluates single patterns by scanning all triples and joins
by nested loops with chronon-set intersection — obviously correct, obviously
slow.  Random graphs and random queries must agree exactly.
"""

import random

import pytest

from repro.engine import RDFTX
from repro.model import NOW, Period, PeriodSet, TemporalGraph
from repro.model.time import year_range
from repro.sparqlt.ast import QuadPattern, Query, TermConst, TimeConst, Var


def brute_force(graph: TemporalGraph, query: Query, horizon: int):
    """Reference evaluation of a conjunctive SPARQLT query (no filters)."""
    decode = graph.dictionary.decode
    triples = [
        (decode(t.subject), decode(t.predicate), decode(t.object), t.period)
        for t in graph
    ]

    def match(pattern):
        groups = {}
        for s, p, o, period in triples:
            binding = {}
            ok = True
            for term, value in (
                (pattern.subject, s),
                (pattern.predicate, p),
                (pattern.object, o),
            ):
                if isinstance(term, TermConst):
                    if term.value != value:
                        ok = False
                        break
                else:
                    if term.name in binding and binding[term.name] != value:
                        ok = False
                        break
                    binding[term.name] = value
            if not ok:
                continue
            window = (
                Period.point(pattern.time.chronon)
                if isinstance(pattern.time, TimeConst)
                else Period.always()
            )
            clipped = PeriodSet.single(period).restrict(window)
            if clipped.is_empty:
                continue
            key = tuple(sorted(binding.items()))
            groups.setdefault(key, PeriodSet())
            groups[key] = groups[key].union(clipped)
        rows = []
        for key, periods in groups.items():
            row = dict(key)
            if isinstance(pattern.time, Var):
                row[pattern.time.name] = periods
            rows.append(row)
        return rows

    rows = None
    for pattern in query.patterns:
        scanned = match(pattern)
        if rows is None:
            rows = scanned
            continue
        joined = []
        for left in rows:
            for right in scanned:
                merged = dict(left)
                ok = True
                for name, value in right.items():
                    if name in merged:
                        if isinstance(value, PeriodSet):
                            common = merged[name].intersect(value)
                            if common.is_empty:
                                ok = False
                                break
                            merged[name] = common
                        elif merged[name] != value:
                            ok = False
                            break
                    else:
                        merged[name] = value
                if ok:
                    joined.append(merged)
        rows = joined
    # Project + dedupe like the engine does.
    seen = set()
    out = []
    for row in rows or []:
        projected = tuple(
            (name, str(row.get(name))) for name in query.select
        )
        if projected not in seen:
            seen.add(projected)
            out.append(projected)
    return sorted(out)


def random_graph(rng: random.Random, n: int) -> TemporalGraph:
    graph = TemporalGraph()
    live: dict[tuple, int] = {}
    time = 0
    for _ in range(n):
        time += rng.randint(0, 3)
        fact = (
            f"s{rng.randint(0, 8)}",
            f"p{rng.randint(0, 4)}",
            f"o{rng.randint(0, 6)}",
        )
        if live.get(fact, -1) > time:
            continue  # previous interval for this fact still open
        end = NOW if rng.random() < 0.3 else time + rng.randint(1, 40)
        live[fact] = end
        graph.add(*fact, time, end)
    return graph


def random_query(rng: random.Random, graph: TemporalGraph) -> Query:
    decode = graph.dictionary.decode
    triples = list(graph)

    def random_pattern(time_var):
        anchor = rng.choice(triples)
        subject = (
            TermConst(decode(anchor.subject))
            if rng.random() < 0.5
            else Var(f"v{rng.randint(0, 2)}")
        )
        predicate = (
            TermConst(decode(anchor.predicate))
            if rng.random() < 0.7
            else Var(f"w{rng.randint(0, 1)}")
        )
        object_ = (
            TermConst(decode(anchor.object))
            if rng.random() < 0.3
            else Var(f"x{rng.randint(0, 2)}")
        )
        if rng.random() < 0.15:
            time = TimeConst(anchor.period.start)
        else:
            time = Var(time_var)
        return QuadPattern(subject, predicate, object_, time)

    n_patterns = rng.randint(1, 3)
    shared_time = rng.random() < 0.6
    patterns = [
        random_pattern("t" if shared_time else f"t{i}")
        for i in range(n_patterns)
    ]
    variables = sorted({v for p in patterns for v in p.variables()})
    select = variables or ["t"]
    return Query(select=select, patterns=patterns)


@pytest.mark.parametrize("seed", range(12))
def test_engine_matches_brute_force(seed):
    rng = random.Random(seed)
    graph = random_graph(rng, 120)
    engine = RDFTX.from_graph(graph)
    for _ in range(6):
        query = random_query(rng, graph)
        got = sorted(
            tuple((name, str(row.get(name))) for name in query.select)
            for row in engine.query(query)
        )
        expected = brute_force(graph, query, engine.horizon)
        assert got == expected, f"query: {[str(p) for p in query.patterns]}"
