"""Tests for the query optimizer: statistics, cost model, DP ordering."""

import pytest

from repro.datasets import wikipedia
from repro.engine import RDFTX
from repro.engine.patterns import translate_pattern
from repro.engine.plan import PlanGraph
from repro.model import TemporalGraph
from repro.model.time import MIN_TIME, NOW
from repro.mvsbt.histogram import CharacteristicSets, TemporalHistogram
from repro.optimizer import (
    Optimizer,
    Statistics,
    enumerate_orders,
    estimate_order_cost,
    optimize,
)
from repro.sparqlt import parse


@pytest.fixture(scope="module")
def dataset():
    return wikipedia.generate(3000, seed=13)


@pytest.fixture(scope="module")
def stats(dataset):
    # A toy graph cannot reach the paper's 10% space budget (the histogram
    # has a size floor); give it room so estimates stay meaningful.
    return Statistics.build(dataset.graph, cm=4, lm=4, budget_fraction=2.0)


def build_graph(engine_or_graph, text):
    query = parse(text)
    graph = engine_or_graph
    conjuncts = query.filter_conjuncts()
    patterns = [
        translate_pattern(p, graph.dictionary, conjuncts)
        for p in query.patterns
    ]
    return PlanGraph.build(query, patterns)


class TestCharacteristicSets:
    def test_paper_example(self):
        """Subjects with the same predicates share a characteristic set."""
        g = TemporalGraph()
        g.add("UC", "president", "a", 1, 10)
        g.add("UC", "undergraduate", "x", 1, 10)
        g.add("UM", "president", "b", 1, 10)
        g.add("UM", "undergraduate", "y", 1, 10)
        g.add("Lonely", "motto", "z", 1, 10)
        charsets = CharacteristicSets.from_graph(g)
        assert len(charsets) == 2
        uc = charsets.of_subject[g.dictionary.lookup("UC")]
        um = charsets.of_subject[g.dictionary.lookup("UM")]
        assert uc == um

    def test_with_predicate_index(self):
        g = TemporalGraph()
        g.add("A", "p", "1", 1, 5)
        g.add("B", "q", "1", 1, 5)
        charsets = CharacteristicSets.from_graph(g)
        pid = g.dictionary.lookup("p")
        assert len(charsets.with_predicate[pid]) == 1


class TestHistogram:
    def test_budget_pressure_coarsens(self, dataset):
        """A tight budget doubles the thresholds and shrinks the histogram
        (small graphs cannot always reach the paper's 8.5% because the
        charset schema and side tables put a floor under the size)."""
        loose = TemporalHistogram(cm=2, lm=2, budget_fraction=10.0)
        loose.build(dataset.graph)
        tight = TemporalHistogram(cm=2, lm=2, budget_fraction=0.02)
        tight.build(dataset.graph)
        assert tight.cm > loose.cm
        assert tight.sizeof() <= loose.sizeof()

    def test_subject_counts_roughly_correct(self, dataset):
        histogram = TemporalHistogram(cm=4, lm=4, budget_fraction=0.2)
        histogram.build(dataset.graph)
        total_subjects = dataset.graph.distinct_subjects()
        estimate = sum(
            histogram.subjects_alive(cs, MIN_TIME, NOW)
            for cs in range(len(histogram.charsets))
        )
        assert estimate == pytest.approx(total_subjects, rel=0.1)

    def test_occurrences_roughly_correct(self, dataset):
        histogram = TemporalHistogram(cm=4, lm=4, budget_fraction=0.2)
        histogram.build(dataset.graph)
        estimate = histogram.triples_alive(MIN_TIME, NOW)
        assert estimate == pytest.approx(len(dataset.graph), rel=0.1)


class TestStatistics:
    def test_paper_characteristic_set_formula(self):
        """The Section 6.1 worked example: 100 subjects, occurrences 150 and
        110 give a star estimate of 165."""
        g = TemporalGraph()
        for i in range(100):
            subject = f"uni_{i}"
            for copy in range(2 if i < 50 else 1):  # 150 president triples
                g.add(subject, "president", f"p{i}_{copy}", 1 + copy * 10,
                      5 + copy * 10)
            for copy in range(2 if i < 10 else 1):  # 110 undergrad triples
                g.add(subject, "undergraduate", f"u{i}_{copy}",
                      1 + copy * 10, 5 + copy * 10)
        stats = Statistics.build(g, cm=1, lm=1, budget_fraction=10.0)
        pid1 = g.dictionary.lookup("president")
        pid2 = g.dictionary.lookup("undergraduate")
        estimate = stats.star_join_cardinality([pid1, pid2], MIN_TIME, NOW)
        assert estimate == pytest.approx(165.0, rel=0.05)

    def test_pattern_estimates_track_reality(self, dataset, stats):
        engine = RDFTX.from_graph(dataset.graph)
        for text in (
            "SELECT ?s ?o {?s club ?o ?t}",
            "SELECT ?s ?o {?s gdp ?o ?t}",
        ):
            graph = build_graph(dataset.graph, text)
            estimate = stats.pattern_cardinality(graph.patterns[0])
            actual = len(engine.query(text))
            assert estimate == pytest.approx(actual, rel=0.5)

    def test_cache(self, dataset, stats):
        stats.clear_cache()
        graph = build_graph(dataset.graph, "SELECT ?s ?o {?s club ?o ?t}")
        first = stats.pattern_cardinality(graph.patterns[0])
        assert stats.pattern_cardinality(graph.patterns[0]) == first
        assert len(stats._cache) == 1


class TestDP:
    def test_single_pattern(self, dataset, stats):
        graph = build_graph(dataset.graph, "SELECT ?s ?o {?s club ?o ?t}")
        order, cost = optimize(graph, stats)
        assert order == [0]

    def test_order_is_permutation(self, dataset, stats):
        text = (
            "SELECT ?s {?s population ?a ?t . ?s mayor ?b ?t . "
            "?s area ?c ?t . ?s country ?d ?t}"
        )
        graph = build_graph(dataset.graph, text)
        order, cost = optimize(graph, stats)
        assert sorted(order) == [0, 1, 2, 3]
        assert cost > 0

    def test_dp_at_least_as_good_as_exhaustive(self, dataset, stats):
        """The DP plan's estimated cost matches the best left-deep order."""
        text = (
            "SELECT ?s {?s population ?a ?t . ?s mayor ?b ?t . "
            "?s area ?c ?t}"
        )
        graph = build_graph(dataset.graph, text)
        order, cost = optimize(graph, stats)
        best = min(
            estimate_order_cost(graph, stats, o)
            for o in enumerate_orders(graph, stats)
        )
        assert cost <= best * 1.01

    def test_engine_with_optimizer_agrees(self, dataset):
        plain = RDFTX.from_graph(dataset.graph)
        optimized = RDFTX.from_graph(dataset.graph, optimizer=Optimizer(cm=4, lm=4))
        text = (
            "SELECT ?s ?a ?b {?s population ?a ?t . ?s mayor ?b ?t . "
            "FILTER(YEAR(?t) = 2012)}"
        )
        rows_plain = sorted(map(repr, plain.query(text)))
        rows_opt = sorted(map(repr, optimized.query(text)))
        assert rows_plain == rows_opt

    def test_optimizer_prefers_selective_anchor(self, dataset, stats):
        """A constant-object pattern should be joined before a huge scan."""
        triple = next(iter(dataset.graph))
        decode = dataset.graph.dictionary.decode
        subject = decode(triple.subject)
        predicate = decode(triple.predicate)
        obj = decode(triple.object)
        text = (
            f"SELECT ?s ?o {{?s ?p ?o ?t . ?s {predicate} {obj} ?t}}"
        )
        graph = build_graph(dataset.graph, text)
        order, _ = optimize(graph, stats)
        assert order[0] == 1  # the selective pattern leads
