"""Tests for the by-example convenience API (demo-paper access patterns)
and the NG4J baseline from the technical report."""

import pytest

from repro.baselines import NamedGraphBaseline, Ng4jBaseline
from repro.engine import RDFTX
from repro.model import NOW, Period, PeriodSet, TemporalGraph, date_to_chronon

D = date_to_chronon


@pytest.fixture(scope="module")
def engine():
    g = TemporalGraph()
    g.add("UC", "president", "Yudof", D("2008-06-16"), D("2013-09-30"))
    g.add("UC", "president", "Napolitano", D("2013-09-30"))
    g.add("UC", "budget", "22.7", D("2013-01-30"), D("2015-01-30"))
    g.add("UC", "budget", "25.46", D("2015-01-30"))
    return RDFTX.from_graph(g)


class TestWhen:
    def test_when_finds_validity(self, engine):
        ps = engine.when("UC", "president", "Yudof")
        assert ps == PeriodSet(
            [Period(D("2008-06-16"), D("2013-09-30"))]
        )

    def test_when_unknown_fact(self, engine):
        assert engine.when("UC", "president", "Nobody").is_empty
        assert engine.when("MIT", "president", "Yudof").is_empty


class TestSnapshot:
    def test_snapshot_returns_infobox(self, engine):
        box = engine.snapshot("UC", D("2014-01-01"))
        assert box == {
            "president": ["Napolitano"],
            "budget": ["22.7"],
        }

    def test_snapshot_before_history(self, engine):
        assert engine.snapshot("UC", D("2000-01-01")) == {}


class TestHistory:
    def test_full_history_sorted(self, engine):
        rows = engine.history("UC")
        predicates = [r[0] for r in rows]
        assert predicates == sorted(predicates)
        assert len(rows) == 4

    def test_predicate_history(self, engine):
        rows = engine.history("UC", "president")
        assert [r[1] for r in rows] == ["Yudof", "Napolitano"]
        assert rows[0][2].last() + 1 == rows[1][2].first()

    def test_history_unknown_subject(self, engine):
        assert engine.history("MIT") == []


class TestNg4j:
    @pytest.fixture(scope="class")
    def graph(self):
        from repro.datasets import wikipedia

        return wikipedia.generate(1200, seed=4).graph

    def test_agrees_with_jena_ng(self, graph):
        jena = NamedGraphBaseline.from_graph(graph)
        ng4j = Ng4jBaseline.from_graph(graph)
        for text in (
            "SELECT ?s ?o {?s club ?o ?t . FILTER(YEAR(?t) = 2010)}",
            "SELECT ?s {?s population ?o 2011-06-01}",
        ):
            assert sorted(map(repr, ng4j.query(text))) == sorted(
                map(repr, jena.query(text))
            )

    def test_bigger_than_jena_ng(self, graph):
        jena = NamedGraphBaseline.from_graph(graph)
        ng4j = Ng4jBaseline.from_graph(graph)
        assert ng4j.sizeof() > jena.sizeof()

    def test_visits_every_graph_on_narrow_windows(self, graph):
        """NG4J inspects every graph; Jena NG's interval sweep exits early."""

        class CountingDict(dict):
            def __init__(self, *args):
                super().__init__(*args)
                self.reads = 0

            def __getitem__(self, key):
                self.reads += 1
                return super().__getitem__(key)

            def items(self):
                self.reads += len(self)
                return super().items()

        text = "SELECT ?s ?o {?s club ?o 2006-01-15}"

        jena = NamedGraphBaseline.from_graph(graph)
        jena.graphs = CountingDict(jena.graphs)
        jena.query(text)
        ng4j = Ng4jBaseline.from_graph(graph)
        ng4j.graphs = CountingDict(ng4j.graphs)
        ng4j.query(text)

        total = len(ng4j.graphs)
        assert ng4j.graphs.reads >= total  # no metadata index: full visit
        assert jena.graphs.reads < total  # interval sweep prunes
