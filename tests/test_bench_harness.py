"""Tests for the benchmark harness and the experiment drivers' fast paths."""

import os

import pytest

from repro.bench import harness
from repro.bench.harness import format_table, mb, scaled, time_callable
from repro.bench.sizing import (
    compressed_mvbt_size,
    standard_mvbt_size,
    system_sizes,
)
from repro.datasets import wikipedia
from repro.engine import RDFTX


class TestHarness:
    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert harness.scale() == 2.5
        assert scaled(1000) == 2500

    def test_scaled_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.001")
        assert scaled(1000, minimum=200) == 200

    def test_time_callable_counts(self):
        calls = []
        time_callable(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5

    def test_format_table_alignment(self):
        table = format_table(
            "T", ["a", "bb"], [(1, 2.5), (10, 0.001)]
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[2:]}) == 1

    def test_format_table_empty(self):
        table = format_table("T", ["x"], [])
        assert "x" in table

    def test_mb(self):
        assert mb(1024 * 1024) == 1.0

    def test_report_writes_file(self, tmp_path, monkeypatch):
        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        harness.report("unit", "content")
        assert (tmp_path / "unit.txt").read_text() == "content\n"


class TestSizing:
    @pytest.fixture(scope="class")
    def engine(self):
        return RDFTX.from_graph(wikipedia.generate(800, seed=5).graph)

    def test_compressed_smaller_than_standard(self, engine):
        assert compressed_mvbt_size(engine) < standard_mvbt_size(engine)

    def test_compression_ratio_in_paper_band(self, engine):
        ratio = compressed_mvbt_size(engine) / standard_mvbt_size(engine)
        assert 0.1 < ratio < 0.45  # paper: ~0.24

    def test_system_sizes_includes_raw(self, engine):
        graph = wikipedia.generate(800, seed=5).graph
        sizes = system_sizes(graph, engine, [])
        assert sizes["Raw Data"] == graph.raw_size()
        assert sizes["Compressed MVBT"] > 0
