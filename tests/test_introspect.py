"""Storage health introspection and the `repro-tx doctor` command."""

import json

import pytest

from repro import io as tio
from repro.cli import main
from repro.engine import RDFTX
from repro.model.graph import TemporalGraph
from repro.obs.introspect import (
    engine_report,
    find_anomalies,
    process_rss_bytes,
    process_uptime_seconds,
    render_report,
    tree_report,
)
from repro.service.store import TemporalStore


def small_graph(n=60):
    graph = TemporalGraph()
    for i in range(n):
        graph.add(f"s{i}", f"p{i % 5}", f"o{i}", 1 + i % 7)
    for i in range(0, n, 3):
        graph.end(f"s{i}", f"p{i % 5}", f"o{i}", 10 + i % 7)
    return graph


@pytest.fixture()
def engine():
    return RDFTX.from_graph(small_graph())


# ------------------------------------------------------------ process state


def test_process_helpers():
    assert process_uptime_seconds() > 0
    rss = process_rss_bytes()
    if rss is not None:  # None off Linux
        assert rss > 1024 * 1024


# ------------------------------------------------------------- tree reports


def test_tree_report_structure(engine):
    report = tree_report(engine.indexes["spo"])
    assert report["depth"] >= 1
    assert report["nodes"] >= report["leaves"] >= 1
    assert report["nodes"] == report["leaves"] + report["index_nodes"]
    assert 0.0 < report["live_ratio"] <= 1.0
    assert report["entries"] >= report["live_entries"]
    assert report["compressed_leaves"] + report["uncompressed_leaves"] \
        == report["leaves"]
    assert 0.0 < report["live_leaf_fill"] <= 1.0
    assert report["size_bytes"] > 0
    # Delta compression beats the standard layout on this data.
    assert report["compression_ratio"] < 1.0
    assert report["live_records"] == engine.indexes["spo"].live_records


def test_tree_report_does_not_decode_leaves(engine):
    from repro.obs import metrics

    before = metrics.REGISTRY.counter(
        "mvbt.compression.leaves_decoded"
    ).value
    tree_report(engine.indexes["spo"])
    after = metrics.REGISTRY.counter(
        "mvbt.compression.leaves_decoded"
    ).value
    assert after == before


def test_engine_report_covers_all_components(engine):
    report = engine_report(engine)
    assert set(report["indexes"]) == {"spo", "sop", "pos", "ops"}
    assert report["dictionary"]["terms"] > 0
    assert report["plan_cache"]["capacity"] > 0
    assert report["statistics"]["optimizer"] is False
    assert report["statistics"]["drift"]["refreshes"] == 0
    assert report["total_size_bytes"] == engine.sizeof()


# ---------------------------------------------------------------- anomalies


def test_healthy_engine_has_no_anomalies(engine):
    assert find_anomalies(engine_report(engine)) == []


def test_anomaly_live_count_mismatch(engine):
    report = engine_report(engine)
    report["indexes"]["spo"]["live_records"] += 1
    warnings = find_anomalies(report)
    assert any("disagree" in w for w in warnings)


def test_anomaly_partial_compression():
    engine = RDFTX.from_graph(small_graph(), compress=False)
    engine.indexes["spo"].compress()
    # Force a mixed state: recompute on a report with both kinds.
    report = engine_report(engine)
    report["indexes"]["spo"]["uncompressed_leaves"] = 1
    report["indexes"]["spo"]["compressed_leaves"] = 1
    warnings = find_anomalies(report)
    assert any("not delta-compressed" in w for w in warnings)


def test_anomaly_stale_statistics(engine):
    report = engine_report(engine)
    report["statistics"] = {
        "optimizer": True, "refresh_threshold": None, "dirty_updates": 7,
        "drift": {"refreshes": 0},
    }
    warnings = find_anomalies(report)
    assert any("stale" in w for w in warnings)


def test_anomaly_wal_backlog(engine):
    report = engine_report(engine)
    report["store"] = {"wal": {
        "pending_records": 3, "records_since_checkpoint": 50_000,
    }}
    warnings = find_anomalies(report)
    assert any("pending group" in w for w in warnings)
    assert any("since the last checkpoint" in w for w in warnings)


# ---------------------------------------------------------------- rendering


def test_render_report_lists_every_index(engine):
    text = render_report(engine_report(engine))
    for name in ("spo", "sop", "pos", "ops"):
        assert name in text
    assert "dictionary:" in text
    assert "plan cache:" in text


# ------------------------------------------------------------------- doctor


def test_doctor_on_dataset_file(tmp_path, capsys):
    path = tmp_path / "data.tnq"
    tio.dump_graph(small_graph(), path)
    assert main(["doctor", str(path)]) == 0
    out = capsys.readouterr().out
    assert "spo" in out
    assert "no anomalies found" in out


def test_doctor_json_output(tmp_path, capsys):
    path = tmp_path / "data.tnq"
    tio.dump_graph(small_graph(), path)
    assert main(["doctor", str(path), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert set(report["indexes"]) == {"spo", "sop", "pos", "ops"}
    assert report["warnings"] == []


def test_doctor_on_store_directory(tmp_path, capsys):
    directory = tmp_path / "store"
    with TemporalStore(directory) as store:
        store.load_dataset(small_graph())
        store.insert("sX", "p0", "oX", 20)
    assert main(["doctor", str(directory)]) == 0
    out = capsys.readouterr().out
    assert "WAL:" in out
    assert "revision: 1" in out
