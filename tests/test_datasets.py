"""Tests for the synthetic dataset and workload generators."""

import pytest

from repro.datasets import govtrack, wikipedia, yago
from repro.datasets.queries import (
    complex_queries,
    join_queries,
    selection_queries,
)
from repro.datasets.wikipedia import table1_statistics
from repro.engine import RDFTX
from repro.model.time import NOW
from repro.sparqlt import parse


class TestWikipediaGenerator:
    @pytest.fixture(scope="class")
    def dataset(self):
        return wikipedia.generate(4000, seed=7)

    def test_size_close_to_target(self, dataset):
        assert 4000 <= len(dataset.graph) < 4400

    def test_deterministic(self):
        a = wikipedia.generate(500, seed=3)
        b = wikipedia.generate(500, seed=3)
        assert [str(t) for t in a.graph.triples()] == [
            str(t) for t in b.graph.triples()
        ]

    def test_intervals_well_formed(self, dataset):
        for triple in dataset.graph:
            assert triple.period.start < triple.period.end

    def test_no_overlapping_versions(self, dataset):
        """Consecutive versions of one property must not overlap
        (transaction-time history)."""
        from collections import defaultdict

        chains = defaultdict(list)
        for t in dataset.graph:
            chains[(t.subject, t.predicate)].append(t.period)
        for periods in chains.values():
            periods.sort()
            for prev, cur in zip(periods, periods[1:]):
                assert prev.end <= cur.start

    def test_table1_statistics_shape(self):
        """Update frequencies should rank as in Table 1:
        Country/gdp > Software/release > City/population > Player/club."""
        dataset = wikipedia.generate(20000, seed=7)
        stats = table1_statistics(dataset)
        gdp = stats[("Country", "gdp")]
        release = stats[("Software", "release")]
        population = stats[("City", "population")]
        club = stats[("Player", "club")]
        assert gdp > release > club
        assert population == pytest.approx(7.16, rel=0.4)
        assert gdp == pytest.approx(11.78, rel=0.4)

    def test_categories_form_characteristic_sets(self, dataset):
        from repro.mvsbt.histogram import CharacteristicSets

        charsets = CharacteristicSets.from_graph(dataset.graph)
        # Few charsets relative to subjects: category structure captured.
        assert len(charsets) < len(dataset.category_of) / 3


class TestGovTrackGenerator:
    @pytest.fixture(scope="class")
    def dataset(self):
        return govtrack.generate(3000, seed=5, n_periods=120)

    def test_size(self, dataset):
        assert len(dataset.graph) >= 3000

    def test_few_predicates(self, dataset):
        predicates = {t.predicate for t in dataset.graph}
        assert len(predicates) <= 30

    def test_coarse_time_domain(self, dataset):
        starts = {t.period.start for t in dataset.graph}
        assert len(starts) <= 120

    def test_live_fraction(self, dataset):
        live = sum(1 for t in dataset.graph if t.period.end == NOW)
        assert 0 < live < len(dataset.graph)


class TestYagoGenerator:
    def test_generates(self):
        dataset = yago.generate(1500, seed=2)
        assert len(dataset.graph) >= 1500
        predicates = {t.predicate for t in dataset.graph}
        assert len(predicates) > 10


class TestQueryWorkloads:
    @pytest.fixture(scope="class")
    def dataset(self):
        return wikipedia.generate(2500, seed=11)

    @pytest.fixture(scope="class")
    def engine(self, dataset):
        return RDFTX.from_graph(dataset.graph)

    def test_selection_queries_parse_and_run(self, dataset, engine):
        queries = selection_queries(dataset.graph, count=10)
        assert len(queries) == 10
        nonempty = 0
        for text in queries:
            parse(text)
            if len(engine.query(text)) > 0:
                nonempty += 1
        assert nonempty >= 8

    def test_join_queries_parse_and_run(self, dataset, engine):
        queries = join_queries(dataset.graph, count=10)
        assert len(queries) == 10
        nonempty = 0
        for text in queries:
            parse(text)
            if len(engine.query(text)) > 0:
                nonempty += 1
        assert nonempty >= 5

    def test_complex_queries_structure(self, dataset, engine):
        workload = complex_queries(dataset.graph, seeds=5, max_patterns=7)
        assert sorted(workload) == [3, 4, 5, 6, 7]
        total = sum(len(qs) for qs in workload.values())
        assert total == 25
        for n, texts in workload.items():
            for text in texts:
                query = parse(text)
                assert len(query.patterns) == n
        # Extended queries stay executable.
        for text in workload[3] + workload[7]:
            engine.query(text)
