"""Live updates on a loaded engine: visibility, caches, statistics.

The paper's engine is bulk-loaded once; these tests pin down the behaviour
of the update path the serving layer depends on — updates must be visible
through every index order immediately, compiled-plan caches must not serve
stale plans, and optimizer statistics track their own staleness.
"""

import threading

import pytest

from repro.engine import RDFTX
from repro.model import NOW, Period, PeriodSet, TemporalGraph, date_to_chronon
from repro.mvbt.tree import MVBTConfig
from repro.optimizer import Optimizer

D = date_to_chronon

# One query per index order choice: the access path is forced by which
# positions are bound (see repro.engine.patterns).
ORDER_PROBES = {
    "spo": "SELECT ?t {Org leader Alice ?t}",       # S,P,O bound
    "sop": "SELECT ?p {Org ?p Alice ?t}",           # S,O bound
    "pos": "SELECT ?s {?s leader Alice ?t}",        # P,O bound
    "ops": "SELECT ?s ?p {?s ?p Alice ?t}",         # O bound
}


def small_graph():
    g = TemporalGraph()
    g.add("Org", "founded", "1868", D("01/01/2000"))
    g.add("Org", "leader", "Bob", D("01/01/2001"), D("01/01/2010"))
    g.add("Other", "leader", "Carol", D("01/01/2005"))
    return g


@pytest.fixture()
def engine():
    return RDFTX.from_graph(
        small_graph(),
        config=MVBTConfig(block_capacity=8, weak_min=2, epsilon=1),
        optimizer=Optimizer(),
    )


class TestVisibilityAcrossOrders:
    @pytest.mark.parametrize("order", sorted(ORDER_PROBES))
    def test_insert_visible_through_each_order(self, engine, order):
        # Every probe constrains the pattern to the Alice fact, so rows
        # appear exactly when the insert is visible via that access path.
        probe = ORDER_PROBES[order]
        assert engine.query(probe).rows == []  # Alice not known yet
        engine.insert("Org", "leader", "Alice", D("01/01/2015"))
        after = engine.query(probe)
        assert len(after.rows) == 1
        expected = {"s": "Org", "p": "leader", "o": "Alice"}
        for name, value in after.rows[0].items():
            if name in expected:
                assert value == expected[name]

    @pytest.mark.parametrize("order", sorted(ORDER_PROBES))
    def test_delete_ends_period_through_each_order(self, engine, order):
        engine.insert("Org", "leader", "Alice", D("01/01/2015"))
        engine.delete("Org", "leader", "Alice", D("01/01/2018"))
        probe = ORDER_PROBES[order]
        # The fact still matches historically...
        assert len(engine.query(probe).rows) == 1
        # ...but not in a window after the delete.
        result = engine.query(
            probe[:-1] + " . FILTER(YEAR(?t) = 2020)}"
        )
        assert result.rows == []

    def test_full_cycle_period(self, engine):
        engine.insert("Org", "leader", "Alice", D("01/01/2015"))
        result = engine.query("SELECT ?t {Org leader Alice ?t}")
        (row,) = result
        assert row["t"] == PeriodSet([Period(D("01/01/2015"), NOW)])
        engine.delete("Org", "leader", "Alice", D("01/01/2018"))
        result = engine.query("SELECT ?t {Org leader Alice ?t}")
        (row,) = result
        assert row["t"] == PeriodSet(
            [Period(D("01/01/2015"), D("01/01/2018"))]
        )

    def test_reinsert_after_delete(self, engine):
        engine.insert("Org", "leader", "Alice", D("01/01/2015"))
        engine.delete("Org", "leader", "Alice", D("01/01/2018"))
        engine.insert("Org", "leader", "Alice", D("01/01/2020"))
        result = engine.query("SELECT ?t {Org leader Alice ?t}")
        (row,) = result
        assert row["t"] == PeriodSet([
            Period(D("01/01/2015"), D("01/01/2018")),
            Period(D("01/01/2020"), NOW),
        ])


class TestPlanCacheInvalidation:
    def test_repeat_query_sees_update(self, engine):
        probe = "SELECT ?o {Org leader ?o ?t}"
        first = engine.query(probe)  # populates the plan cache
        assert "Alice" not in first.column("o")
        assert probe in engine._plan_cache
        engine.insert("Org", "leader", "Alice", D("01/01/2015"))
        # Plans survive writes (dictionary ids are append-only and the
        # time windows live in the query text); the cached plan's scans
        # read the updated indices directly.
        assert probe in engine._plan_cache
        assert "Alice" in engine.query(probe).column("o")

    def test_statistics_refresh_drops_cached_plans(self, engine):
        probe = "SELECT ?o {Org leader ?o ?t}"
        engine.query(probe)
        assert probe in engine._plan_cache
        engine.insert("Org", "leader", "Alice", D("01/01/2015"))
        engine.refresh_statistics()
        # A rebuild may change the chosen join order, so plans go.
        assert probe not in engine._plan_cache

    def test_new_term_usable_after_insert(self, engine):
        # "Alice" is not in the dictionary before the insert; a cached
        # plan compiled earlier must not pin the term's absence either.
        probe = "SELECT ?t {Org leader Alice ?t}"
        assert engine.query(probe).rows == []
        engine.insert("Org", "leader", "Alice", D("01/01/2015"))
        assert len(engine.query(probe).rows) == 1


class TestStatisticsStaleness:
    def test_dirty_counter_tracks_updates(self, engine):
        assert engine.statistics_dirty == 0
        engine.insert("Org", "leader", "Alice", D("01/01/2015"))
        engine.delete("Org", "leader", "Alice", D("01/01/2016"))
        assert engine.statistics_dirty == 2

    def test_manual_refresh_resets_and_rebuilds(self, engine):
        engine.query(ORDER_PROBES["spo"])  # force statistics build
        total_before = engine.optimizer.statistics.histogram.total_triples
        engine.insert("Org", "leader", "Alice", D("01/01/2015"))
        assert engine.refresh_statistics() is True
        assert engine.statistics_dirty == 0
        total_after = engine.optimizer.statistics.histogram.total_triples
        assert total_after == total_before + 1

    def test_auto_refresh_at_threshold(self):
        engine = RDFTX.from_graph(small_graph(), optimizer=Optimizer())
        engine.stats_refresh_threshold = 3
        for i in range(3):
            engine.insert(f"S{i}", "p", "o", D("01/01/2015") + i)
        assert engine.statistics_dirty == 3
        engine.query("SELECT ?s {?s p o ?t}")  # compile triggers refresh
        assert engine.statistics_dirty == 0
        assert engine.optimizer.statistics.histogram.total_triples == 6

    def test_threshold_none_disables_auto_refresh(self):
        engine = RDFTX.from_graph(small_graph(), optimizer=Optimizer())
        engine.stats_refresh_threshold = None
        for i in range(10):
            engine.insert(f"S{i}", "p", "o", D("01/01/2015") + i)
        engine.query("SELECT ?s {?s p o ?t}")
        assert engine.statistics_dirty == 10

    def test_no_optimizer_refresh_is_noop(self):
        engine = RDFTX.from_graph(small_graph())
        engine.insert("a", "b", "c", D("01/01/2015"))
        assert engine.refresh_statistics() is False
        assert engine.statistics_dirty == 0


class TestGraphMaintenance:
    def test_graph_tracks_live_updates(self, engine):
        graph = engine._graph
        n = len(graph)
        engine.insert("Org", "leader", "Alice", D("01/01/2015"))
        assert len(graph) == n + 1
        assert graph.is_live("Org", "leader", "Alice")
        engine.delete("Org", "leader", "Alice", D("01/01/2018"))
        assert len(graph) == n + 1  # the fact remains, with a closed period
        assert not graph.is_live("Org", "leader", "Alice")

    def test_update_at_now_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.insert("a", "b", "c", NOW)
        with pytest.raises(ValueError):
            engine.delete("Org", "founded", "1868", NOW)


class TestConcurrentReads:
    def test_readers_during_write_burst(self, engine):
        # Pure-engine version of the store-level test: the MVBT is
        # multiversion, so snapshot reads stay consistent while a single
        # writer appends (the GIL serializes the structure mutations).
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                try:
                    result = engine.query(
                        "SELECT ?o ?t {Org leader ?o ?t}"
                    )
                    # Bob's closed period is immutable history: every
                    # snapshot must report it identically.
                    rows = {row["o"]: row["t"] for row in result.rows}
                    assert rows["Bob"] == PeriodSet(
                        [Period(D("01/01/2001"), D("01/01/2010"))]
                    )
                except Exception as error:  # noqa: BLE001
                    errors.append(error)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        try:
            base = D("01/01/2015")
            for i in range(120):
                engine.insert(f"Person_{i}", "member", "Org", base + i)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30)
        assert errors == []
